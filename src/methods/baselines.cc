#include "methods/baselines.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace easytime::methods {

namespace {
Status RequireNonEmpty(const std::vector<double>& train) {
  if (train.empty()) {
    return Status::InvalidArgument("training data must be non-empty");
  }
  return Status::OK();
}
Status RequireFitted(bool fitted) {
  if (!fitted) return Status::Internal("Forecast called before Fit");
  return Status::OK();
}
}  // namespace

Status NaiveForecaster::Fit(const std::vector<double>& train,
                            const FitContext&) {
  EASYTIME_RETURN_IF_ERROR(RequireNonEmpty(train));
  last_ = train.back();
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> NaiveForecaster::Forecast(size_t horizon) const {
  EASYTIME_RETURN_IF_ERROR(RequireFitted(fitted_));
  return std::vector<double>(horizon, last_);
}

Result<std::vector<double>> NaiveForecaster::ForecastFrom(
    const std::vector<double>& history, size_t horizon) {
  if (history.empty()) {
    return Status::InvalidArgument("history must be non-empty");
  }
  return std::vector<double>(horizon, history.back());
}

Result<IntervalForecast> NaiveForecaster::ForecastWithIntervals(
    const std::vector<double>& train, const FitContext& ctx,
    double confidence) {
  EASYTIME_RETURN_IF_ERROR(ValidateIntervalRequest(train, ctx, confidence));
  EASYTIME_RETURN_IF_ERROR(Fit(train, ctx));
  double ss = 0.0;
  for (size_t t = 1; t < train.size(); ++t) {
    double d = train[t] - train[t - 1];
    ss += d * d;
  }
  double sigma1 = train.size() > 1
                      ? std::sqrt(ss / static_cast<double>(train.size() - 1))
                      : 0.0;
  std::vector<double> sigma_h(ctx.horizon);
  for (size_t h = 0; h < ctx.horizon; ++h) {
    sigma_h[h] = sigma1 * std::sqrt(static_cast<double>(h + 1));
  }
  return MakeNormalIntervals(std::vector<double>(ctx.horizon, last_), sigma_h,
                             confidence);
}

Status SeasonalNaiveForecaster::Fit(const std::vector<double>& train,
                                    const FitContext& ctx) {
  EASYTIME_RETURN_IF_ERROR(RequireNonEmpty(train));
  period_ = period_cfg_ != 0 ? period_cfg_ : ctx.period_hint;
  if (period_ < 1 || period_ > train.size()) period_ = 0;
  if (period_ == 0) {
    last_cycle_ = {train.back()};
  } else {
    last_cycle_.assign(train.end() - static_cast<long>(period_), train.end());
  }
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> SeasonalNaiveForecaster::Forecast(
    size_t horizon) const {
  EASYTIME_RETURN_IF_ERROR(RequireFitted(fitted_));
  std::vector<double> out(horizon);
  for (size_t h = 0; h < horizon; ++h) {
    out[h] = last_cycle_[h % last_cycle_.size()];
  }
  return out;
}

Result<std::vector<double>> SeasonalNaiveForecaster::ForecastFrom(
    const std::vector<double>& history, size_t horizon) {
  if (history.empty()) {
    return Status::InvalidArgument("history must be non-empty");
  }
  size_t p = period_ != 0 && period_ <= history.size() ? period_ : 1;
  std::vector<double> cycle(history.end() - static_cast<long>(p),
                            history.end());
  std::vector<double> out(horizon);
  for (size_t h = 0; h < horizon; ++h) out[h] = cycle[h % cycle.size()];
  return out;
}

Result<IntervalForecast> SeasonalNaiveForecaster::ForecastWithIntervals(
    const std::vector<double>& train, const FitContext& ctx,
    double confidence) {
  EASYTIME_RETURN_IF_ERROR(ValidateIntervalRequest(train, ctx, confidence));
  EASYTIME_RETURN_IF_ERROR(Fit(train, ctx));
  const size_t m = last_cycle_.size();  // 1 when no usable period
  double ss = 0.0;
  size_t count = 0;
  for (size_t t = m; t < train.size(); ++t) {
    double d = train[t] - train[t - m];
    ss += d * d;
    ++count;
  }
  double sigma1 = count > 0 ? std::sqrt(ss / static_cast<double>(count)) : 0.0;
  std::vector<double> sigma_h(ctx.horizon);
  for (size_t h = 0; h < ctx.horizon; ++h) {
    sigma_h[h] = sigma1 * std::sqrt(static_cast<double>(h / m + 1));
  }
  EASYTIME_ASSIGN_OR_RETURN(std::vector<double> point, Forecast(ctx.horizon));
  return MakeNormalIntervals(std::move(point), sigma_h, confidence);
}

Status DriftForecaster::Fit(const std::vector<double>& train,
                            const FitContext&) {
  EASYTIME_RETURN_IF_ERROR(RequireNonEmpty(train));
  last_ = train.back();
  slope_ = train.size() > 1 ? (train.back() - train.front()) /
                                  static_cast<double>(train.size() - 1)
                            : 0.0;
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> DriftForecaster::Forecast(size_t horizon) const {
  EASYTIME_RETURN_IF_ERROR(RequireFitted(fitted_));
  std::vector<double> out(horizon);
  for (size_t h = 0; h < horizon; ++h) {
    out[h] = last_ + slope_ * static_cast<double>(h + 1);
  }
  return out;
}

Status MeanForecaster::Fit(const std::vector<double>& train,
                           const FitContext&) {
  EASYTIME_RETURN_IF_ERROR(RequireNonEmpty(train));
  mean_ = Mean(train);
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> MeanForecaster::Forecast(size_t horizon) const {
  EASYTIME_RETURN_IF_ERROR(RequireFitted(fitted_));
  return std::vector<double>(horizon, mean_);
}

Status WindowAverageForecaster::Fit(const std::vector<double>& train,
                                    const FitContext&) {
  EASYTIME_RETURN_IF_ERROR(RequireNonEmpty(train));
  size_t w = std::min(window_ == 0 ? size_t{1} : window_, train.size());
  double acc = 0.0;
  for (size_t i = train.size() - w; i < train.size(); ++i) acc += train[i];
  mean_ = acc / static_cast<double>(w);
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> WindowAverageForecaster::Forecast(
    size_t horizon) const {
  EASYTIME_RETURN_IF_ERROR(RequireFitted(fitted_));
  return std::vector<double>(horizon, mean_);
}

}  // namespace easytime::methods
