#pragma once

/// \file ets.h
/// \brief Automatic exponential-smoothing model selection (a small ETS):
/// fits SES, Holt, damped Holt, and Holt-Winters (additive/multiplicative)
/// candidates and picks the winner by corrected AIC on the in-sample
/// one-step errors.

#include <memory>

#include "methods/forecaster.h"

namespace easytime::methods {

/// ETS-style auto-selector over the exponential-smoothing family.
class EtsAutoForecaster : public Forecaster {
 public:
  EtsAutoForecaster() = default;

  easytime::Status Fit(const std::vector<double>& train,
                       const FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  /// Selects the best candidate, then delegates to its analytic intervals.
  easytime::Result<IntervalForecast> ForecastWithIntervals(
      const std::vector<double>& train, const FitContext& ctx,
      double confidence) override;
  std::string name() const override { return "ets_auto"; }
  Family family() const override { return Family::kStatistical; }

  /// Name of the selected candidate ("ses", "holt", ...).
  const std::string& selected() const { return selected_; }

 private:
  ForecasterPtr best_;
  std::string selected_;
};

}  // namespace easytime::methods
