#pragma once

/// \file forecaster.h
/// \brief The method layer's core contract. TFB's method layer is "a
/// flexible interface that facilitates the inclusion of statistical
/// learning, machine learning, and deep learning methods"; every forecaster
/// in EasyTime implements this interface, and users plug new methods in by
/// registering a factory (see registry.h).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"

namespace easytime::methods {

/// Method family, mirroring the paper's taxonomy.
enum class Family { kStatistical, kMachineLearning, kDeepLearning };

/// Human-readable family name.
const char* FamilyName(Family f);

/// \brief Side information the pipeline passes to Fit: the detected seasonal
/// period, the forecasting horizon the evaluation will request (window-based
/// methods train direct multi-step heads for it), and a deterministic seed
/// for stochastic methods.
struct FitContext {
  size_t period_hint = 0;
  size_t horizon = 1;
  uint64_t seed = 42;
};

/// \brief A univariate forecaster. The pipeline guarantees Fit is called
/// before Forecast; values arrive pre-normalized (the pipeline owns the
/// scaler) and forecasts are produced in the same space.
///
/// Multivariate datasets are handled channel-independently by the
/// evaluation layer (each channel gets its own fitted instance), the
/// strategy TFB applies to univariate methods on multivariate data.
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Estimates model state from the training segment.
  virtual easytime::Status Fit(const std::vector<double>& train,
                               const FitContext& ctx) = 0;

  /// Predicts the \p horizon values following the training segment.
  virtual easytime::Result<std::vector<double>> Forecast(
      size_t horizon) const = 0;

  /// \brief Predicts the \p horizon values following \p history, reusing the
  /// fitted model where possible. Rolling evaluation calls this with
  /// successively longer histories. The default refits (cheap for
  /// statistical methods); window-based ML/DL methods override it to condition
  /// on the last lookback window without retraining.
  virtual easytime::Result<std::vector<double>> ForecastFrom(
      const std::vector<double>& history, size_t horizon);

  /// Unique method identifier (e.g. "holt_winters").
  virtual std::string name() const = 0;

  /// The method's family.
  virtual Family family() const = 0;
};

/// Convenience alias used throughout the pipeline.
using ForecasterPtr = std::unique_ptr<Forecaster>;

}  // namespace easytime::methods
