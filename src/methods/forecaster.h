#pragma once

/// \file forecaster.h
/// \brief The method layer's core contract. TFB's method layer is "a
/// flexible interface that facilitates the inclusion of statistical
/// learning, machine learning, and deep learning methods"; every forecaster
/// in EasyTime implements this interface, and users plug new methods in by
/// registering a factory (see registry.h).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/json.h"
#include "common/result.h"

namespace easytime::methods {

/// Method family, mirroring the paper's taxonomy.
enum class Family { kStatistical, kMachineLearning, kDeepLearning };

/// Human-readable family name.
const char* FamilyName(Family f);

/// \brief Side information the pipeline passes to Fit: the detected seasonal
/// period, the forecasting horizon the evaluation will request (window-based
/// methods train direct multi-step heads for it), a deterministic seed
/// for stochastic methods, and the request deadline. The deadline defaults
/// to infinite; when set, every method checks it cooperatively inside its
/// fit loop (amortized via DeadlineChecker) and returns
/// Status::DeadlineExceeded mid-fit with partial state released.
struct FitContext {
  size_t period_hint = 0;
  size_t horizon = 1;
  uint64_t seed = 42;
  easytime::Deadline deadline;
};

/// \brief Point forecasts plus symmetric prediction intervals, all of
/// length horizon. Invariant: lower[h] <= point[h] <= upper[h], all finite.
struct IntervalForecast {
  std::vector<double> point;
  std::vector<double> lower;
  std::vector<double> upper;
};

/// \brief A univariate forecaster. The pipeline guarantees Fit is called
/// before Forecast; values arrive pre-normalized (the pipeline owns the
/// scaler) and forecasts are produced in the same space.
///
/// Multivariate datasets are handled channel-independently by the
/// evaluation layer (each channel gets its own fitted instance), the
/// strategy TFB applies to univariate methods on multivariate data.
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Estimates model state from the training segment.
  virtual easytime::Status Fit(const std::vector<double>& train,
                               const FitContext& ctx) = 0;

  /// Predicts the \p horizon values following the training segment.
  virtual easytime::Result<std::vector<double>> Forecast(
      size_t horizon) const = 0;

  /// \brief Predicts the \p horizon values following \p history, reusing the
  /// fitted model where possible. Rolling evaluation calls this with
  /// successively longer histories. The default refits (cheap for
  /// statistical methods); window-based ML/DL methods override it to condition
  /// on the last lookback window without retraining.
  virtual easytime::Result<std::vector<double>> ForecastFrom(
      const std::vector<double>& history, size_t horizon);

  /// \brief Fits on \p train and predicts ctx.horizon values with symmetric
  /// prediction intervals at \p confidence (e.g. 0.95). Unlike Forecast this
  /// performs its own Fit, replacing any prior fitted state. The default
  /// estimates a one-step residual sigma from rolling in-sample origins
  /// (first differences when the series is too short) and scales it by
  /// sqrt(h); methods with cheap analytic variance formulas (naive,
  /// seasonal naive, the exponential family, theta) override it.
  virtual easytime::Result<IntervalForecast> ForecastWithIntervals(
      const std::vector<double>& train, const FitContext& ctx,
      double confidence);

  /// Unique method identifier (e.g. "holt_winters").
  virtual std::string name() const = 0;

  /// The method's family.
  virtual Family family() const = 0;
};

/// Convenience alias used throughout the pipeline.
using ForecasterPtr = std::unique_ptr<Forecaster>;

/// Shared argument validation for ForecastWithIntervals implementations.
easytime::Status ValidateIntervalRequest(const std::vector<double>& train,
                                         const FitContext& ctx,
                                         double confidence);

/// \brief Wraps \p point in normal intervals point[h] +/- z * sigma_h[h]
/// with z = NormalQuantile((1 + confidence) / 2). Non-finite or negative
/// sigmas degrade to zero-width intervals so the IntervalForecast invariant
/// always holds.
IntervalForecast MakeNormalIntervals(std::vector<double> point,
                                     const std::vector<double>& sigma_h,
                                     double confidence);

}  // namespace easytime::methods
