#pragma once

/// \file gbdt.h
/// \brief Gradient-boosted regression trees on lag features — a from-scratch
/// GBDT (least-squares boosting, greedy variance-reduction splits) standing
/// in for the XGBoost-style baselines in TFB's ML family.

#include <memory>

#include "methods/forecaster.h"
#include "methods/window_util.h"

namespace easytime::methods {

/// \brief One regression tree with axis-aligned splits.
class RegressionTree {
 public:
  struct Options {
    size_t max_depth = 3;
    size_t min_samples_leaf = 4;
    /// Optional cooperative cancellation (not owned). When it reports
    /// expired, Build stops searching for splits and emits leaves, so a
    /// deep recursion unwinds in microseconds instead of finishing the
    /// per-feature sort work.
    easytime::DeadlineChecker* cancel = nullptr;
  };

  /// Fits the tree to (features, residual targets).
  void Fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y, const Options& options);

  /// Predicts a single feature vector.
  double Predict(const std::vector<double>& features) const;

  /// Number of nodes (diagnostics).
  size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    int feature = -1;        ///< -1 for leaves
    double threshold = 0.0;
    double value = 0.0;      ///< leaf prediction
    int left = -1;
    int right = -1;
  };
  int Build(const std::vector<std::vector<double>>& x,
            const std::vector<double>& y, std::vector<size_t>& idx,
            size_t depth, const Options& options);

  std::vector<Node> nodes_;
};

/// Boosted trees forecaster (one-step-ahead, applied recursively).
class GbdtForecaster : public Forecaster {
 public:
  struct Options {
    size_t num_trees = 60;
    double learning_rate = 0.15;
    size_t max_depth = 3;
    size_t min_samples_leaf = 4;
    size_t lookback = 0;  ///< 0 = auto
  };

  GbdtForecaster() = default;
  explicit GbdtForecaster(Options options) : options_(options) {}

  easytime::Status Fit(const std::vector<double>& train,
                       const FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  easytime::Result<std::vector<double>> ForecastFrom(
      const std::vector<double>& history, size_t horizon) override;
  std::string name() const override { return "gbdt"; }
  Family family() const override { return Family::kMachineLearning; }

  size_t num_trees() const { return trees_.size(); }

 private:
  double PredictOne(const std::vector<double>& features) const;

  Options options_;
  size_t lookback_ = 0;
  double base_prediction_ = 0.0;
  std::vector<RegressionTree> trees_;
  std::vector<double> train_tail_;
  bool fitted_ = false;
};

}  // namespace easytime::methods
