#include "methods/ets.h"

#include <cmath>
#include <vector>

#include "methods/exponential.h"

namespace easytime::methods {

namespace {

/// Corrected AIC from an SSE, sample size n, and parameter count k.
double Aicc(double sse, size_t n, int k) {
  double sigma2 = std::max(sse / static_cast<double>(n), 1e-12);
  double aic = static_cast<double>(n) * std::log(sigma2) + 2.0 * (k + 1);
  double denom = static_cast<double>(n) - k - 2.0;
  if (denom <= 0.0) return aic + 1e6;  // too few points for this model
  return aic + 2.0 * (k + 1) * (k + 2) / denom;
}

}  // namespace

Status EtsAutoForecaster::Fit(const std::vector<double>& train,
                              const FitContext& ctx) {
  if (train.size() < 4) {
    return Status::InvalidArgument("ets_auto needs at least 4 observations");
  }
  struct Candidate {
    ForecasterPtr model;
    double sse;
    int k;
    std::string label;
  };
  std::vector<Candidate> candidates;

  // Candidate fits carry the caller's deadline; a DeadlineExceeded from any
  // of them aborts the whole selection (other fit errors just skip the
  // candidate as before).
  {
    auto m = std::make_unique<SesForecaster>();
    Status st = m->Fit(train, ctx);
    if (st.IsDeadlineExceeded()) return st;
    if (st.ok()) {
      double sse = m->sse();
      int k = m->num_params();
      candidates.push_back({std::move(m), sse, k, "ses"});
    }
  }
  {
    auto m = std::make_unique<HoltForecaster>(/*damped=*/false);
    Status st = m->Fit(train, ctx);
    if (st.IsDeadlineExceeded()) return st;
    if (st.ok()) {
      double sse = m->sse();
      int k = m->num_params();
      candidates.push_back({std::move(m), sse, k, "holt"});
    }
  }
  {
    auto m = std::make_unique<HoltForecaster>(/*damped=*/true);
    Status st = m->Fit(train, ctx);
    if (st.IsDeadlineExceeded()) return st;
    if (st.ok()) {
      double sse = m->sse();
      int k = m->num_params();
      candidates.push_back({std::move(m), sse, k, "holt_damped"});
    }
  }
  if (ctx.period_hint >= 2 && train.size() >= 2 * ctx.period_hint + 2) {
    auto add = std::make_unique<HoltWintersForecaster>(
        HoltWintersForecaster::Seasonal::kAdditive);
    Status st = add->Fit(train, ctx);
    if (st.IsDeadlineExceeded()) return st;
    if (st.ok()) {
      double sse = add->sse();
      int k = add->num_params();
      candidates.push_back({std::move(add), sse, k, "holt_winters_add"});
    }
    auto mul = std::make_unique<HoltWintersForecaster>(
        HoltWintersForecaster::Seasonal::kMultiplicative);
    st = mul->Fit(train, ctx);
    if (st.IsDeadlineExceeded()) return st;
    if (st.ok()) {
      double sse = mul->sse();
      int k = mul->num_params();
      candidates.push_back({std::move(mul), sse, k, "holt_winters_mul"});
    }
  }
  if (candidates.empty()) {
    return Status::Internal("no ETS candidate could be fitted");
  }

  double best_aicc = 1e300;
  size_t best_i = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    double a = Aicc(candidates[i].sse, train.size(), candidates[i].k);
    if (a < best_aicc) {
      best_aicc = a;
      best_i = i;
    }
  }
  best_ = std::move(candidates[best_i].model);
  selected_ = candidates[best_i].label;
  return Status::OK();
}

Result<std::vector<double>> EtsAutoForecaster::Forecast(size_t horizon) const {
  if (!best_) return Status::Internal("Forecast called before Fit");
  return best_->Forecast(horizon);
}

Result<IntervalForecast> EtsAutoForecaster::ForecastWithIntervals(
    const std::vector<double>& train, const FitContext& ctx,
    double confidence) {
  EASYTIME_RETURN_IF_ERROR(ValidateIntervalRequest(train, ctx, confidence));
  EASYTIME_RETURN_IF_ERROR(Fit(train, ctx));
  // The winner refits itself inside its own ForecastWithIntervals, which is
  // cheap for the exponential family and keeps the interval math in one
  // place per candidate class.
  return best_->ForecastWithIntervals(train, ctx, confidence);
}

}  // namespace easytime::methods
