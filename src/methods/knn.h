#pragma once

/// \file knn.h
/// \brief k-nearest-neighbour forecasting: finds the k historical windows
/// closest (Euclidean, z-normalized) to the current context and averages
/// their continuations, weighted by inverse distance.

#include "methods/forecaster.h"
#include "methods/window_util.h"

namespace easytime::methods {

/// Pattern-matching forecaster over embedded windows.
class KnnForecaster : public Forecaster {
 public:
  /// \param k number of neighbours
  /// \param lookback 0 = choose automatically
  explicit KnnForecaster(size_t k = 5, size_t lookback = 0)
      : k_(k == 0 ? 1 : k), lookback_cfg_(lookback) {}

  easytime::Status Fit(const std::vector<double>& train,
                       const FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  easytime::Result<std::vector<double>> ForecastFrom(
      const std::vector<double>& history, size_t horizon) override;
  std::string name() const override { return "knn"; }
  Family family() const override { return Family::kMachineLearning; }

 private:
  std::vector<double> PredictWindow(const std::vector<double>& window) const;

  size_t k_;
  size_t lookback_cfg_;
  size_t lookback_ = 0;
  size_t trained_horizon_ = 0;
  WindowedData bank_;  ///< stored training windows + continuations
  std::vector<double> train_tail_;
  bool fitted_ = false;
};

}  // namespace easytime::methods
