#include "methods/knn.h"

#include <algorithm>
#include <cmath>

namespace easytime::methods {

Status KnnForecaster::Fit(const std::vector<double>& train,
                          const FitContext& ctx) {
  if (ctx.deadline.expired()) {
    fitted_ = false;
    return Status::DeadlineExceeded("knn fit aborted before windowing");
  }
  size_t horizon = std::max<size_t>(1, ctx.horizon);
  size_t lookback = lookback_cfg_ != 0
                        ? lookback_cfg_
                        : ChooseLookback(train.size(), ctx.period_hint,
                                         horizon);
  EASYTIME_ASSIGN_OR_RETURN(bank_, MakeWindows(train, lookback, horizon));
  lookback_ = lookback;
  trained_horizon_ = horizon;
  train_tail_ = train;
  fitted_ = true;
  return Status::OK();
}

std::vector<double> KnnForecaster::PredictWindow(
    const std::vector<double>& window) const {
  // Distance over mean-removed windows so the match is shape-based; the
  // level difference is added back to the continuation.
  auto mean_of = [](const std::vector<double>& v) {
    double m = 0.0;
    for (double x : v) m += x;
    return v.empty() ? 0.0 : m / static_cast<double>(v.size());
  };
  double wm = mean_of(window);

  struct Scored {
    double dist;
    size_t index;
    double level_delta;
  };
  std::vector<Scored> scored;
  scored.reserve(bank_.inputs.size());
  for (size_t i = 0; i < bank_.inputs.size(); ++i) {
    const auto& cand = bank_.inputs[i];
    double cm = mean_of(cand);
    double d = 0.0;
    for (size_t j = 0; j < cand.size(); ++j) {
      double diff = (window[j] - wm) - (cand[j] - cm);
      d += diff * diff;
    }
    scored.push_back({d, i, wm - cm});
  }
  size_t k = std::min(k_, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(k),
                    scored.end(),
                    [](const Scored& a, const Scored& b) {
                      return a.dist < b.dist;
                    });

  std::vector<double> out(bank_.horizon, 0.0);
  double wsum = 0.0;
  for (size_t r = 0; r < k; ++r) {
    double w = 1.0 / (1.0 + std::sqrt(scored[r].dist));
    wsum += w;
    const auto& cont = bank_.targets[scored[r].index];
    for (size_t h = 0; h < out.size(); ++h) {
      out[h] += w * (cont[h] + scored[r].level_delta);
    }
  }
  if (wsum > 0.0) {
    for (auto& v : out) v /= wsum;
  }
  return out;
}

Result<std::vector<double>> KnnForecaster::Forecast(size_t horizon) const {
  if (!fitted_) return Status::Internal("Forecast called before Fit");
  return RecursiveMultiStep(
      train_tail_, lookback_, trained_horizon_, horizon,
      [this](const std::vector<double>& w) { return PredictWindow(w); });
}

Result<std::vector<double>> KnnForecaster::ForecastFrom(
    const std::vector<double>& history, size_t horizon) {
  if (!fitted_) return Status::Internal("ForecastFrom called before Fit");
  if (history.empty()) {
    return Status::InvalidArgument("history must be non-empty");
  }
  return RecursiveMultiStep(
      history, lookback_, trained_horizon_, horizon,
      [this](const std::vector<double>& w) { return PredictWindow(w); });
}

}  // namespace easytime::methods
