#pragma once

/// \file deep.h
/// \brief Deep-learning forecasters on the from-scratch nn/ engine: an MLP
/// over the lookback window, a GRU encoder, and a dilated-causal-conv TCN —
/// the three architectures covering the deep family of TFB's method layer.
/// Models are intentionally small (CPU training in well under a second per
/// series) while preserving the architecture class.

#include <memory>

#include "methods/forecaster.h"
#include "methods/window_util.h"
#include "nn/gru.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

namespace easytime::methods {

/// Shared training hyperparameters for the deep forecasters.
struct DeepOptions {
  size_t hidden = 32;
  size_t epochs = 40;
  double learning_rate = 5e-3;
  size_t max_windows = 256;   ///< subsample training windows beyond this
  size_t lookback = 0;        ///< 0 = auto
  double grad_clip = 5.0;
};

/// Window MLP: lookback -> hidden -> hidden -> horizon (direct multi-step).
class MlpForecaster : public Forecaster {
 public:
  explicit MlpForecaster(DeepOptions options = {}) : options_(options) {}

  easytime::Status Fit(const std::vector<double>& train,
                       const FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  easytime::Result<std::vector<double>> ForecastFrom(
      const std::vector<double>& history, size_t horizon) override;
  std::string name() const override { return "mlp"; }
  Family family() const override { return Family::kDeepLearning; }

 private:
  std::vector<double> PredictWindow(const std::vector<double>& window) const;

  DeepOptions options_;
  size_t lookback_ = 0;
  size_t trained_horizon_ = 0;
  std::unique_ptr<nn::Sequential> net_;
  double norm_offset_ = 0.0;  ///< window normalization: subtract last value
  std::vector<double> train_tail_;
  bool fitted_ = false;
};

/// GRU encoder: sequence -> last hidden state -> linear head to horizon.
class GruForecaster : public Forecaster {
 public:
  explicit GruForecaster(DeepOptions options = {}) : options_(options) {}

  easytime::Status Fit(const std::vector<double>& train,
                       const FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  easytime::Result<std::vector<double>> ForecastFrom(
      const std::vector<double>& history, size_t horizon) override;
  std::string name() const override { return "gru"; }
  Family family() const override { return Family::kDeepLearning; }

 private:
  std::vector<double> PredictWindow(const std::vector<double>& window) const;

  DeepOptions options_;
  size_t lookback_ = 0;
  size_t trained_horizon_ = 0;
  std::unique_ptr<nn::Gru> gru_;
  std::unique_ptr<nn::Linear> head_;
  std::vector<double> train_tail_;
  bool fitted_ = false;
};

/// TCN: stacked residual dilated causal convolutions -> last timestep ->
/// linear head to horizon.
class TcnForecaster : public Forecaster {
 public:
  explicit TcnForecaster(DeepOptions options = {}) : options_(options) {}

  easytime::Status Fit(const std::vector<double>& train,
                       const FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  easytime::Result<std::vector<double>> ForecastFrom(
      const std::vector<double>& history, size_t horizon) override;
  std::string name() const override { return "tcn"; }
  Family family() const override { return Family::kDeepLearning; }

 private:
  std::vector<double> PredictWindow(const std::vector<double>& window) const;

  DeepOptions options_;
  size_t lookback_ = 0;
  size_t trained_horizon_ = 0;
  std::unique_ptr<nn::Sequential> encoder_;  ///< conv stack
  std::unique_ptr<nn::Linear> head_;
  std::vector<double> train_tail_;
  bool fitted_ = false;
};

}  // namespace easytime::methods
