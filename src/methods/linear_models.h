#pragma once

/// \file linear_models.h
/// \brief Window-based linear forecasters: ridge regression on lags, and the
/// decomposition linears popularized by "Are Transformers Effective for Time
/// Series Forecasting?" — DLinear (moving-average trend/remainder split with
/// separate heads) and NLinear (last-value normalization).

#include "methods/forecaster.h"
#include "methods/window_util.h"

namespace easytime::methods {

/// Multi-output ridge regression: last L values -> next H values.
class LagLinearForecaster : public Forecaster {
 public:
  /// \param l2 ridge penalty
  /// \param lookback 0 = choose automatically from period/length
  explicit LagLinearForecaster(double l2 = 1.0, size_t lookback = 0)
      : l2_(l2), lookback_cfg_(lookback) {}

  easytime::Status Fit(const std::vector<double>& train,
                       const FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  easytime::Result<std::vector<double>> ForecastFrom(
      const std::vector<double>& history, size_t horizon) override;
  std::string name() const override { return "lag_linear"; }
  Family family() const override { return Family::kMachineLearning; }

 protected:
  /// Hook for subclasses: transform a raw input window into features and
  /// remember per-window state needed to undo the transform on outputs.
  virtual std::vector<double> EncodeWindow(const std::vector<double>& window,
                                           double* offset) const;

  double l2_;
  size_t lookback_cfg_;
  size_t lookback_ = 0;
  size_t trained_horizon_ = 0;
  std::vector<std::vector<double>> weights_;  ///< per-step (L+1) coefficients
  std::vector<double> train_tail_;
  bool fitted_ = false;

 private:
  std::vector<double> PredictWindow(const std::vector<double>& window) const;
};

/// NLinear: subtracts the window's last value before the linear map and adds
/// it back to the outputs — robust to level shifts.
class NLinearForecaster : public LagLinearForecaster {
 public:
  explicit NLinearForecaster(double l2 = 1.0, size_t lookback = 0)
      : LagLinearForecaster(l2, lookback) {}
  std::string name() const override { return "nlinear"; }

 protected:
  std::vector<double> EncodeWindow(const std::vector<double>& window,
                                   double* offset) const override;
};

/// \brief DLinear: decomposes each window into a moving-average trend and a
/// remainder, fits separate linear heads to each, and sums the forecasts.
class DLinearForecaster : public Forecaster {
 public:
  explicit DLinearForecaster(double l2 = 1.0, size_t lookback = 0,
                             size_t ma_window = 0)
      : l2_(l2), lookback_cfg_(lookback), ma_window_cfg_(ma_window) {}

  easytime::Status Fit(const std::vector<double>& train,
                       const FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  easytime::Result<std::vector<double>> ForecastFrom(
      const std::vector<double>& history, size_t horizon) override;
  std::string name() const override { return "dlinear"; }
  Family family() const override { return Family::kMachineLearning; }

 private:
  std::vector<double> PredictWindow(const std::vector<double>& window) const;

  double l2_;
  size_t lookback_cfg_;
  size_t ma_window_cfg_;
  size_t lookback_ = 0;
  size_t ma_window_ = 0;
  size_t trained_horizon_ = 0;
  std::vector<std::vector<double>> trend_weights_;
  std::vector<std::vector<double>> season_weights_;
  std::vector<double> train_tail_;
  bool fitted_ = false;
};

}  // namespace easytime::methods
