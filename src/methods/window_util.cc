#include "methods/window_util.h"

#include <algorithm>

namespace easytime::methods {

easytime::Result<WindowedData> MakeWindows(const std::vector<double>& series,
                                           size_t lookback, size_t horizon) {
  if (lookback == 0 || horizon == 0) {
    return Status::InvalidArgument("lookback and horizon must be positive");
  }
  if (series.size() < lookback + horizon) {
    return Status::InvalidArgument(
        "series too short for windows: need " +
        std::to_string(lookback + horizon) + ", have " +
        std::to_string(series.size()));
  }
  WindowedData out;
  out.lookback = lookback;
  out.horizon = horizon;
  size_t count = series.size() - lookback - horizon + 1;
  out.inputs.reserve(count);
  out.targets.reserve(count);
  for (size_t r = 0; r < count; ++r) {
    out.inputs.emplace_back(series.begin() + static_cast<long>(r),
                            series.begin() + static_cast<long>(r + lookback));
    out.targets.emplace_back(
        series.begin() + static_cast<long>(r + lookback),
        series.begin() + static_cast<long>(r + lookback + horizon));
  }
  return out;
}

size_t ChooseLookback(size_t series_len, size_t period_hint, size_t horizon) {
  size_t lb;
  if (period_hint >= 2) {
    lb = 2 * period_hint;
  } else {
    lb = std::max<size_t>(8, series_len / 8);
  }
  lb = std::max(lb, horizon);
  // Keep at least 8 training windows.
  if (series_len > horizon + 8) {
    lb = std::min(lb, series_len - horizon - 8);
  } else if (series_len > horizon + 1) {
    lb = std::min(lb, series_len - horizon - 1);
  }
  return std::max<size_t>(lb, 1);
}

std::vector<double> RecursiveMultiStep(
    const std::vector<double>& history, size_t lookback,
    size_t trained_horizon, size_t horizon,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        predict) {
  std::vector<double> extended = history;
  std::vector<double> out;
  out.reserve(horizon);
  while (out.size() < horizon) {
    std::vector<double> window(
        extended.end() - static_cast<long>(
                             std::min(lookback, extended.size())),
        extended.end());
    // Left-pad with the first value when history is shorter than lookback.
    while (window.size() < lookback) {
      window.insert(window.begin(), window.empty() ? 0.0 : window.front());
    }
    std::vector<double> step = predict(window);
    for (size_t i = 0; i < step.size() && out.size() < horizon; ++i) {
      out.push_back(step[i]);
      extended.push_back(step[i]);
    }
    if (step.empty()) break;  // defensive: avoid infinite loop
  }
  out.resize(horizon, out.empty() ? 0.0 : out.back());
  (void)trained_horizon;
  return out;
}

}  // namespace easytime::methods
