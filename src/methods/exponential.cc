#include "methods/exponential.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/optimize.h"

namespace easytime::methods {

namespace {

/// Maps an unconstrained optimizer variable into (lo, hi) via a logistic.
double Squash(double x, double lo = 0.0, double hi = 1.0) {
  return lo + (hi - lo) / (1.0 + std::exp(-x));
}

double Unsquash(double p, double lo = 0.0, double hi = 1.0) {
  double q = (p - lo) / (hi - lo);
  q = std::clamp(q, 1e-6, 1.0 - 1e-6);
  return std::log(q / (1.0 - q));
}

}  // namespace

// ---------------------------------------------------------------- SES

Status SesForecaster::Fit(const std::vector<double>& train,
                          const FitContext& ctx) {
  if (train.empty()) {
    return Status::InvalidArgument("training data must be non-empty");
  }
  auto run = [&](double alpha) {
    double level = train[0];
    double sse = 0.0;
    for (size_t t = 1; t < train.size(); ++t) {
      double err = train[t] - level;
      sse += err * err;
      level += alpha * err;
    }
    return std::make_pair(sse, level);
  };

  if (alpha_cfg_ > 0.0) {
    alpha_ = std::min(alpha_cfg_, 1.0);
  } else if (train.size() < 3) {
    alpha_ = 0.5;
  } else {
    auto objective = [&](const std::vector<double>& x) {
      return run(Squash(x[0], 0.01, 0.99)).first;
    };
    // Each iteration is one O(n) smoothing pass; stride 8 keeps the clock
    // reads around one per ~1ms even on long series.
    DeadlineChecker deadline(ctx.deadline, 8);
    NelderMeadOptions opts;
    opts.should_stop = [&deadline] { return deadline.Expired(); };
    auto res = NelderMead(objective, {Unsquash(0.5, 0.01, 0.99)}, opts);
    if (res.stopped) {
      fitted_ = false;
      return Status::DeadlineExceeded("ses fit aborted mid-search");
    }
    alpha_ = Squash(res.x[0], 0.01, 0.99);
  }
  auto [sse, level] = run(alpha_);
  sse_ = sse;
  level_ = level;
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> SesForecaster::Forecast(size_t horizon) const {
  if (!fitted_) return Status::Internal("Forecast called before Fit");
  return std::vector<double>(horizon, level_);
}

Result<IntervalForecast> SesForecaster::ForecastWithIntervals(
    const std::vector<double>& train, const FitContext& ctx,
    double confidence) {
  EASYTIME_RETURN_IF_ERROR(ValidateIntervalRequest(train, ctx, confidence));
  EASYTIME_RETURN_IF_ERROR(Fit(train, ctx));
  double sigma2 =
      sse_ / static_cast<double>(std::max<size_t>(1, train.size() - 1));
  std::vector<double> sigma_h(ctx.horizon);
  for (size_t h = 0; h < ctx.horizon; ++h) {
    double var = sigma2 * (1.0 + static_cast<double>(h) * alpha_ * alpha_);
    sigma_h[h] = std::sqrt(std::max(var, 0.0));
  }
  return MakeNormalIntervals(std::vector<double>(ctx.horizon, level_), sigma_h,
                             confidence);
}

// ---------------------------------------------------------------- Holt

Status HoltForecaster::Fit(const std::vector<double>& train,
                           const FitContext& ctx) {
  if (train.size() < 2) {
    if (train.empty()) {
      return Status::InvalidArgument("training data must be non-empty");
    }
    level_ = train[0];
    trend_ = 0.0;
    alpha_ = 0.5;
    beta_ = 0.1;
    phi_ = 1.0;
    fitted_ = true;
    return Status::OK();
  }

  auto run = [&](double alpha, double beta, double phi, double* out_level,
                 double* out_trend) {
    double level = train[0];
    double trend = train[1] - train[0];
    double sse = 0.0;
    for (size_t t = 1; t < train.size(); ++t) {
      double pred = level + phi * trend;
      double err = train[t] - pred;
      sse += err * err;
      double new_level = alpha * train[t] + (1.0 - alpha) * (level + phi * trend);
      double new_trend = beta * (new_level - level) + (1.0 - beta) * phi * trend;
      level = new_level;
      trend = new_trend;
    }
    if (out_level) *out_level = level;
    if (out_trend) *out_trend = trend;
    return sse;
  };

  if (train.size() >= 6) {
    std::vector<double> x0 = {Unsquash(0.5, 0.01, 0.99),
                              Unsquash(0.1, 0.001, 0.99)};
    if (damped_) x0.push_back(Unsquash(0.9, 0.5, 0.999));
    auto objective = [&](const std::vector<double>& x) {
      double a = Squash(x[0], 0.01, 0.99);
      double b = Squash(x[1], 0.001, 0.99);
      double p = damped_ ? Squash(x[2], 0.5, 0.999) : 1.0;
      return run(a, b, p, nullptr, nullptr);
    };
    DeadlineChecker deadline(ctx.deadline, 8);
    NelderMeadOptions opts;
    opts.should_stop = [&deadline] { return deadline.Expired(); };
    auto res = NelderMead(objective, x0, opts);
    if (res.stopped) {
      fitted_ = false;
      return Status::DeadlineExceeded("holt fit aborted mid-search");
    }
    alpha_ = Squash(res.x[0], 0.01, 0.99);
    beta_ = Squash(res.x[1], 0.001, 0.99);
    phi_ = damped_ ? Squash(res.x[2], 0.5, 0.999) : 1.0;
  } else {
    alpha_ = 0.5;
    beta_ = 0.1;
    phi_ = damped_ ? 0.9 : 1.0;
  }
  sse_ = run(alpha_, beta_, phi_, &level_, &trend_);
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> HoltForecaster::Forecast(size_t horizon) const {
  if (!fitted_) return Status::Internal("Forecast called before Fit");
  std::vector<double> out(horizon);
  double damp_sum = 0.0;
  for (size_t h = 0; h < horizon; ++h) {
    damp_sum += std::pow(phi_, static_cast<double>(h + 1));
    out[h] = level_ + damp_sum * trend_;
  }
  return out;
}

Result<IntervalForecast> HoltForecaster::ForecastWithIntervals(
    const std::vector<double>& train, const FitContext& ctx,
    double confidence) {
  EASYTIME_RETURN_IF_ERROR(ValidateIntervalRequest(train, ctx, confidence));
  EASYTIME_RETURN_IF_ERROR(Fit(train, ctx));
  double sigma2 =
      sse_ / static_cast<double>(std::max<size_t>(1, train.size() - 1));
  // Class-1 state-space variance: var_h = sigma^2 (1 + sum_{j<h} c_j^2).
  // Our beta_ smooths level changes (beta*), so the state-space trend
  // coefficient is alpha * beta_.
  const double beta_ss = alpha_ * beta_;
  std::vector<double> sigma_h(ctx.horizon);
  double acc = 0.0;
  for (size_t h = 0; h < ctx.horizon; ++h) {
    if (h > 0) {
      double j = static_cast<double>(h);
      double trend_term =
          phi_ < 1.0 ? beta_ss * phi_ * (1.0 - std::pow(phi_, j)) / (1.0 - phi_)
                     : beta_ss * j;
      double cj = alpha_ + trend_term;
      acc += cj * cj;
    }
    sigma_h[h] = std::sqrt(std::max(sigma2 * (1.0 + acc), 0.0));
  }
  EASYTIME_ASSIGN_OR_RETURN(std::vector<double> point, Forecast(ctx.horizon));
  return MakeNormalIntervals(std::move(point), sigma_h, confidence);
}

// ---------------------------------------------------------------- HW

double HoltWintersForecaster::RunSmoothing(const std::vector<double>& y,
                                           double alpha, double beta,
                                           double gamma, bool record_state) {
  const size_t m = period_;
  const size_t n = y.size();
  // Initialize level/trend from the first cycle, seasonals from the first
  // two cycles.
  double level = 0.0;
  for (size_t i = 0; i < m; ++i) level += y[i];
  level /= static_cast<double>(m);
  double next = 0.0;
  for (size_t i = m; i < 2 * m && i < n; ++i) next += y[i];
  next /= static_cast<double>(m);
  double trend = (next - level) / static_cast<double>(m);

  std::vector<double> season(m, seasonal_ == Seasonal::kAdditive ? 0.0 : 1.0);
  for (size_t i = 0; i < m; ++i) {
    if (seasonal_ == Seasonal::kAdditive) {
      season[i] = y[i] - level;
    } else {
      season[i] = level > 1e-9 ? y[i] / level : 1.0;
    }
  }

  double sse = 0.0;
  for (size_t t = m; t < n; ++t) {
    size_t si = t % m;
    double pred = seasonal_ == Seasonal::kAdditive
                      ? level + trend + season[si]
                      : (level + trend) * season[si];
    double err = y[t] - pred;
    sse += err * err;

    double prev_level = level;
    if (seasonal_ == Seasonal::kAdditive) {
      level = alpha * (y[t] - season[si]) + (1.0 - alpha) * (level + trend);
      trend = beta * (level - prev_level) + (1.0 - beta) * trend;
      season[si] = gamma * (y[t] - level) + (1.0 - gamma) * season[si];
    } else {
      double denom = season[si];
      if (std::fabs(denom) < 1e-9) denom = denom < 0 ? -1e-9 : 1e-9;
      level = alpha * (y[t] / denom) + (1.0 - alpha) * (level + trend);
      trend = beta * (level - prev_level) + (1.0 - beta) * trend;
      double ld = std::fabs(level) < 1e-9 ? 1e-9 : level;
      season[si] = gamma * (y[t] / ld) + (1.0 - gamma) * season[si];
    }
    if (!std::isfinite(level) || !std::isfinite(trend)) return 1e300;
  }
  if (record_state) {
    level_ = level;
    trend_ = trend;
    season_ = season;
  }
  return sse;
}

Status HoltWintersForecaster::Fit(const std::vector<double>& train,
                                  const FitContext& ctx) {
  if (train.empty()) {
    return Status::InvalidArgument("training data must be non-empty");
  }
  period_ = period_cfg_ != 0 ? period_cfg_ : ctx.period_hint;

  // Multiplicative smoothing needs strictly positive data.
  bool positive = std::all_of(train.begin(), train.end(),
                              [](double v) { return v > 1e-9; });
  bool usable = period_ >= 2 && train.size() >= 2 * period_ + 2 &&
                (seasonal_ == Seasonal::kAdditive || positive);
  if (!usable) {
    fallback_ = std::make_unique<HoltForecaster>();
    FitContext fctx;
    fctx.deadline = ctx.deadline;
    Status st = fallback_->Fit(train, fctx);
    if (!st.ok()) {
      fallback_.reset();
      fitted_ = false;
      return st;
    }
    sse_ = fallback_->sse();
    fitted_ = true;
    return Status::OK();
  }
  fallback_.reset();

  auto objective = [&](const std::vector<double>& x) {
    double a = Squash(x[0], 0.01, 0.99);
    double b = Squash(x[1], 0.001, 0.5);
    double g = Squash(x[2], 0.001, 0.99);
    return RunSmoothing(train, a, b, g, /*record_state=*/false);
  };
  std::vector<double> x0 = {Unsquash(0.3, 0.01, 0.99),
                            Unsquash(0.05, 0.001, 0.5),
                            Unsquash(0.1, 0.001, 0.99)};
  NelderMeadOptions opts;
  opts.max_iterations = 200;
  DeadlineChecker deadline(ctx.deadline, 4);
  opts.should_stop = [&deadline] { return deadline.Expired(); };
  auto res = NelderMead(objective, x0, opts);
  if (res.stopped) {
    fitted_ = false;
    return Status::DeadlineExceeded("holt_winters fit aborted mid-search");
  }
  alpha_ = Squash(res.x[0], 0.01, 0.99);
  beta_ = Squash(res.x[1], 0.001, 0.5);
  gamma_ = Squash(res.x[2], 0.001, 0.99);
  sse_ = RunSmoothing(train, alpha_, beta_, gamma_, /*record_state=*/true);
  train_len_mod_ = train.size() % period_;
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> HoltWintersForecaster::Forecast(
    size_t horizon) const {
  if (!fitted_) return Status::Internal("Forecast called before Fit");
  if (fallback_) return fallback_->Forecast(horizon);
  std::vector<double> out(horizon);
  const size_t m = period_;
  // Seasonal index continues from the end of training: season_[t % m] was
  // last updated at training time t, so forecast step h uses (n + h) % m —
  // but RunSmoothing indexes by absolute t % m, so continue the same cycle.
  for (size_t h = 0; h < horizon; ++h) {
    size_t si = (train_len_mod_ + h) % m;
    double base = level_ + trend_ * static_cast<double>(h + 1);
    out[h] = seasonal_ == Seasonal::kAdditive ? base + season_[si]
                                              : base * season_[si];
  }
  return out;
}

Result<IntervalForecast> HoltWintersForecaster::ForecastWithIntervals(
    const std::vector<double>& train, const FitContext& ctx,
    double confidence) {
  EASYTIME_RETURN_IF_ERROR(ValidateIntervalRequest(train, ctx, confidence));
  EASYTIME_RETURN_IF_ERROR(Fit(train, ctx));
  if (fallback_) {
    FitContext fctx;
    fctx.horizon = ctx.horizon;
    fctx.deadline = ctx.deadline;
    return fallback_->ForecastWithIntervals(train, fctx, confidence);
  }
  const size_t m = period_;
  double sigma2 =
      sse_ / static_cast<double>(std::max<size_t>(1, train.size() - m));
  const double beta_ss = alpha_ * beta_;
  std::vector<double> sigma_h(ctx.horizon);
  double acc = 0.0;
  for (size_t h = 0; h < ctx.horizon; ++h) {
    if (h > 0) {
      double j = static_cast<double>(h);
      // Additive-seasonal class-1 coefficients; the multiplicative variant
      // reuses them as an approximation.
      double cj = alpha_ + beta_ss * j + (h % m == 0 ? gamma_ : 0.0);
      acc += cj * cj;
    }
    sigma_h[h] = std::sqrt(std::max(sigma2 * (1.0 + acc), 0.0));
  }
  EASYTIME_ASSIGN_OR_RETURN(std::vector<double> point, Forecast(ctx.horizon));
  return MakeNormalIntervals(std::move(point), sigma_h, confidence);
}

}  // namespace easytime::methods
