#include "methods/arima.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/optimize.h"

namespace easytime::methods {

namespace {

/// OLS fit of an AR(p); returns (intercept, phi, sse) or error.
struct ArFit {
  double intercept = 0.0;
  std::vector<double> phi;
  double sse = 0.0;
};

Result<ArFit> FitArOls(const std::vector<double>& y, size_t p) {
  size_t n = y.size();
  if (n < p + 2) return Status::InvalidArgument("series too short for AR fit");
  size_t rows = n - p;
  size_t cols = p + 1;
  std::vector<double> x(rows * cols);
  std::vector<double> target(rows);
  for (size_t r = 0; r < rows; ++r) {
    x[r * cols] = 1.0;
    for (size_t j = 0; j < p; ++j) {
      x[r * cols + 1 + j] = y[p + r - 1 - j];
    }
    target[r] = y[p + r];
  }
  EASYTIME_ASSIGN_OR_RETURN(std::vector<double> beta,
                            LeastSquares(x, target, rows, cols, 1e-8));
  ArFit fit;
  fit.intercept = beta[0];
  fit.phi.assign(beta.begin() + 1, beta.end());
  for (size_t r = 0; r < rows; ++r) {
    double pred = 0.0;
    for (size_t c = 0; c < cols; ++c) pred += x[r * cols + c] * beta[c];
    double e = target[r] - pred;
    fit.sse += e * e;
  }
  return fit;
}

}  // namespace

// ---------------------------------------------------------------- AR

Status ArForecaster::Fit(const std::vector<double>& train,
                         const FitContext& ctx) {
  if (train.size() < 4) {
    return Status::InvalidArgument("AR needs at least 4 observations");
  }
  // Each candidate order is a full OLS solve — already >1ms on long series,
  // so the order-search loop checks the clock every iteration.
  DeadlineChecker deadline(ctx.deadline, 1);
  size_t best_order = order_cfg_;
  if (best_order == 0) {
    double best_aic = 1e300;
    size_t pmax = std::min(max_order_, train.size() / 4);
    pmax = std::max<size_t>(pmax, 1);
    for (size_t p = 1; p <= pmax; ++p) {
      if (deadline.Expired()) {
        fitted_ = false;
        return Status::DeadlineExceeded("ar fit aborted mid-order-search");
      }
      auto fit = FitArOls(train, p);
      if (!fit.ok()) continue;
      size_t rows = train.size() - p;
      double sigma2 = std::max(fit->sse / static_cast<double>(rows), 1e-12);
      double aic = static_cast<double>(rows) * std::log(sigma2) +
                   2.0 * static_cast<double>(p + 1);
      if (aic < best_aic) {
        best_aic = aic;
        best_order = p;
      }
    }
    if (best_order == 0) best_order = 1;
  }
  best_order = std::min(best_order, train.size() - 2);
  best_order = std::max<size_t>(best_order, 1);

  EASYTIME_ASSIGN_OR_RETURN(ArFit fit, FitArOls(train, best_order));
  order_ = best_order;
  intercept_ = fit.intercept;
  phi_ = fit.phi;
  tail_.assign(train.end() - static_cast<long>(order_), train.end());
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> ArForecaster::Forecast(size_t horizon) const {
  if (!fitted_) return Status::Internal("Forecast called before Fit");
  std::vector<double> state = tail_;  // most recent last
  std::vector<double> out(horizon);
  for (size_t h = 0; h < horizon; ++h) {
    double pred = intercept_;
    for (size_t j = 0; j < order_; ++j) {
      pred += phi_[j] * state[state.size() - 1 - j];
    }
    out[h] = pred;
    state.push_back(pred);
  }
  return out;
}

// ---------------------------------------------------------------- ARIMA

double ArimaForecaster::Css(const std::vector<double>& w,
                            const std::vector<double>& params,
                            std::vector<double>* residuals) const {
  // params = [c, phi_1..phi_p, theta_1..theta_q]
  const double c = params[0];
  const double* phi = params.data() + 1;
  const double* theta = params.data() + 1 + p_;
  size_t n = w.size();
  std::vector<double> e(n, 0.0);
  double sse = 0.0;
  for (size_t t = p_; t < n; ++t) {
    double pred = c;
    for (size_t i = 0; i < p_; ++i) pred += phi[i] * w[t - 1 - i];
    for (size_t j = 0; j < q_; ++j) {
      if (t >= 1 + j) pred += theta[j] * e[t - 1 - j];
    }
    e[t] = w[t] - pred;
    sse += e[t] * e[t];
    if (!std::isfinite(sse)) return 1e300;
  }
  if (residuals) *residuals = std::move(e);
  return sse;
}

Status ArimaForecaster::Fit(const std::vector<double>& train,
                            const FitContext& ctx) {
  if (train.size() < p_ + d_ + q_ + 8) {
    return Status::InvalidArgument("series too short for ARIMA(" +
                                   std::to_string(p_) + "," +
                                   std::to_string(d_) + "," +
                                   std::to_string(q_) + ")");
  }

  // Difference d times, remembering the last value at each level for
  // integration at forecast time.
  std::vector<double> w = train;
  integrate_tail_.clear();
  for (size_t k = 0; k < d_; ++k) {
    integrate_tail_.push_back(w.back());
    w = Difference(w);
  }

  // Initialize phi from an AR OLS fit, theta at 0.
  std::vector<double> params(1 + p_ + q_, 0.0);
  if (p_ > 0) {
    auto ar = FitArOls(w, p_);
    if (ar.ok()) {
      params[0] = ar->intercept;
      for (size_t i = 0; i < p_; ++i) params[1 + i] = ar->phi[i];
    }
  } else {
    params[0] = Mean(w);
  }

  auto objective = [&](const std::vector<double>& x) {
    // Soft stationarity/invertibility guard: penalize |coef| > 1.2.
    double penalty = 0.0;
    for (size_t i = 1; i < x.size(); ++i) {
      double ex = std::fabs(x[i]) - 1.2;
      if (ex > 0.0) penalty += 1e3 * ex * ex;
    }
    return Css(w, x, nullptr) * (1.0 + penalty);
  };
  NelderMeadOptions opts;
  opts.max_iterations = 400;
  DeadlineChecker deadline(ctx.deadline, 4);
  opts.should_stop = [&deadline] { return deadline.Expired(); };
  auto res = NelderMead(objective, params, opts);
  if (res.stopped) {
    fitted_ = false;
    return Status::DeadlineExceeded("arima fit aborted mid-search");
  }

  intercept_ = res.x[0];
  phi_.assign(res.x.begin() + 1, res.x.begin() + 1 + static_cast<long>(p_));
  theta_.assign(res.x.begin() + 1 + static_cast<long>(p_), res.x.end());

  std::vector<double> residuals;
  Css(w, res.x, &residuals);
  size_t keep_p = std::min(p_, w.size());
  diffed_tail_.assign(w.end() - static_cast<long>(keep_p), w.end());
  size_t keep_q = std::min(q_, residuals.size());
  resid_tail_.assign(residuals.end() - static_cast<long>(keep_q),
                     residuals.end());
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> ArimaForecaster::Forecast(size_t horizon) const {
  if (!fitted_) return Status::Internal("Forecast called before Fit");
  std::vector<double> w = diffed_tail_;  // recent differenced values
  std::vector<double> e = resid_tail_;   // recent residuals
  std::vector<double> diffed_fc(horizon);
  for (size_t h = 0; h < horizon; ++h) {
    double pred = intercept_;
    for (size_t i = 0; i < p_ && i < w.size(); ++i) {
      pred += phi_[i] * w[w.size() - 1 - i];
    }
    for (size_t j = 0; j < q_ && j < e.size(); ++j) {
      pred += theta_[j] * e[e.size() - 1 - j];
    }
    diffed_fc[h] = pred;
    w.push_back(pred);
    e.push_back(0.0);  // future shocks have zero expectation
  }

  // Integrate back through each differencing level.
  std::vector<double> out = std::move(diffed_fc);
  for (size_t k = integrate_tail_.size(); k-- > 0;) {
    double prev = integrate_tail_[k];
    for (size_t h = 0; h < horizon; ++h) {
      prev += out[h];
      out[h] = prev;
    }
  }
  return out;
}

}  // namespace easytime::methods
