#pragma once

/// \file exponential.h
/// \brief Exponential-smoothing family: SES, Holt's linear (optionally
/// damped), and Holt-Winters seasonal smoothing (additive/multiplicative).
/// Smoothing parameters are estimated by minimizing in-sample one-step SSE
/// with Nelder–Mead.

#include "methods/forecaster.h"

namespace easytime::methods {

/// Simple exponential smoothing; flat forecasts at the final level.
class SesForecaster : public Forecaster {
 public:
  /// \param alpha fixed smoothing parameter in (0,1]; <= 0 optimizes it
  explicit SesForecaster(double alpha = -1.0) : alpha_cfg_(alpha) {}

  easytime::Status Fit(const std::vector<double>& train,
                       const FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  /// Analytic class-1 intervals: var_h = sigma1^2 * (1 + (h-1) alpha^2).
  easytime::Result<IntervalForecast> ForecastWithIntervals(
      const std::vector<double>& train, const FitContext& ctx,
      double confidence) override;
  std::string name() const override { return "ses"; }
  Family family() const override { return Family::kStatistical; }

  double alpha() const { return alpha_; }
  /// In-sample one-step sum of squared errors at the fitted parameters.
  double sse() const { return sse_; }
  /// Number of free parameters (for information criteria).
  int num_params() const { return alpha_cfg_ <= 0.0 ? 1 : 0; }

 private:
  double alpha_cfg_;
  double alpha_ = 0.5;
  double level_ = 0.0;
  double sse_ = 0.0;
  bool fitted_ = false;
};

/// Holt's linear trend method with optional damping.
class HoltForecaster : public Forecaster {
 public:
  /// \param damped use a damped trend (phi optimized)
  explicit HoltForecaster(bool damped = false) : damped_(damped) {}

  easytime::Status Fit(const std::vector<double>& train,
                       const FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  /// Analytic class-1 intervals with c_j = alpha + j beta (damped:
  /// alpha + beta phi (1 - phi^j) / (1 - phi)).
  easytime::Result<IntervalForecast> ForecastWithIntervals(
      const std::vector<double>& train, const FitContext& ctx,
      double confidence) override;
  std::string name() const override { return damped_ ? "holt_damped" : "holt"; }
  Family family() const override { return Family::kStatistical; }

  double sse() const { return sse_; }
  int num_params() const { return damped_ ? 3 : 2; }

 private:
  bool damped_;
  double alpha_ = 0.5, beta_ = 0.1, phi_ = 1.0;
  double level_ = 0.0, trend_ = 0.0;
  double sse_ = 0.0;
  bool fitted_ = false;
};

/// Holt-Winters triple exponential smoothing.
class HoltWintersForecaster : public Forecaster {
 public:
  enum class Seasonal { kAdditive, kMultiplicative };

  /// \param seasonal seasonal component type
  /// \param period 0 = use the period from FitContext
  explicit HoltWintersForecaster(Seasonal seasonal = Seasonal::kAdditive,
                                 size_t period = 0)
      : seasonal_(seasonal), period_cfg_(period) {}

  easytime::Status Fit(const std::vector<double>& train,
                       const FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  /// Analytic additive-seasonal intervals with c_j = alpha + j beta +
  /// gamma 1{j mod m == 0}; the multiplicative variant reuses the same
  /// formula as an approximation. Short series delegate to the Holt
  /// fallback's intervals.
  easytime::Result<IntervalForecast> ForecastWithIntervals(
      const std::vector<double>& train, const FitContext& ctx,
      double confidence) override;
  std::string name() const override {
    return seasonal_ == Seasonal::kAdditive ? "holt_winters_add"
                                            : "holt_winters_mul";
  }
  Family family() const override { return Family::kStatistical; }

  double sse() const { return sse_; }
  int num_params() const { return 3; }
  size_t period() const { return period_; }

 private:
  double RunSmoothing(const std::vector<double>& y, double alpha, double beta,
                      double gamma, bool record_state);

  Seasonal seasonal_;
  size_t period_cfg_;
  size_t period_ = 0;
  size_t train_len_mod_ = 0;  ///< train length mod period: forecast phase
  double alpha_ = 0.3, beta_ = 0.05, gamma_ = 0.1;
  double level_ = 0.0, trend_ = 0.0;
  std::vector<double> season_;
  // Fallback when the series is too short for seasonal smoothing.
  std::unique_ptr<HoltForecaster> fallback_;
  double sse_ = 0.0;
  bool fitted_ = false;
};

}  // namespace easytime::methods
