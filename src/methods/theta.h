#pragma once

/// \file theta.h
/// \brief The Theta method (Assimakopoulos & Nikolopoulos): decomposes the
/// (optionally deseasonalized) series into theta-lines theta=0 (the linear
/// trend) and theta=2 (curvature-doubled series forecast by SES), and
/// combines them 50/50. A strong M-competition baseline.

#include "methods/exponential.h"
#include "methods/forecaster.h"

namespace easytime::methods {

/// Classic two-line Theta forecaster with additive seasonal adjustment.
class ThetaForecaster : public Forecaster {
 public:
  ThetaForecaster() = default;

  easytime::Status Fit(const std::vector<double>& train,
                       const FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  std::string name() const override { return "theta"; }
  Family family() const override { return Family::kStatistical; }

 private:
  double intercept_ = 0.0;
  double slope_ = 0.0;
  size_t n_ = 0;
  size_t period_ = 0;
  std::vector<double> seasonal_profile_;  ///< per-phase additive component
  SesForecaster ses_;
  bool fitted_ = false;
};

}  // namespace easytime::methods
