#pragma once

/// \file theta.h
/// \brief The Theta method (Assimakopoulos & Nikolopoulos): decomposes the
/// (optionally deseasonalized) series into theta-lines theta=0 (the linear
/// trend) and theta=2 (curvature-doubled series forecast by SES), and
/// combines them 50/50. A strong M-competition baseline.

#include "methods/exponential.h"
#include "methods/forecaster.h"

namespace easytime::methods {

/// Classic two-line Theta forecaster with additive seasonal adjustment.
class ThetaForecaster : public Forecaster {
 public:
  ThetaForecaster() = default;

  easytime::Status Fit(const std::vector<double>& train,
                       const FitContext& ctx) override;
  easytime::Result<std::vector<double>> Forecast(size_t horizon) const override;
  /// Analytic intervals: the theta combination halves the SES one-step
  /// error on the theta-2 line, so sigma1^2 = 0.25 * sse(ses) / n with
  /// class-1 SES variance growth.
  easytime::Result<IntervalForecast> ForecastWithIntervals(
      const std::vector<double>& train, const FitContext& ctx,
      double confidence) override;
  std::string name() const override { return "theta"; }
  Family family() const override { return Family::kStatistical; }

 private:
  double intercept_ = 0.0;
  double slope_ = 0.0;
  size_t n_ = 0;
  size_t period_ = 0;
  std::vector<double> seasonal_profile_;  ///< per-phase additive component
  SesForecaster ses_;
  bool fitted_ = false;
};

}  // namespace easytime::methods
