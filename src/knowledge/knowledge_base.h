#pragma once

/// \file knowledge_base.h
/// \brief The benchmark knowledge: "the meta-information of both datasets
/// and methods, and also the benchmarking experiment results" (paper
/// §II-A). Built by running the pipeline over the dataset suite; consumed by
/// the Automated Ensemble (method-performance supervision) and the Q&A
/// module (as SQL tables).

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "pipeline/runner.h"
#include "sql/table.h"
#include "tsdata/characteristics.h"
#include "tsdata/repository.h"

namespace easytime::knowledge {

/// Dataset metadata row.
struct DatasetMeta {
  std::string name;
  std::string domain;
  bool multivariate = false;
  size_t num_channels = 1;
  size_t length = 0;
  tsdata::Characteristics characteristics;
};

/// Method metadata row.
struct MethodMeta {
  std::string name;
  std::string family;
  std::string description;
};

/// One benchmark result: (method, dataset, protocol) -> metric values.
struct ResultEntry {
  std::string dataset;
  std::string method;
  std::string strategy;
  size_t horizon = 0;
  std::map<std::string, double> metrics;
  double fit_seconds = 0.0;
  double forecast_seconds = 0.0;
};

/// \brief The accumulated benchmark knowledge base.
class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  /// Registers dataset metadata (characteristics are computed here).
  void AddDataset(const tsdata::Dataset& ds);

  /// Registers metadata for every method in the global registry.
  void AddAllMethods();

  /// Ingests a pipeline report's successful records.
  void AddReport(const pipeline::BenchmarkReport& report);

  const std::vector<DatasetMeta>& datasets() const { return datasets_; }
  const std::vector<MethodMeta>& methods() const { return methods_; }
  const std::vector<ResultEntry>& results() const { return results_; }

  /// Dataset metadata by name.
  easytime::Result<const DatasetMeta*> GetDataset(
      const std::string& name) const;

  /// \brief Results for one dataset keyed by method — the supervision signal
  /// the Automated Ensemble's classifier trains on.
  std::map<std::string, double> MethodScores(const std::string& dataset,
                                             const std::string& metric) const;

  /// \brief Materializes the knowledge base as SQL tables:
  ///   datasets(name, domain, multivariate, num_channels, length,
  ///            seasonality, trend, transition, shifting, stationarity,
  ///            correlation, period)
  ///   methods(name, family, description)
  ///   results(dataset, method, strategy, horizon, metric, value,
  ///           fit_seconds, forecast_seconds)
  /// Results are in long form (one row per metric) so "top-k by MAE" style
  /// questions stay simple SQL.
  easytime::Status ExportToDatabase(sql::Database* db) const;

  /// Persists results to CSV / reloads them (reporting-layer round trip).
  easytime::Status SaveResultsCsv(const std::string& path) const;
  easytime::Status LoadResultsCsv(const std::string& path);

 private:
  std::vector<DatasetMeta> datasets_;
  std::vector<MethodMeta> methods_;
  std::vector<ResultEntry> results_;
  std::map<std::string, size_t> dataset_index_;
};

/// \brief Convenience: generate a suite, run the full pipeline on it, and
/// return the populated knowledge base plus the repository it was built
/// from. \p quick uses a reduced method set for fast tests/demos.
struct SeededKnowledge {
  tsdata::Repository repository;
  KnowledgeBase kb;
};

easytime::Result<SeededKnowledge> SeedKnowledge(
    const tsdata::SuiteSpec& suite, const eval::EvalConfig& eval_config,
    const std::vector<std::string>& method_names = {});

}  // namespace easytime::knowledge
