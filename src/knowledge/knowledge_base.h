#pragma once

/// \file knowledge_base.h
/// \brief The benchmark knowledge: "the meta-information of both datasets
/// and methods, and also the benchmarking experiment results" (paper
/// §II-A). Built by running the pipeline over the dataset suite; consumed by
/// the Automated Ensemble (method-performance supervision) and the Q&A
/// module (as SQL tables).

#include <cstdint>
#include <deque>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "pipeline/runner.h"
#include "sql/table.h"
#include "tsdata/characteristics.h"
#include "tsdata/repository.h"

namespace easytime::knowledge {

/// Dataset metadata row.
struct DatasetMeta {
  std::string name;
  std::string domain;
  bool multivariate = false;
  size_t num_channels = 1;
  size_t length = 0;
  /// Series length at the last full characteristics extraction. Streaming
  /// appends refresh the cheap fields (length) on every batch and only
  /// re-profile once the series has grown past an amortization threshold,
  /// so per-point append cost stays O(1) (see UpdateDatasetData).
  size_t profiled_length = 0;
  tsdata::Characteristics characteristics;
};

/// Method metadata row.
struct MethodMeta {
  std::string name;
  std::string family;
  std::string description;
};

/// One benchmark result: (method, dataset, protocol) -> metric values.
struct ResultEntry {
  std::string dataset;
  std::string method;
  std::string strategy;
  size_t horizon = 0;
  std::map<std::string, double> metrics;
  double fit_seconds = 0.0;
  double forecast_seconds = 0.0;
};

/// \brief The accumulated benchmark knowledge base.
///
/// Thread safety: mutators take an exclusive lock and bump a monotonically
/// increasing version counter; the named query methods (GetDataset,
/// MethodScores, ExportToDatabase, the counts/snapshots, version()) take a
/// shared lock, so any number of readers may run concurrently with appends.
/// Rows live in deques, so references handed out under the lock are never
/// invalidated by later appends. The raw container accessors (datasets(),
/// methods(), results()) remain lock-free for the single-threaded build and
/// bench phases — don't iterate them while another thread may be appending.
class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  /// Movable (the mutex itself stays put; the source is locked during the
  /// move). Only safe while no other thread is using the source — moves
  /// belong to the single-threaded seeding phase.
  KnowledgeBase(KnowledgeBase&& other) noexcept;
  KnowledgeBase& operator=(KnowledgeBase&& other) noexcept;

  /// Registers dataset metadata (characteristics are computed here).
  void AddDataset(const tsdata::Dataset& ds);

  /// Outcome of a streaming metadata refresh.
  struct DataUpdate {
    uint64_t data_version = 0;  ///< new per-dataset data version
    bool characteristics_refreshed = false;
  };

  /// \brief Refreshes one dataset's metadata after its series grew (the
  /// streaming-append path). Always updates the cheap fields (length) and
  /// bumps the dataset's data version; re-extracts the six characteristic
  /// axes only when the series has grown by max(32, 10%) points since the
  /// last full profile, amortizing the O(n) extraction to O(1) per appended
  /// point. No-op (returns version 0) when the dataset is not registered.
  DataUpdate UpdateDatasetData(const tsdata::Dataset& ds);

  /// \brief Monotonic per-dataset data version, bumped by UpdateDatasetData.
  /// The serving layer's tag invalidation is eager, so this mainly serves
  /// stats/tests as the observable "this dataset's series changed" signal.
  /// Returns 0 for never-appended (or unknown) datasets.
  uint64_t DataVersion(const std::string& name) const;

  /// Registers metadata for every method in the global registry.
  void AddAllMethods();

  /// Ingests a pipeline report's successful records.
  void AddReport(const pipeline::BenchmarkReport& report);

  /// \brief Replaces the entire contents from recovered state (snapshot +
  /// replayed tail), advancing version() exactly once regardless of row
  /// count — bulk recovery must not churn serve-cache invalidation the way
  /// N AddReport calls would. The dataset index is rebuilt; duplicate
  /// dataset names keep the first occurrence.
  void Restore(std::vector<DatasetMeta> datasets,
               std::vector<MethodMeta> methods,
               std::vector<ResultEntry> results);

  const std::deque<DatasetMeta>& datasets() const { return datasets_; }
  const std::deque<MethodMeta>& methods() const { return methods_; }
  const std::deque<ResultEntry>& results() const { return results_; }

  /// \brief Number of times the knowledge base has been mutated. Purely
  /// observational (stats, tests): the serving layer invalidates its result
  /// cache per dataset via tags, not by comparing this counter, so a KB
  /// commit no longer nukes unrelated cache entries. Non-mutating calls
  /// (duplicate AddDataset, empty AddReport, re-run AddAllMethods) do not
  /// bump it.
  uint64_t version() const;

  /// Locked row counts (safe under concurrent appends).
  size_t NumDatasets() const;
  size_t NumMethods() const;
  size_t NumResults() const;

  /// Locked copy of the result rows (safe under concurrent appends).
  std::vector<ResultEntry> ResultsSnapshot() const;

  /// Dataset metadata by name.
  easytime::Result<const DatasetMeta*> GetDataset(
      const std::string& name) const;

  /// \brief Results for one dataset keyed by method — the supervision signal
  /// the Automated Ensemble's classifier trains on.
  std::map<std::string, double> MethodScores(const std::string& dataset,
                                             const std::string& metric) const;

  /// \brief Materializes the knowledge base as SQL tables:
  ///   datasets(name, domain, multivariate, num_channels, length,
  ///            seasonality, trend, transition, shifting, stationarity,
  ///            correlation, period)
  ///   methods(name, family, description)
  ///   results(dataset, method, strategy, horizon, metric, value,
  ///           fit_seconds, forecast_seconds)
  /// Results are in long form (one row per metric) so "top-k by MAE" style
  /// questions stay simple SQL.
  easytime::Status ExportToDatabase(sql::Database* db) const;

  /// Persists results to CSV / reloads them (reporting-layer round trip).
  easytime::Status SaveResultsCsv(const std::string& path) const;
  easytime::Status LoadResultsCsv(const std::string& path);

 private:
  mutable std::shared_mutex mu_;
  uint64_t version_ = 0;  // guarded by mu_
  std::deque<DatasetMeta> datasets_;
  std::deque<MethodMeta> methods_;
  std::deque<ResultEntry> results_;
  std::map<std::string, size_t> dataset_index_;
  std::map<std::string, uint64_t> data_versions_;  // guarded by mu_
};

/// \brief Convenience: generate a suite, run the full pipeline on it, and
/// return the populated knowledge base plus the repository it was built
/// from. \p quick uses a reduced method set for fast tests/demos.
struct SeededKnowledge {
  tsdata::Repository repository;
  KnowledgeBase kb;
};

easytime::Result<SeededKnowledge> SeedKnowledge(
    const tsdata::SuiteSpec& suite, const eval::EvalConfig& eval_config,
    const std::vector<std::string>& method_names = {});

}  // namespace easytime::knowledge
