#include "knowledge/knowledge_store.h"

#include <cmath>
#include <utility>

#include "common/logging.h"

namespace easytime::knowledge {

namespace {

/// Full-state image for snapshots (and the Restore() payload shape).
struct DecodedState {
  std::vector<DatasetMeta> datasets;
  std::vector<MethodMeta> methods;
  std::vector<ResultEntry> results;
};

easytime::Result<DecodedState> DecodeState(const easytime::Json& j) {
  if (!j.is_object()) {
    return easytime::Status::ParseError("knowledge state must be an object");
  }
  DecodedState out;
  for (const auto& d : j.Get("datasets").items()) {
    EASYTIME_ASSIGN_OR_RETURN(DatasetMeta meta, DatasetMetaFromJson(d));
    out.datasets.push_back(std::move(meta));
  }
  for (const auto& m : j.Get("methods").items()) {
    EASYTIME_ASSIGN_OR_RETURN(MethodMeta meta, MethodMetaFromJson(m));
    out.methods.push_back(std::move(meta));
  }
  for (const auto& r : j.Get("results").items()) {
    EASYTIME_ASSIGN_OR_RETURN(ResultEntry entry, ResultEntryFromJson(r));
    out.results.push_back(std::move(entry));
  }
  return out;
}

std::string EncodeState(const KnowledgeBase& kb) {
  easytime::Json state = easytime::Json::Object();
  easytime::Json datasets = easytime::Json::Array();
  for (const auto& d : kb.datasets()) datasets.Append(DatasetMetaToJson(d));
  easytime::Json methods = easytime::Json::Array();
  for (const auto& m : kb.methods()) methods.Append(MethodMetaToJson(m));
  easytime::Json results = easytime::Json::Array();
  for (const auto& r : kb.results()) results.Append(ResultEntryToJson(r));
  state.Set("datasets", std::move(datasets));
  state.Set("methods", std::move(methods));
  state.Set("results", std::move(results));
  return state.Dump();
}

}  // namespace

easytime::Json DatasetMetaToJson(const DatasetMeta& meta) {
  easytime::Json j = easytime::Json::Object();
  j.Set("name", meta.name);
  j.Set("domain", meta.domain);
  j.Set("multivariate", meta.multivariate);
  j.Set("num_channels", static_cast<int64_t>(meta.num_channels));
  j.Set("length", static_cast<int64_t>(meta.length));
  j.Set("profiled_length", static_cast<int64_t>(meta.profiled_length));
  easytime::Json c = easytime::Json::Object();
  c.Set("seasonality", meta.characteristics.seasonality);
  c.Set("trend", meta.characteristics.trend);
  c.Set("transition", meta.characteristics.transition);
  c.Set("shifting", meta.characteristics.shifting);
  c.Set("stationarity", meta.characteristics.stationarity);
  c.Set("correlation", meta.characteristics.correlation);
  c.Set("period", static_cast<int64_t>(meta.characteristics.period));
  j.Set("characteristics", std::move(c));
  return j;
}

easytime::Result<DatasetMeta> DatasetMetaFromJson(const easytime::Json& j) {
  if (!j.is_object() || !j.Has("name")) {
    return easytime::Status::ParseError("dataset row missing 'name'");
  }
  DatasetMeta meta;
  meta.name = j.GetString("name", "");
  meta.domain = j.GetString("domain", "");
  meta.multivariate = j.GetBool("multivariate", false);
  meta.num_channels = static_cast<size_t>(j.GetInt("num_channels", 1));
  meta.length = static_cast<size_t>(j.GetInt("length", 0));
  // Older snapshots predate profiled_length; falling back to `length` means
  // "profiled as of the restored length", which is exactly right for them.
  meta.profiled_length = static_cast<size_t>(
      j.GetInt("profiled_length", static_cast<int64_t>(meta.length)));
  const easytime::Json& c = j.Get("characteristics");
  meta.characteristics.seasonality = c.GetDouble("seasonality", 0.0);
  meta.characteristics.trend = c.GetDouble("trend", 0.0);
  meta.characteristics.transition = c.GetDouble("transition", 0.0);
  meta.characteristics.shifting = c.GetDouble("shifting", 0.0);
  meta.characteristics.stationarity = c.GetDouble("stationarity", 0.0);
  meta.characteristics.correlation = c.GetDouble("correlation", 0.0);
  meta.characteristics.period = static_cast<size_t>(c.GetInt("period", 0));
  return meta;
}

easytime::Json MethodMetaToJson(const MethodMeta& meta) {
  easytime::Json j = easytime::Json::Object();
  j.Set("name", meta.name);
  j.Set("family", meta.family);
  j.Set("description", meta.description);
  return j;
}

easytime::Result<MethodMeta> MethodMetaFromJson(const easytime::Json& j) {
  if (!j.is_object() || !j.Has("name")) {
    return easytime::Status::ParseError("method row missing 'name'");
  }
  MethodMeta meta;
  meta.name = j.GetString("name", "");
  meta.family = j.GetString("family", "");
  meta.description = j.GetString("description", "");
  return meta;
}

easytime::Json ResultEntryToJson(const ResultEntry& entry) {
  easytime::Json j = easytime::Json::Object();
  j.Set("dataset", entry.dataset);
  j.Set("method", entry.method);
  j.Set("strategy", entry.strategy);
  j.Set("horizon", static_cast<int64_t>(entry.horizon));
  easytime::Json metrics = easytime::Json::Object();
  for (const auto& [name, value] : entry.metrics) {
    // Non-finite values serialize as JSON null; keep the key so the metric's
    // existence survives the round trip (FromJson restores NaN).
    metrics.Set(name, value);
  }
  j.Set("metrics", std::move(metrics));
  j.Set("fit_seconds", entry.fit_seconds);
  j.Set("forecast_seconds", entry.forecast_seconds);
  return j;
}

easytime::Result<ResultEntry> ResultEntryFromJson(const easytime::Json& j) {
  if (!j.is_object() || !j.Has("dataset") || !j.Has("method")) {
    return easytime::Status::ParseError(
        "result row missing 'dataset'/'method'");
  }
  ResultEntry entry;
  entry.dataset = j.GetString("dataset", "");
  entry.method = j.GetString("method", "");
  entry.strategy = j.GetString("strategy", "");
  entry.horizon = static_cast<size_t>(j.GetInt("horizon", 0));
  const easytime::Json& metrics = j.Get("metrics");
  for (const auto& name : metrics.keys()) {
    const easytime::Json& v = metrics.Get(name);
    entry.metrics[name] =
        v.is_number() ? v.AsDouble() : std::nan("");
  }
  entry.fit_seconds = j.GetDouble("fit_seconds", 0.0);
  entry.forecast_seconds = j.GetDouble("forecast_seconds", 0.0);
  return entry;
}

KnowledgeStore::KnowledgeStore(Options options,
                               std::unique_ptr<store::RecordStore> store)
    : options_(std::move(options)), store_(std::move(store)) {}

easytime::Result<std::unique_ptr<KnowledgeStore>> KnowledgeStore::Open(
    const Options& options, KnowledgeBase* kb, OpenInfo* info) {
  if (kb == nullptr) {
    return easytime::Status::InvalidArgument(
        "KnowledgeStore::Open requires a knowledge base");
  }
  store::RecordStoreOptions store_options;
  store_options.segment_bytes = options.segment_bytes;
  store_options.sync_every_append = options.sync_every_append;
  store_options.keep_snapshots = options.keep_snapshots;

  OpenInfo local;
  OpenInfo* oi = info ? info : &local;
  *oi = OpenInfo{};
  EASYTIME_ASSIGN_OR_RETURN(
      std::unique_ptr<store::RecordStore> rs,
      store::RecordStore::Open(options.dir, store_options, &oi->recovery));

  DecodedState state;
  bool have_state = false;
  if (oi->recovery.has_snapshot) {
    EASYTIME_ASSIGN_OR_RETURN(easytime::Json snap,
                              easytime::Json::Parse(oi->recovery.snapshot));
    EASYTIME_ASSIGN_OR_RETURN(state, DecodeState(snap));
    have_state = true;
  }
  for (const auto& [seq, payload] : oi->recovery.tail) {
    (void)seq;
    EASYTIME_ASSIGN_OR_RETURN(easytime::Json rec,
                              easytime::Json::Parse(payload));
    const std::string type = rec.GetString("type", "");
    if (type == "results") {
      for (const auto& r : rec.Get("results").items()) {
        EASYTIME_ASSIGN_OR_RETURN(ResultEntry entry, ResultEntryFromJson(r));
        state.results.push_back(std::move(entry));
      }
      have_state = true;
    } else {
      EASYTIME_LOG(Warning) << "knowledge store: skipping WAL record of "
                            << "unknown type '" << type << "'";
    }
  }
  if (have_state) {
    oi->restored = true;
    oi->datasets = state.datasets.size();
    oi->methods = state.methods.size();
    oi->results = state.results.size();
    kb->Restore(std::move(state.datasets), std::move(state.methods),
                std::move(state.results));
  }
  return std::unique_ptr<KnowledgeStore>(
      new KnowledgeStore(options, std::move(rs)));
}

easytime::Status KnowledgeStore::AppendResults(
    const std::vector<ResultEntry>& entries, const KnowledgeBase& kb) {
  if (entries.empty()) return easytime::Status::OK();
  easytime::Json rec = easytime::Json::Object();
  rec.Set("type", "results");
  easytime::Json rows = easytime::Json::Array();
  for (const auto& e : entries) rows.Append(ResultEntryToJson(e));
  rec.Set("results", std::move(rows));
  EASYTIME_RETURN_IF_ERROR(store_->Append(rec.Dump()).status());
  if (options_.compact_every > 0 &&
      store_->appends_since_compaction() >= options_.compact_every) {
    return store_->Compact(EncodeState(kb));
  }
  return easytime::Status::OK();
}

easytime::Status KnowledgeStore::Checkpoint(const KnowledgeBase& kb) {
  return store_->Compact(EncodeState(kb));
}

}  // namespace easytime::knowledge
