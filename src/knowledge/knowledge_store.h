#pragma once

/// \file knowledge_store.h
/// \brief Durable persistence for the KnowledgeBase on top of the storage
/// engine (DESIGN.md §9). The snapshot state is one JSON object
/// {"datasets": [...], "methods": [...], "results": [...]}; each WAL record
/// is one JSON object tagged with a "type" ("results" rows appended by an
/// evaluation). Open() recovers snapshot + tail and seeds the KnowledgeBase
/// through its single-version-bump Restore(), so a server restarted against
/// a populated store answers queries without re-running any evaluation.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "knowledge/knowledge_base.h"
#include "store/record_store.h"

namespace easytime::knowledge {

/// Row (de)serialization used by the snapshot and WAL record formats.
easytime::Json DatasetMetaToJson(const DatasetMeta& meta);
easytime::Result<DatasetMeta> DatasetMetaFromJson(const easytime::Json& j);
easytime::Json MethodMetaToJson(const MethodMeta& meta);
easytime::Result<MethodMeta> MethodMetaFromJson(const easytime::Json& j);
easytime::Json ResultEntryToJson(const ResultEntry& entry);
easytime::Result<ResultEntry> ResultEntryFromJson(const easytime::Json& j);

/// \brief The KnowledgeBase's durable backing store.
///
/// Thread safety: AppendResults/Checkpoint serialize KnowledgeBase rows via
/// its raw accessors, so the caller must hold whatever lock excludes
/// concurrent KB mutators (EasyTime calls them from its exclusive commit
/// phase; Open runs before concurrency begins).
class KnowledgeStore {
 public:
  struct Options {
    std::string dir;
    /// Compact (snapshot + delete covered WAL segments) after this many WAL
    /// appends; 0 disables automatic compaction.
    size_t compact_every = 32;
    /// fsync each append — AddReport durability is the point of the store.
    bool sync_every_append = true;
    size_t segment_bytes = 1 << 20;
    size_t keep_snapshots = 2;
  };

  /// What Open() found on disk.
  struct OpenInfo {
    bool restored = false;  ///< kb was seeded from persisted state
    size_t datasets = 0;
    size_t methods = 0;
    size_t results = 0;
    store::RecordStoreRecovery recovery;
  };

  /// \brief Opens (creating if absent) the store at options.dir. When
  /// persisted state exists, rebuilds it (snapshot, then surviving WAL tail
  /// in order) and seeds \p kb with one Restore() call.
  static easytime::Result<std::unique_ptr<KnowledgeStore>> Open(
      const Options& options, KnowledgeBase* kb, OpenInfo* info = nullptr);

  /// \brief Durably appends \p entries as one WAL record, then compacts with
  /// the full state of \p kb if compact_every appends have accumulated.
  /// Empty \p entries is a no-op.
  easytime::Status AppendResults(const std::vector<ResultEntry>& entries,
                                 const KnowledgeBase& kb);

  /// Forces a snapshot of \p kb now (e.g. right after initial seeding).
  easytime::Status Checkpoint(const KnowledgeBase& kb);

  uint64_t last_seq() const { return store_->last_seq(); }
  uint64_t snapshot_seq() const { return store_->snapshot_seq(); }
  const std::string& dir() const { return store_->dir(); }
  store::RecordStore* record_store() { return store_.get(); }

 private:
  KnowledgeStore(Options options, std::unique_ptr<store::RecordStore> store);

  const Options options_;
  std::unique_ptr<store::RecordStore> store_;
};

}  // namespace easytime::knowledge
