#include "knowledge/knowledge_base.h"

#include <algorithm>
#include <mutex>

#include "common/csv.h"
#include "common/fault.h"
#include "common/string_util.h"
#include "methods/registry.h"

namespace easytime::knowledge {

KnowledgeBase::KnowledgeBase(KnowledgeBase&& other) noexcept {
  std::unique_lock lock(other.mu_);
  version_ = other.version_;
  datasets_ = std::move(other.datasets_);
  methods_ = std::move(other.methods_);
  results_ = std::move(other.results_);
  dataset_index_ = std::move(other.dataset_index_);
  data_versions_ = std::move(other.data_versions_);
}

KnowledgeBase& KnowledgeBase::operator=(KnowledgeBase&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  version_ = other.version_;
  datasets_ = std::move(other.datasets_);
  methods_ = std::move(other.methods_);
  results_ = std::move(other.results_);
  dataset_index_ = std::move(other.dataset_index_);
  data_versions_ = std::move(other.data_versions_);
  return *this;
}

void KnowledgeBase::AddDataset(const tsdata::Dataset& ds) {
  // Characteristic extraction is the expensive part; do it before locking.
  DatasetMeta meta;
  meta.name = ds.name();
  meta.domain = tsdata::DomainName(ds.domain());
  meta.multivariate = ds.multivariate();
  meta.num_channels = ds.num_channels();
  meta.length = ds.length();
  meta.profiled_length = ds.length();
  meta.characteristics = tsdata::ExtractCharacteristics(ds);

  std::unique_lock lock(mu_);
  if (dataset_index_.count(meta.name)) return;
  dataset_index_[meta.name] = datasets_.size();
  datasets_.push_back(std::move(meta));
  ++version_;
}

KnowledgeBase::DataUpdate KnowledgeBase::UpdateDatasetData(
    const tsdata::Dataset& ds) {
  DataUpdate out;
  size_t profiled = 0;
  {
    std::shared_lock lock(mu_);
    auto it = dataset_index_.find(ds.name());
    if (it == dataset_index_.end()) return out;
    profiled = datasets_[it->second].profiled_length;
  }
  const size_t len = ds.length();
  // Amortization: re-profiling is O(n); doing it once per max(32, 10%)
  // appended points keeps the per-point cost constant while the cached
  // characteristics never lag the series by more than that margin.
  const bool reprofile = len >= profiled + std::max<size_t>(32, profiled / 10);
  tsdata::Characteristics fresh;
  if (reprofile) fresh = tsdata::ExtractCharacteristics(ds);  // outside lock

  std::unique_lock lock(mu_);
  auto it = dataset_index_.find(ds.name());
  if (it == dataset_index_.end()) return out;
  DatasetMeta& meta = datasets_[it->second];
  meta.length = len;
  if (reprofile) {
    meta.characteristics = fresh;
    meta.profiled_length = len;
    out.characteristics_refreshed = true;
  }
  out.data_version = ++data_versions_[meta.name];
  ++version_;
  return out;
}

uint64_t KnowledgeBase::DataVersion(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = data_versions_.find(name);
  return it == data_versions_.end() ? 0 : it->second;
}

void KnowledgeBase::AddAllMethods() {
  auto& registry = methods::MethodRegistry::Global();
  std::unique_lock lock(mu_);
  bool added = false;
  for (const auto& name : registry.Names()) {
    bool exists = std::any_of(methods_.begin(), methods_.end(),
                              [&](const MethodMeta& m) { return m.name == name; });
    if (exists) continue;
    auto info = registry.Info(name);
    if (!info.ok()) continue;
    MethodMeta meta;
    meta.name = info->name;
    meta.family = methods::FamilyName(info->family);
    meta.description = info->description;
    methods_.push_back(std::move(meta));
    added = true;
  }
  if (added) ++version_;
}

void KnowledgeBase::AddReport(const pipeline::BenchmarkReport& report) {
  std::unique_lock lock(mu_);
  bool added = false;
  for (const auto* rec : report.Successful()) {
    ResultEntry entry;
    entry.dataset = rec->dataset;
    entry.method = rec->method;
    entry.strategy = rec->strategy;
    entry.horizon = rec->horizon;
    entry.metrics = rec->metrics;
    entry.fit_seconds = rec->fit_seconds;
    entry.forecast_seconds = rec->forecast_seconds;
    results_.push_back(std::move(entry));
    added = true;
  }
  if (added) ++version_;
}

void KnowledgeBase::Restore(std::vector<DatasetMeta> datasets,
                            std::vector<MethodMeta> methods,
                            std::vector<ResultEntry> results) {
  std::unique_lock lock(mu_);
  datasets_.clear();
  methods_.clear();
  results_.clear();
  dataset_index_.clear();
  for (auto& d : datasets) {
    if (dataset_index_.count(d.name)) continue;
    dataset_index_[d.name] = datasets_.size();
    datasets_.push_back(std::move(d));
  }
  for (auto& m : methods) methods_.push_back(std::move(m));
  for (auto& r : results) results_.push_back(std::move(r));
  ++version_;
}

uint64_t KnowledgeBase::version() const {
  std::shared_lock lock(mu_);
  return version_;
}

size_t KnowledgeBase::NumDatasets() const {
  std::shared_lock lock(mu_);
  return datasets_.size();
}

size_t KnowledgeBase::NumMethods() const {
  std::shared_lock lock(mu_);
  return methods_.size();
}

size_t KnowledgeBase::NumResults() const {
  std::shared_lock lock(mu_);
  return results_.size();
}

std::vector<ResultEntry> KnowledgeBase::ResultsSnapshot() const {
  std::shared_lock lock(mu_);
  return std::vector<ResultEntry>(results_.begin(), results_.end());
}

easytime::Result<const DatasetMeta*> KnowledgeBase::GetDataset(
    const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = dataset_index_.find(name);
  if (it == dataset_index_.end()) {
    return Status::NotFound("no such dataset in knowledge base: " + name);
  }
  // Deque rows are stable under append, so the pointer outlives the lock.
  return &datasets_[it->second];
}

std::map<std::string, double> KnowledgeBase::MethodScores(
    const std::string& dataset, const std::string& metric) const {
  std::shared_lock lock(mu_);
  std::map<std::string, double> out;
  for (const auto& r : results_) {
    if (r.dataset != dataset) continue;
    auto it = r.metrics.find(metric);
    if (it != r.metrics.end()) out[r.method] = it->second;
  }
  return out;
}

easytime::Status KnowledgeBase::ExportToDatabase(sql::Database* db) const {
  if (db == nullptr) {
    return Status::InvalidArgument("database must not be null");
  }
  EASYTIME_FAULT_POINT("knowledge.export");
  std::shared_lock lock(mu_);
  using sql::Column;
  using sql::DataType;
  using sql::Value;

  EASYTIME_RETURN_IF_ERROR(db->CreateTable(
      "datasets",
      {Column{"name", DataType::kText}, Column{"domain", DataType::kText},
       Column{"multivariate", DataType::kInteger},
       Column{"num_channels", DataType::kInteger},
       Column{"length", DataType::kInteger},
       Column{"seasonality", DataType::kReal},
       Column{"trend", DataType::kReal},
       Column{"transition", DataType::kReal},
       Column{"shifting", DataType::kReal},
       Column{"stationarity", DataType::kReal},
       Column{"correlation", DataType::kReal},
       Column{"period", DataType::kInteger}}));
  EASYTIME_ASSIGN_OR_RETURN(sql::Table * dt, db->GetTable("datasets"));
  for (const auto& d : datasets_) {
    EASYTIME_RETURN_IF_ERROR(dt->Insert(
        {Value::Text(d.name), Value::Text(d.domain),
         Value::Integer(d.multivariate ? 1 : 0),
         Value::Integer(static_cast<int64_t>(d.num_channels)),
         Value::Integer(static_cast<int64_t>(d.length)),
         Value::Real(d.characteristics.seasonality),
         Value::Real(d.characteristics.trend),
         Value::Real(d.characteristics.transition),
         Value::Real(d.characteristics.shifting),
         Value::Real(d.characteristics.stationarity),
         Value::Real(d.characteristics.correlation),
         Value::Integer(static_cast<int64_t>(d.characteristics.period))}));
  }

  EASYTIME_RETURN_IF_ERROR(db->CreateTable(
      "methods", {Column{"name", DataType::kText},
                  Column{"family", DataType::kText},
                  Column{"description", DataType::kText}}));
  EASYTIME_ASSIGN_OR_RETURN(sql::Table * mt, db->GetTable("methods"));
  for (const auto& m : methods_) {
    EASYTIME_RETURN_IF_ERROR(mt->Insert({Value::Text(m.name),
                                         Value::Text(m.family),
                                         Value::Text(m.description)}));
  }

  EASYTIME_RETURN_IF_ERROR(db->CreateTable(
      "results",
      {Column{"dataset", DataType::kText}, Column{"method", DataType::kText},
       Column{"strategy", DataType::kText},
       Column{"horizon", DataType::kInteger},
       Column{"metric", DataType::kText}, Column{"value", DataType::kReal},
       Column{"fit_seconds", DataType::kReal},
       Column{"forecast_seconds", DataType::kReal}}));
  EASYTIME_ASSIGN_OR_RETURN(sql::Table * rt, db->GetTable("results"));
  for (const auto& r : results_) {
    for (const auto& [metric, value] : r.metrics) {
      EASYTIME_RETURN_IF_ERROR(rt->Insert(
          {Value::Text(r.dataset), Value::Text(r.method),
           Value::Text(r.strategy),
           Value::Integer(static_cast<int64_t>(r.horizon)),
           Value::Text(metric), Value::Real(value),
           Value::Real(r.fit_seconds), Value::Real(r.forecast_seconds)}));
    }
  }
  return Status::OK();
}

easytime::Status KnowledgeBase::SaveResultsCsv(const std::string& path) const {
  std::shared_lock lock(mu_);
  CsvDocument doc;
  doc.header = {"dataset", "method",       "strategy",
                "horizon", "metric",       "value",
                "fit_seconds", "forecast_seconds"};
  for (const auto& r : results_) {
    for (const auto& [metric, value] : r.metrics) {
      doc.rows.push_back({r.dataset, r.method, r.strategy,
                          std::to_string(r.horizon), metric,
                          FormatDouble(value, 8),
                          FormatDouble(r.fit_seconds, 6),
                          FormatDouble(r.forecast_seconds, 6)});
    }
  }
  return WriteCsvFile(path, doc);
}

easytime::Status KnowledgeBase::LoadResultsCsv(const std::string& path) {
  EASYTIME_ASSIGN_OR_RETURN(CsvDocument doc, ReadCsvFile(path));
  int ds = doc.ColumnIndex("dataset"), me = doc.ColumnIndex("method");
  int st = doc.ColumnIndex("strategy"), ho = doc.ColumnIndex("horizon");
  int mt = doc.ColumnIndex("metric"), va = doc.ColumnIndex("value");
  if (ds < 0 || me < 0 || st < 0 || ho < 0 || mt < 0 || va < 0) {
    return Status::ParseError("results CSV missing required columns");
  }
  std::unique_lock lock(mu_);
  // Rows sharing (dataset, method, strategy, horizon) merge into one entry.
  std::map<std::string, size_t> index;
  for (const auto& row : doc.rows) {
    std::string key = row[static_cast<size_t>(ds)] + "|" +
                      row[static_cast<size_t>(me)] + "|" +
                      row[static_cast<size_t>(st)] + "|" +
                      row[static_cast<size_t>(ho)];
    auto it = index.find(key);
    if (it == index.end()) {
      ResultEntry entry;
      entry.dataset = row[static_cast<size_t>(ds)];
      entry.method = row[static_cast<size_t>(me)];
      entry.strategy = row[static_cast<size_t>(st)];
      EASYTIME_ASSIGN_OR_RETURN(int64_t h,
                                ParseInt(row[static_cast<size_t>(ho)]));
      entry.horizon = static_cast<size_t>(h);
      it = index.emplace(key, results_.size()).first;
      results_.push_back(std::move(entry));
    }
    EASYTIME_ASSIGN_OR_RETURN(double v, ParseDouble(row[static_cast<size_t>(va)]));
    results_[it->second].metrics[row[static_cast<size_t>(mt)]] = v;
  }
  if (!doc.rows.empty()) ++version_;
  return Status::OK();
}

easytime::Result<SeededKnowledge> SeedKnowledge(
    const tsdata::SuiteSpec& suite, const eval::EvalConfig& eval_config,
    const std::vector<std::string>& method_names) {
  SeededKnowledge out;
  EASYTIME_RETURN_IF_ERROR(out.repository.AddSuite(suite));

  pipeline::BenchmarkConfig config;
  config.eval = eval_config;
  for (const auto& name : method_names) {
    config.methods.push_back(pipeline::MethodSpec{name, Json::Object()});
  }
  pipeline::PipelineRunner runner(&out.repository, config);
  EASYTIME_ASSIGN_OR_RETURN(pipeline::BenchmarkReport report, runner.Run());

  for (const auto* ds : out.repository.All()) out.kb.AddDataset(*ds);
  out.kb.AddAllMethods();
  out.kb.AddReport(report);
  return out;
}

}  // namespace easytime::knowledge
