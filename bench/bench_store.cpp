// Storage-engine benchmark (DESIGN.md §9): measures the three numbers the
// store exists for and emits them as JSON (BENCH_store.json via
// bench/run_store.sh):
//
//   1. append       — WAL append throughput, buffered vs fsync-per-append
//   2. group_commit — durable appends/sec with N concurrent appenders sharing
//                     one coalesced fsync per batch, vs the single-appender
//                     fsync-per-append baseline
//   3. recovery     — reopen (replay) time as the record count grows
//   4. compaction   — on-disk bytes before vs after a snapshot retires the log
//
//   ./build/bench/bench_store [output.json]

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/stopwatch.h"
#include "store/record_store.h"

using namespace easytime;

namespace {

namespace fs = std::filesystem;

const char* kDir = "/tmp/easytime_bench_store";

std::string Payload(uint64_t i) {
  // ~120 bytes, roughly the size of one serialized checkpoint record.
  std::string p = "{\"dataset\":\"bench_ds\",\"method\":\"bench_method\","
                  "\"metrics\":{\"mae\":1.5,\"rmse\":2.25},\"i\":" +
                  std::to_string(i) + "}";
  p.resize(120, ' ');
  return p;
}

uint64_t DirBytes(const std::string& dir) {
  uint64_t total = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file()) total += e.file_size();
  }
  return total;
}

void Die(const Status& status) {
  std::fprintf(stderr, "bench_store: %s\n", status.ToString().c_str());
  std::exit(1);
}

// ---- 1. append throughput -------------------------------------------------

double AppendThroughput(size_t n, bool sync_every_append) {
  fs::remove_all(kDir);
  store::RecordStoreOptions opt;
  opt.sync_every_append = sync_every_append;
  auto rs = store::RecordStore::Open(kDir, opt, nullptr);
  if (!rs.ok()) Die(rs.status());
  Stopwatch watch;
  for (size_t i = 0; i < n; ++i) {
    auto seq = (*rs)->Append(Payload(i));
    if (!seq.ok()) Die(seq.status());
  }
  auto synced = (*rs)->Sync();
  if (!synced.ok()) Die(synced);
  double seconds = watch.ElapsedSeconds();
  return seconds > 0.0 ? static_cast<double>(n) / seconds : 0.0;
}

// ---- 2. group-commit durable append throughput -----------------------------

struct GroupCommitNumbers {
  double records_per_sec = 0.0;
  double mean_batch_records = 0.0;
  uint64_t batches = 0;
};

GroupCommitNumbers GroupCommitThroughput(size_t appenders,
                                         size_t appends_per_thread) {
  fs::remove_all(kDir);
  store::RecordStoreOptions opt;
  opt.sync_every_append = true;
  opt.group_commit = true;
  // With N synchronous appenders at most N records can ever be pending, so
  // target exactly one full round per fsync: the committer waits (bounded)
  // until every in-flight appender has written, then pays one fsync for all
  // of them. The deadline only matters when appenders stall mid-round.
  opt.group_commit_max_batch = appenders;
  opt.group_commit_max_delay_us = 1000;
  auto rs = store::RecordStore::Open(kDir, opt, nullptr);
  if (!rs.ok()) Die(rs.status());

  std::atomic<size_t> failures{0};
  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(appenders);
  for (size_t t = 0; t < appenders; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < appends_per_thread; ++i) {
        auto seq = (*rs)->Append(Payload(t * appends_per_thread + i));
        if (!seq.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  double seconds = watch.ElapsedSeconds();
  if (failures.load() != 0) Die(Status::IOError("group-commit append failed"));

  GroupCommitNumbers out;
  const auto stats = (*rs)->group_commit_stats();
  const double n = static_cast<double>(appenders * appends_per_thread);
  out.records_per_sec = seconds > 0.0 ? n / seconds : 0.0;
  out.batches = stats.batches;
  out.mean_batch_records =
      stats.batches > 0
          ? static_cast<double>(stats.records) / static_cast<double>(stats.batches)
          : 0.0;
  return out;
}

// ---- 3. recovery time vs record count -------------------------------------

double RecoveryMs(size_t n) {
  fs::remove_all(kDir);
  {
    auto rs = store::RecordStore::Open(kDir, store::RecordStoreOptions{},
                                       nullptr);
    if (!rs.ok()) Die(rs.status());
    for (size_t i = 0; i < n; ++i) {
      auto seq = (*rs)->Append(Payload(i));
      if (!seq.ok()) Die(seq.status());
    }
    auto synced = (*rs)->Sync();
    if (!synced.ok()) Die(synced);
  }
  Stopwatch watch;
  store::RecordStoreRecovery recovery;
  auto rs = store::RecordStore::Open(kDir, store::RecordStoreOptions{},
                                     &recovery);
  if (!rs.ok()) Die(rs.status());
  double ms = watch.ElapsedSeconds() * 1000.0;
  if (recovery.tail.size() != n) {
    std::fprintf(stderr, "bench_store: recovered %zu of %zu records\n",
                 recovery.tail.size(), n);
    std::exit(1);
  }
  return ms;
}

// ---- 4. compaction ratio --------------------------------------------------

struct CompactionNumbers {
  uint64_t wal_bytes_before = 0;
  uint64_t dir_bytes_after = 0;
  double ratio = 0.0;
  double recovery_ms_before = 0.0;
  double recovery_ms_after = 0.0;
};

CompactionNumbers CompactionRatio(size_t n) {
  fs::remove_all(kDir);
  store::RecordStoreOptions opt;
  opt.segment_bytes = 1 << 18;  // force a real segment chain
  opt.keep_snapshots = 1;       // retire the whole log on compaction
  auto rs = store::RecordStore::Open(kDir, opt, nullptr);
  if (!rs.ok()) Die(rs.status());
  for (size_t i = 0; i < n; ++i) {
    auto seq = (*rs)->Append(Payload(i));
    if (!seq.ok()) Die(seq.status());
  }
  auto synced = (*rs)->Sync();
  if (!synced.ok()) Die(synced);

  CompactionNumbers out;
  out.wal_bytes_before = DirBytes(kDir);
  {
    Stopwatch watch;
    store::RecordStoreRecovery recovery;
    auto reopened = store::RecordStore::Open(kDir, opt, &recovery);
    if (!reopened.ok()) Die(reopened.status());
    out.recovery_ms_before = watch.ElapsedSeconds() * 1000.0;
  }
  // A compacted state is far smaller than the log that produced it — here
  // the current value per key, as the knowledge/checkpoint stores keep.
  const std::string state = "{\"records\":1,\"last\":" + Payload(n - 1) + "}";
  auto compacted = (*rs)->Compact(state);
  if (!compacted.ok()) Die(compacted);
  (*rs).reset();
  out.dir_bytes_after = DirBytes(kDir);
  out.ratio = out.dir_bytes_after > 0
                  ? static_cast<double>(out.wal_bytes_before) /
                        static_cast<double>(out.dir_bytes_after)
                  : 0.0;
  Stopwatch watch;
  store::RecordStoreRecovery recovery;
  auto reopened = store::RecordStore::Open(kDir, opt, &recovery);
  if (!reopened.ok()) Die(reopened.status());
  out.recovery_ms_after = watch.ElapsedSeconds() * 1000.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr size_t kAppendN = 20000;
  const double buffered_rps = AppendThroughput(kAppendN, false);
  const double synced_rps = AppendThroughput(2000, true);

  Json out = Json::Object();
  Json append_json = Json::Object();
  append_json.Set("payload_bytes", static_cast<int64_t>(120));
  append_json.Set("threads", static_cast<int64_t>(1));
  append_json.Set("buffered_records_per_sec", buffered_rps);
  append_json.Set("buffered_mb_per_sec", buffered_rps * 120.0 / 1e6);
  append_json.Set("fsync_records_per_sec", synced_rps);
  out.Set("append", std::move(append_json));

  // Durable appends/sec with concurrent appenders sharing one fsync per
  // batch; speedup is vs the fsync-per-append single-appender baseline above.
  Json group_json = Json::Array();
  for (size_t appenders : {size_t{8}, size_t{16}, size_t{32}}) {
    const GroupCommitNumbers gc = GroupCommitThroughput(appenders, 250);
    Json point = Json::Object();
    point.Set("threads", static_cast<int64_t>(appenders));
    point.Set("records", static_cast<int64_t>(appenders * 250));
    point.Set("records_per_sec", gc.records_per_sec);
    point.Set("fsync_batches", static_cast<int64_t>(gc.batches));
    point.Set("mean_batch_records", gc.mean_batch_records);
    point.Set("speedup_vs_fsync_per_append",
              synced_rps > 0.0 ? gc.records_per_sec / synced_rps : 0.0);
    group_json.Append(std::move(point));
  }
  out.Set("group_commit", std::move(group_json));

  Json recovery_json = Json::Array();
  for (size_t n : {size_t{1000}, size_t{10000}, size_t{50000}}) {
    Json point = Json::Object();
    point.Set("records", static_cast<int64_t>(n));
    point.Set("threads", static_cast<int64_t>(1));
    point.Set("recovery_ms", RecoveryMs(n));
    recovery_json.Append(std::move(point));
  }
  out.Set("recovery", std::move(recovery_json));

  CompactionNumbers compaction = CompactionRatio(20000);
  Json compaction_json = Json::Object();
  compaction_json.Set("records", static_cast<int64_t>(20000));
  compaction_json.Set("threads", static_cast<int64_t>(1));
  compaction_json.Set("wal_bytes_before",
                      static_cast<int64_t>(compaction.wal_bytes_before));
  compaction_json.Set("dir_bytes_after",
                      static_cast<int64_t>(compaction.dir_bytes_after));
  compaction_json.Set("ratio", compaction.ratio);
  compaction_json.Set("recovery_ms_before", compaction.recovery_ms_before);
  compaction_json.Set("recovery_ms_after", compaction.recovery_ms_after);
  out.Set("compaction", std::move(compaction_json));

  fs::remove_all(kDir);

  std::string payload = out.Dump(2);
  std::printf("%s\n", payload.c_str());
  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    std::fputs(payload.c_str(), f);
    std::fputs("\n", f);
    std::fclose(f);
  }
  return 0;
}
