// Serving-layer benchmark (DESIGN.md §6): measures the three numbers the
// serving layer exists for and emits them as JSON (BENCH_serve.json via
// bench/run_serve.sh):
//
//   1. cache     — forecast latency, cache hit vs cache miss
//   2. batching  — same-method forecast throughput, batched vs unbatched
//   3. loopback  — end-to-end req/sec over the TCP front-end
//   4. epoll     — multi-client and pipelined req/sec against the event loop
//   5. job_pool  — two concurrent evaluations vs the same two run back-to-back
//   6. qos       — overload shedding (4x ask oversubscription vs a concurrent
//                  forecast) and the latency of a deadline-bounded fit abort
//
//   ./build/bench/bench_serve [output.json]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "core/easytime.h"
#include "serve/event_loop.h"
#include "serve/job_manager.h"
#include "serve/server.h"
#include "serve/tcp_server.h"

using namespace easytime;

namespace {

std::unique_ptr<core::EasyTime> MakeSystem() {
  core::EasyTime::Options opt;
  opt.suite.univariate_per_domain = 1;
  opt.suite.multivariate_total = 1;
  opt.seed_methods = {"naive", "seasonal_naive", "theta", "ses", "drift"};
  opt.ensemble.ts2vec.epochs = 3;
  opt.ensemble.classifier.epochs = 80;
  auto system = core::EasyTime::Create(opt);
  if (!system.ok()) {
    std::fprintf(stderr, "create: %s\n", system.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*system);
}

std::string ForecastLine(const std::string& dataset, const std::string& method,
                         int id, int horizon) {
  return R"({"id": )" + std::to_string(id) +
         R"(, "endpoint": "forecast", "params": {"dataset": ")" + dataset +
         R"(", "method": ")" + method + R"(", "horizon": )" +
         std::to_string(horizon) + "}}";
}

void Expect(const std::string& response) {
  auto json = Json::Parse(response);
  if (!json.ok() || !json->GetBool("ok", false)) {
    std::fprintf(stderr, "bench request failed: %s\n", response.c_str());
    std::exit(1);
  }
}

// ---- 1. cache hit vs miss -------------------------------------------------

struct CacheNumbers {
  double miss_mean_ms = 0.0;
  double hit_mean_ms = 0.0;
};

CacheNumbers BenchCache(serve::ForecastServer* server,
                        const std::vector<std::string>& datasets) {
  // gbdt has a real fit cost, so the miss path is honest work.
  const std::string method = "gbdt";
  constexpr int kMisses = 20;
  constexpr int kHits = 200;

  CacheNumbers out;
  Stopwatch watch;
  for (int i = 0; i < kMisses; ++i) {
    // Distinct horizons => distinct cache keys => all misses.
    Expect(server->HandleLine(
        ForecastLine(datasets[i % datasets.size()], method, i, 4 + i)));
  }
  out.miss_mean_ms = watch.ElapsedMillis() / kMisses;

  const std::string hot = ForecastLine(datasets[0], method, 999, 4);
  Expect(server->HandleLine(hot));  // prime
  watch.Reset();
  for (int i = 0; i < kHits; ++i) Expect(server->HandleLine(hot));
  out.hit_mean_ms = watch.ElapsedMillis() / kHits;
  return out;
}

// ---- 2. batched vs unbatched throughput -----------------------------------

double MeasureThroughput(core::EasyTime* system, bool batching,
                         const std::vector<std::string>& datasets,
                         uint64_t* max_batch_size) {
  serve::ForecastServer::Options opt;
  opt.enable_batching = batching;
  opt.batch_max = 8;
  opt.batch_wait_ms = 2.0;
  opt.num_worker_threads = 4;
  opt.fast_queue_capacity = 4096;
  opt.cache_capacity = 0;  // measure computation, not the cache
  serve::ForecastServer server(system, opt);
  server.Start();

  constexpr int kClients = 8;
  constexpr int kPerClient = 30;
  std::atomic<int> failures{0};
  Stopwatch watch;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      for (int r = 0; r < kPerClient; ++r) {
        // Same method everywhere => one batch bucket; distinct datasets and
        // horizons => real per-request work (no dedup shortcut).
        auto resp = Json::Parse(server.HandleLine(ForecastLine(
            datasets[(c + r) % datasets.size()], "theta", c * 1000 + r,
            4 + ((c + r) % 8))));
        if (!resp.ok() || !resp->GetBool("ok", false)) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  double seconds = watch.ElapsedSeconds();
  if (failures.load() > 0) {
    std::fprintf(stderr, "throughput bench: %d failures\n", failures.load());
    std::exit(1);
  }
  if (max_batch_size) {
    *max_batch_size = static_cast<uint64_t>(
        server.StatsJson().Get("batching").GetInt("max_batch_size", 0));
  }
  server.Stop();
  return kClients * kPerClient / seconds;
}

// ---- 3. loopback TCP req/sec ----------------------------------------------

double BenchTcp(serve::ForecastServer* server, const std::string& dataset) {
  serve::TcpServer tcp(server);
  if (auto st = tcp.Start(); !st.ok()) {
    std::fprintf(stderr, "tcp: %s\n", st.ToString().c_str());
    std::exit(1);
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(tcp.port());
  if (fd < 0 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "tcp connect failed\n");
    std::exit(1);
  }

  // Warm the cache so the TCP number measures the protocol + transport.
  const std::string line = ForecastLine(dataset, "theta", 1, 6) + "\n";
  constexpr int kRequests = 500;
  auto round_trip = [&]() {
    if (::send(fd, line.data(), line.size(), 0) !=
        static_cast<ssize_t>(line.size())) {
      std::exit(1);
    }
    char c;
    while (::recv(fd, &c, 1, 0) == 1 && c != '\n') {
    }
  };
  round_trip();

  Stopwatch watch;
  for (int i = 0; i < kRequests; ++i) round_trip();
  double seconds = watch.ElapsedSeconds();
  ::close(fd);
  tcp.Stop();
  return kRequests / seconds;
}

// ---- 4. epoll front-end: many clients, then one pipelined client ----------

int ConnectTo(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (fd < 0 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "epoll bench: connect failed\n");
    std::exit(1);
  }
  int one = 1;  // burst writes must not sit behind Nagle
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void SendLine(int fd, const std::string& line) {
  if (::send(fd, line.data(), line.size(), 0) !=
      static_cast<ssize_t>(line.size())) {
    std::fprintf(stderr, "epoll bench: send failed\n");
    std::exit(1);
  }
}

void ReadLines(int fd, int n) {
  char c;
  while (n > 0 && ::recv(fd, &c, 1, 0) == 1) {
    if (c == '\n') --n;
  }
  if (n != 0) {
    std::fprintf(stderr, "epoll bench: connection closed early\n");
    std::exit(1);
  }
}

struct EpollNumbers {
  double multi_client_rps = 0.0;
  double pipelined_rps = 0.0;
};

EpollNumbers BenchEpoll(serve::ForecastServer* server,
                        const std::string& dataset) {
  serve::EventLoopServer::Options opt;
  opt.num_handler_threads = 4;
  serve::EventLoopServer loop(server, opt);
  if (auto st = loop.Start(); !st.ok()) {
    std::fprintf(stderr, "epoll bench: %s\n", st.ToString().c_str());
    std::exit(1);
  }

  const std::string line = ForecastLine(dataset, "theta", 1, 6) + "\n";
  EpollNumbers out;

  // (a) Concurrent clients, one request in flight per connection: measures
  // the event loop multiplexing many sockets (cache warm: protocol cost).
  {
    constexpr int kClients = 8;
    constexpr int kPerClient = 250;
    std::vector<int> fds;
    for (int c = 0; c < kClients; ++c) fds.push_back(ConnectTo(loop.port()));
    SendLine(fds[0], line);
    ReadLines(fds[0], 1);  // warm the forecast cache

    Stopwatch watch;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c]() {
        for (int r = 0; r < kPerClient; ++r) {
          SendLine(fds[c], line);
          ReadLines(fds[c], 1);
        }
      });
    }
    for (auto& t : clients) t.join();
    out.multi_client_rps = kClients * kPerClient / watch.ElapsedSeconds();
    for (int fd : fds) ::close(fd);
  }

  // (b) One connection, deep pipelining: bursts under the server's pipeline
  // depth, responses streamed back in order.
  {
    constexpr int kBatch = 32;  // stays under max_pipeline_depth
    constexpr int kBatches = 16;
    int fd = ConnectTo(loop.port());
    std::string burst;
    for (int i = 0; i < kBatch; ++i) burst += line;

    Stopwatch watch;
    for (int b = 0; b < kBatches; ++b) {
      SendLine(fd, burst);
      ReadLines(fd, kBatch);
    }
    out.pipelined_rps = kBatch * kBatches / watch.ElapsedSeconds();
    ::close(fd);
  }

  loop.Stop();
  return out;
}

// ---- 5. job pool: 2 concurrent evaluations vs sequential -------------------

Json MakeJobConfig(const std::string& key) {
  auto config = Json::Parse(R"({
    "methods": ["gbdt", "theta", "ses", "naive"],
    "evaluation": {"strategy": "fixed", "horizon": 12, "metrics": ["mae"]}
  })");
  if (!config.ok()) std::exit(1);
  config->Set("job_key", key);
  return *config;
}

void AwaitJobDone(const serve::JobManager& manager, uint64_t id) {
  for (;;) {
    auto s = manager.StatusJson(id);
    if (!s.ok()) std::exit(1);
    std::string state = s->GetString("state", "");
    if (state == "done") return;
    if (state == "failed" || state == "cancelled") {
      std::fprintf(stderr, "job pool bench: job ended %s\n", state.c_str());
      std::exit(1);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

/// Runs the same two evaluation jobs through a pool of \p concurrency
/// workers and returns the wall time; peak_running is written through.
double RunJobPair(core::EasyTime* system, size_t concurrency,
                  uint64_t* peak_running) {
  serve::JobManager::Options opt;
  opt.queue_capacity = 4;
  opt.concurrency = concurrency;
  serve::JobManager manager(system, opt);
  manager.Start();
  Stopwatch watch;
  auto a = manager.Submit(MakeJobConfig("bench-pool-a"));
  auto b = manager.Submit(MakeJobConfig("bench-pool-b"));
  if (!a.ok() || !b.ok()) std::exit(1);
  AwaitJobDone(manager, *a);
  AwaitJobDone(manager, *b);
  double seconds = watch.ElapsedSeconds();
  if (peak_running) *peak_running = manager.stats().peak_running;
  manager.Shutdown();
  return seconds;
}

// ---- 6. qos: overload shedding and deadline-bounded fits -------------------

struct QosNumbers {
  double forecast_under_overload_ms = 0.0;
  int64_t asks_ok = 0;
  int64_t asks_shed = 0;
  int64_t shed_total = 0;
  int64_t brownout_enters = 0;
  int64_t degraded_responses = 0;
  double deadline_abort_ms = 0.0;
  int64_t deadline_exceeded = 0;
};

QosNumbers BenchQos(core::EasyTime* system, const std::string& dataset) {
  serve::ForecastServer::Options opt;
  opt.num_worker_threads = 2;
  opt.fast_queue_capacity = 8;  // admission capacity; 32 asks = 4x overload
  opt.enable_batching = false;
  opt.cache_capacity = 0;
  serve::ForecastServer server(system, opt);
  server.Start();

  QosNumbers out;

  // (a) 4x oversubscription: 32 slow asks against an admission capacity of
  // 8. The excess sheds Unavailable; a forecast arriving mid-burst completes
  // within its guaranteed worker share instead of waiting out the backlog.
  {
    constexpr int kAskClients = 32;
    std::atomic<int64_t> ok{0};
    std::atomic<int64_t> shed{0};
    std::vector<std::thread> askers;
    for (int i = 0; i < kAskClients; ++i) {
      askers.emplace_back([&]() {
        const std::string line =
            R"({"id": 1, "endpoint": "ask", "params": {"question": )"
            R"("What is the average mae of theta?", "sleep_ms": 100}})";
        auto resp = Json::Parse(server.HandleLine(line));
        if (resp.ok() && resp->GetBool("ok", false)) {
          ok.fetch_add(1);
        } else {
          shed.fetch_add(1);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    Stopwatch watch;
    Expect(server.HandleLine(ForecastLine(dataset, "naive", 77, 4)));
    out.forecast_under_overload_ms = watch.ElapsedMillis();
    for (auto& t : askers) t.join();
    out.asks_ok = ok.load();
    out.asks_shed = shed.load();
  }

  // (b) Deadline-bounded fit: a gbdt configuration that takes seconds to fit
  // in full, capped at 60ms — measures how fast the mid-fit abort returns.
  {
    std::string values;
    double level = 50.0;
    uint64_t s = 0x9e3779b97f4a7c15ULL;
    for (int i = 0; i < 6000; ++i) {
      s = s * 6364136223846793005ULL + 1442695040888963407ULL;
      level += static_cast<double>((s >> 40) % 1000) / 1000.0 - 0.5;
      if (i) values += ",";
      values += std::to_string(level);
    }
    const std::string line =
        R"({"id": 9, "endpoint": "forecast", "params": {"method": "gbdt", )"
        R"("config": {"num_trees": 400, "max_depth": 6}, "horizon": 8, )"
        R"("deadline_ms": 60, "values": [)" +
        values + "]}}";
    Stopwatch watch;
    auto resp = Json::Parse(server.HandleLine(line));
    out.deadline_abort_ms = watch.ElapsedMillis();
    if (!resp.ok() || resp->GetBool("ok", false)) {
      std::fprintf(stderr, "qos bench: deadline abort did not fire\n");
      std::exit(1);
    }
  }

  Json stats = server.StatsJson();
  out.shed_total = stats.Get("admission").GetInt("shed_total", 0);
  out.brownout_enters = stats.GetInt("brownout_enters", 0);
  out.degraded_responses = stats.GetInt("degraded_responses", 0);
  out.deadline_exceeded = stats.GetInt("deadline_exceeded", 0);
  server.Stop();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto system = MakeSystem();
  const std::vector<std::string> datasets = system->repository()->names();

  serve::ForecastServer server(system.get());
  server.Start();

  CacheNumbers cache = BenchCache(&server, datasets);
  double tcp_rps = BenchTcp(&server, datasets[0]);
  EpollNumbers epoll = BenchEpoll(&server, datasets[0]);
  server.Stop();

  uint64_t max_batch = 0;
  double unbatched_rps =
      MeasureThroughput(system.get(), false, datasets, nullptr);
  double batched_rps =
      MeasureThroughput(system.get(), true, datasets, &max_batch);

  // The concurrent configuration scales with the machine: min(cores, 4)
  // workers when more than one core is available, else the 2-worker pool
  // (which still exercises overlap even if wall time cannot improve).
  const unsigned hc = std::thread::hardware_concurrency();
  const size_t pool_workers =
      hc >= 2 ? std::min<size_t>(hc, 4) : 2;
  uint64_t pool_peak = 0;
  double sequential_seconds = RunJobPair(system.get(), 1, nullptr);
  double concurrent_seconds = RunJobPair(system.get(), pool_workers,
                                         &pool_peak);

  QosNumbers qos = BenchQos(system.get(), datasets[0]);

  Json out = Json::Object();
  Json cache_json = Json::Object();
  cache_json.Set("threads", static_cast<int64_t>(1));
  cache_json.Set("miss_mean_ms", cache.miss_mean_ms);
  cache_json.Set("hit_mean_ms", cache.hit_mean_ms);
  cache_json.Set("speedup",
                 cache.hit_mean_ms > 0.0
                     ? cache.miss_mean_ms / cache.hit_mean_ms
                     : 0.0);
  out.Set("cache", std::move(cache_json));

  Json batch_json = Json::Object();
  batch_json.Set("threads", static_cast<int64_t>(8));  // client threads
  batch_json.Set("unbatched_req_per_sec", unbatched_rps);
  batch_json.Set("batched_req_per_sec", batched_rps);
  batch_json.Set("speedup",
                 unbatched_rps > 0.0 ? batched_rps / unbatched_rps : 0.0);
  batch_json.Set("max_batch_size", static_cast<int64_t>(max_batch));
  out.Set("batching", std::move(batch_json));

  Json tcp_json = Json::Object();
  tcp_json.Set("threads", static_cast<int64_t>(1));
  tcp_json.Set("cached_forecast_req_per_sec", tcp_rps);
  out.Set("loopback_tcp", std::move(tcp_json));

  Json epoll_json = Json::Object();
  epoll_json.Set("clients", static_cast<int64_t>(8));
  epoll_json.Set("threads", static_cast<int64_t>(8));  // client threads
  epoll_json.Set("multi_client_req_per_sec", epoll.multi_client_rps);
  epoll_json.Set("pipelined_req_per_sec", epoll.pipelined_rps);
  out.Set("epoll", std::move(epoll_json));

  Json pool_json = Json::Object();
  pool_json.Set("threads", static_cast<int64_t>(pool_workers));
  pool_json.Set("sequential_seconds", sequential_seconds);
  pool_json.Set("concurrent_seconds", concurrent_seconds);
  pool_json.Set("speedup", concurrent_seconds > 0.0
                               ? sequential_seconds / concurrent_seconds
                               : 0.0);
  pool_json.Set("peak_running", static_cast<int64_t>(pool_peak));
  // Context for the speedup: two CPU-bound jobs only finish faster than
  // back-to-back when there is more than one core to split.
  pool_json.Set("hardware_concurrency",
                static_cast<int64_t>(std::thread::hardware_concurrency()));
  out.Set("job_pool", std::move(pool_json));

  Json qos_json = Json::Object();
  qos_json.Set("ask_clients", static_cast<int64_t>(32));
  qos_json.Set("admission_capacity", static_cast<int64_t>(8));
  qos_json.Set("forecast_under_overload_ms", qos.forecast_under_overload_ms);
  qos_json.Set("asks_ok", qos.asks_ok);
  qos_json.Set("asks_shed", qos.asks_shed);
  qos_json.Set("shed_total", qos.shed_total);
  qos_json.Set("brownout_enters", qos.brownout_enters);
  qos_json.Set("degraded_responses", qos.degraded_responses);
  qos_json.Set("deadline_abort_ms", qos.deadline_abort_ms);
  qos_json.Set("deadline_exceeded", qos.deadline_exceeded);
  out.Set("qos", std::move(qos_json));

  std::string payload = out.Dump(2);
  std::printf("%s\n", payload.c_str());
  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    std::fputs(payload.c_str(), f);
    std::fputs("\n", f);
    std::fclose(f);
  }
  return 0;
}
