#!/usr/bin/env bash
# Runs the sharded serving tier benchmark and writes BENCH_cluster.json at
# the repo root: pipelined req/sec through the cluster router's TCP
# front-end at 1/2/4 shards against a single-process baseline (same
# "small" preset, same request mix), SIGKILL failover latency (time to the
# first degraded replica read and to the first post-promotion first-class
# response, with the acked append offset chain verified intact), and
# segment-ship lag after a synchronous replication pass. Spawns real
# easytime_shard_worker processes.
#
# Usage: bench/run_cluster.sh [build_dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
bin="$build_dir/bench/bench_cluster"
worker="$build_dir/src/cluster/easytime_shard_worker"

if [[ ! -x "$bin" || ! -x "$worker" ]]; then
  echo "bench_cluster or easytime_shard_worker not found under $build_dir — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

"$bin" "$repo_root/BENCH_cluster.json"
echo "wrote $repo_root/BENCH_cluster.json"
