// Experiments A1 + A2 (DESIGN.md §3): ablations of the Automated Ensemble's
// two key design choices.
//
//   A1 — classifier target: soft labels (SimpleTS-style softmax over
//        standardized errors, [10] in the paper) vs hard one-hot winners.
//   A2 — combination rule: validation-learned simplex weights (Fig. 2) vs
//        uniform averaging vs the top-1 single method.

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/optimize.h"
#include "ensemble/auto_ensemble.h"
#include "methods/registry.h"
#include "tsdata/generator.h"

using namespace easytime;

namespace {

/// Quality of a pretrained engine's top-1 pick on held-out datasets:
/// mean regret (top-1 MAE minus per-dataset oracle MAE over the candidate
/// set) — the quantity the downstream ensemble actually inherits.
double MeanRegret(ensemble::AutoEnsembleEngine* engine,
                  const std::vector<tsdata::Dataset>& held_out,
                  const std::vector<std::string>& methods) {
  double regret = 0.0;
  size_t n = 0;
  for (const auto& ds : held_out) {
    double oracle = 1e300;
    std::map<std::string, double> truth;
    for (const auto& m : methods) {
      truth[m] = benchutil::EvalMae(m, ds, 24);
      oracle = std::min(oracle, truth[m]);
    }
    auto rec = engine->Recommend(ds.primary().values(), 1);
    if (!rec.ok()) continue;
    regret += truth[(*rec)[0].first] - oracle;
    ++n;
  }
  return n ? regret / static_cast<double>(n) : 1e300;
}

}  // namespace

int main() {
  auto candidates = benchutil::FastCandidates();
  auto seeded = benchutil::MustSeed(4, 4, candidates, 24, /*seed=*/7);

  tsdata::SuiteSpec held;
  held.univariate_per_domain = 1;
  held.multivariate_total = 1;
  held.seed = 31337;
  auto held_out = tsdata::GenerateSuite(held);

  // ---------------- A1: soft vs hard labels ----------------
  std::printf("== A1: soft-label vs hard-label classifier ==\n");
  ensemble::AutoEnsembleOptions soft_opt;
  soft_opt.ts2vec.epochs = 10;
  soft_opt.classifier.epochs = 400;
  ensemble::AutoEnsembleOptions hard_opt = soft_opt;
  hard_opt.classifier.hard_labels = true;

  ensemble::AutoEnsembleEngine soft(soft_opt), hard(hard_opt);
  if (!soft.Pretrain(seeded.repository, seeded.kb).ok() ||
      !hard.Pretrain(seeded.repository, seeded.kb).ok()) {
    std::fprintf(stderr, "pretrain failed\n");
    return 1;
  }
  double soft_regret = MeanRegret(&soft, held_out, soft.candidate_methods());
  double hard_regret = MeanRegret(&hard, held_out, hard.candidate_methods());
  std::printf("%-12s %12s\n", "labels", "mean regret");
  std::printf("%-12s %12.4f\n", "soft", soft_regret);
  std::printf("%-12s %12.4f\n", "hard", hard_regret);
  std::printf("shape check: soft regret <= hard regret -> %s\n\n",
              soft_regret <= hard_regret + 1e-9 ? "HOLDS" : "DOES NOT HOLD");

  // ---------------- A2: weighting rule ----------------
  std::printf("== A2: validation-learned weights vs uniform vs top-1 ==\n");
  double sum_learned = 0, sum_uniform = 0, sum_top1 = 0;
  size_t n = 0;
  eval::Evaluator evaluator(benchutil::SeedProtocol(24));

  for (const auto& ds : held_out) {
    auto rec = soft.Recommend(ds.primary().values(), 3);
    if (!rec.ok()) continue;
    std::vector<std::string> names;
    for (const auto& [m, p] : *rec) names.push_back(m);

    // Learned weights (the shipped EnsembleForecaster).
    auto learned = soft.BuildEnsemble(ds.primary().values());
    if (!learned.ok()) continue;
    auto learned_res =
        evaluator.EvaluateValues(learned->get(), ds.primary().values());
    if (!learned_res.ok()) continue;

    // Uniform average of the same members.
    std::vector<methods::ForecasterPtr> members;
    for (const auto& name : names) {
      members.push_back(
          methods::MethodRegistry::Global().Create(name).ValueOrDie());
    }
    ensemble::EnsembleForecaster uniform(std::move(members), names,
                                         /*val_fraction=*/0.0);
    auto uniform_res =
        evaluator.EvaluateValues(&uniform, ds.primary().values());
    if (!uniform_res.ok()) continue;

    // Top-1 single method.
    double top1 = benchutil::EvalMae(names[0], ds, 24);

    sum_learned += learned_res->metrics.at("mae");
    sum_uniform += uniform_res->metrics.at("mae");
    sum_top1 += top1;
    ++n;
  }
  double dn = static_cast<double>(n);
  std::printf("%-18s %10s\n", "combiner", "mean MAE");
  std::printf("%-18s %10.4f\n", "learned simplex", sum_learned / dn);
  std::printf("%-18s %10.4f\n", "uniform average", sum_uniform / dn);
  std::printf("%-18s %10.4f\n", "top-1 single", sum_top1 / dn);
  // The value of ensembling is combining at all — both combiners must beat
  // the single best-ranked method. Learned-vs-uniform is the classic
  // "forecast combination puzzle": with short validation windows, estimated
  // weights rarely beat the simple average by much (that is exactly why the
  // shipped ensemble shrinks its learned weights toward uniform); we check
  // the learned weights stay within 5% of uniform while remaining adaptive.
  bool combining_wins = sum_learned < sum_top1 && sum_uniform < sum_top1;
  bool learned_competitive = sum_learned <= 1.05 * sum_uniform;
  std::printf("shape check: combiners beat top-1 single -> %s\n",
              combining_wins ? "HOLDS" : "DOES NOT HOLD");
  std::printf("shape check: learned weights within 5%% of uniform "
              "(combination puzzle) -> %s\n",
              learned_competitive ? "HOLDS" : "DOES NOT HOLD");
  return 0;
}
