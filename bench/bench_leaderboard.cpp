// Experiment T-KB (DESIGN.md §3): the TFB-style leaderboard implied by the
// paper's "benchmark knowledge" — every registered method evaluated on the
// generated suite, ranked per metric, with per-family and per-domain
// breakdowns. The reproduction claim: no single method dominates every
// domain (the paper's Challenge 2 premise).

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/string_util.h"
#include "ensemble/foundation.h"
#include "pipeline/runner.h"

using namespace easytime;

int main() {
  std::printf("== T-KB: full method leaderboard over the benchmark suite ==\n");

  tsdata::Repository repo;
  tsdata::SuiteSpec suite;
  suite.univariate_per_domain = 1;
  suite.multivariate_total = 2;
  if (Status st = repo.AddSuite(suite); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // Include the zero-shot foundation method so the leaderboard spans all
  // four families of the paper's method layer.
  {
    std::vector<std::vector<double>> corpus;
    for (const auto* ds : repo.All()) {
      for (const auto& ch : ds->channels()) corpus.push_back(ch.values());
    }
    ensemble::Ts2VecOptions enc;
    enc.epochs = 8;
    auto model = ensemble::PretrainFoundation(corpus, {}, enc);
    if (model.ok()) {
      (void)ensemble::RegisterFoundationMethod(*model);
    }
  }

  pipeline::BenchmarkConfig config;
  config.eval = benchutil::SeedProtocol(24);
  for (const auto& name : benchutil::AllMethods()) {
    config.methods.push_back(pipeline::MethodSpec{name, Json::Object()});
  }
  pipeline::PipelineRunner runner(&repo, config);
  auto report = runner.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu methods x %zu datasets, %zu/%zu pairs ok, %.1fs wall\n\n",
              config.methods.size(), repo.size(),
              report->Successful().size(), report->records.size(),
              report->wall_seconds);

  // Leaderboards per metric.
  for (const std::string metric : {"mae", "rmse", "smape", "mase"}) {
    std::printf("-- leaderboard by mean %s --\n", ToUpper(metric).c_str());
    int rank = 1;
    for (const auto& [method, value] : report->Leaderboard(metric)) {
      auto info = methods::MethodRegistry::Global().Info(method);
      std::printf("  %2d. %-18s %-12s %8.4f\n", rank++, method.c_str(),
                  info.ok() ? methods::FamilyName(info->family) : "?", value);
      if (rank > 10) break;
    }
    std::printf("\n");
  }

  // Winner per domain: the Challenge-2 premise check.
  std::printf("-- best method per domain (MAE) --\n");
  std::map<std::string, std::pair<std::string, double>> best_per_domain;
  for (const auto* rec : report->Successful()) {
    auto it = rec->metrics.find("mae");
    if (it == rec->metrics.end()) continue;
    auto& slot = best_per_domain[rec->domain];
    if (slot.first.empty() || it->second < slot.second) {
      slot = {rec->method, it->second};
    }
  }
  std::map<std::string, int> wins;
  for (const auto& [domain, winner] : best_per_domain) {
    std::printf("  %-12s -> %-18s (%.4f)\n", domain.c_str(),
                winner.first.c_str(), winner.second);
    ++wins[winner.first];
  }
  int max_wins = 0;
  for (const auto& [_, w] : wins) max_wins = std::max(max_wins, w);
  std::printf("\nno-single-winner check: %zu distinct domain winners; the "
              "most dominant method wins %d/%zu domains -> %s\n",
              wins.size(), max_wins, best_per_domain.size(),
              wins.size() > 1 ? "HOLDS (matches the paper's premise)"
                              : "DOES NOT HOLD");
  return 0;
}
