#!/usr/bin/env bash
# Runs the serving-layer benchmark and writes BENCH_serve.json at the repo
# root: cache-hit vs cache-miss forecast latency, batched vs unbatched
# throughput, loopback TCP req/sec, the epoll front-end under multiple
# clients and pipelining, the multi-worker job pool (min(cores, 4)
# workers when >1 core is available) vs sequential jobs, and the QoS
# section: overload shedding under 4x ask oversubscription (forecast
# latency inside its guaranteed quota, shed/brownout/degraded counters)
# plus the latency of a deadline-bounded mid-fit abort. Every section
# carries a "threads" field recording the configuration it ran with.
#
# Usage: bench/run_serve.sh [build_dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
bin="$build_dir/bench/bench_serve"

if [[ ! -x "$bin" ]]; then
  echo "bench_serve not found at $bin — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

"$bin" "$repo_root/BENCH_serve.json"
echo "wrote $repo_root/BENCH_serve.json"
