// Cluster tier benchmark (DESIGN.md §14): the three numbers the sharded
// serving tier exists for, emitted as JSON (BENCH_cluster.json via
// bench/run_cluster.sh):
//
//   1. sharding    — pipelined req/sec through the router TCP front-end at
//                    1 / 2 / 4 shards, against a single-process
//                    ForecastServer+epoll baseline (same preset, same
//                    request mix) so the routing hop's cost is visible
//   2. failover    — SIGKILL the only primary: ms until the replica serves
//                    a (tagged) degraded read, ms until promotion restores
//                    first-class service, and proof that the acked append
//                    offset chain survived
//   3. replication — segment-ship lag after a synchronous shipping pass
//
// Spawns real easytime_shard_worker processes (path baked in via
// EASYTIME_WORKER_BIN, like tests/test_cluster.cc).
//
//   ./build/bench/bench_cluster [output.json]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/replicator.h"
#include "cluster/router.h"
#include "cluster/worker.h"
#include "common/json.h"
#include "common/stopwatch.h"
#include "core/easytime.h"
#include "serve/event_loop.h"
#include "serve/server.h"

using namespace easytime;

namespace {

namespace fs = std::filesystem;

std::string BenchDir(const std::string& leaf) {
  std::string dir =
      (fs::temp_directory_path() / ("easytime_bench_cluster_" + leaf))
          .string();
  fs::remove_all(dir);
  return dir;
}

std::string ForecastLine(const std::string& dataset, int id, int horizon) {
  return R"({"id": )" + std::to_string(id) +
         R"(, "endpoint": "forecast", "params": {"dataset": ")" + dataset +
         R"(", "method": "theta", "horizon": )" + std::to_string(horizon) +
         "}}";
}

[[noreturn]] void Die(const std::string& what) {
  std::fprintf(stderr, "bench_cluster: %s\n", what.c_str());
  std::exit(1);
}

// ---- raw pipelined client --------------------------------------------------

int ConnectTo(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (fd < 0 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Die("connect failed");
  }
  int one = 1;  // pipelined bursts must not sit behind Nagle
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void SendAll(int fd, const std::string& bytes) {
  if (::send(fd, bytes.data(), bytes.size(), 0) !=
      static_cast<ssize_t>(bytes.size())) {
    Die("send failed");
  }
}

void ReadLines(int fd, int n) {
  char buf[4096];
  while (n > 0) {
    ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got <= 0) Die("connection closed early");
    for (ssize_t i = 0; i < got; ++i) {
      if (buf[i] == '\n') --n;
    }
  }
}

std::string ReadLine(int fd) {
  std::string line;
  char c;
  while (::recv(fd, &c, 1, 0) == 1 && c != '\n') line += c;
  return line;
}

/// One warm round trip whose response is actually parsed and checked, then
/// kClients threads each bursting pipelined forecasts. Returns req/sec.
double MeasurePipelinedRps(uint16_t port,
                           const std::vector<std::string>& datasets,
                           int clients, int bursts, int burst_size) {
  {  // warm every dataset's forecast cache and verify the protocol
    int fd = ConnectTo(port);
    for (size_t d = 0; d < datasets.size(); ++d) {
      SendAll(fd, ForecastLine(datasets[d], 7000 + static_cast<int>(d), 6) +
                      "\n");
      auto resp = Json::Parse(ReadLine(fd));
      if (!resp.ok() || !resp->GetBool("ok", false)) {
        Die("warm-up forecast failed: " +
            (resp.ok() ? resp->Dump() : resp.status().ToString()));
      }
    }
    ::close(fd);
  }

  std::vector<std::thread> workers;
  Stopwatch watch;
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c]() {
      int fd = ConnectTo(port);
      std::string burst;
      for (int i = 0; i < burst_size; ++i) {
        burst += ForecastLine(datasets[(c + i) % datasets.size()],
                              c * 1000 + i, 6) +
                 "\n";
      }
      for (int b = 0; b < bursts; ++b) {
        SendAll(fd, burst);
        ReadLines(fd, burst_size);
      }
      ::close(fd);
    });
  }
  for (auto& t : workers) t.join();
  return static_cast<double>(clients) * bursts * burst_size /
         watch.ElapsedSeconds();
}

// ---- 1. sharding: router at N shards vs single process ---------------------

cluster::ClusterRouter::Options RouterOptions(const std::string& work_dir) {
  cluster::ClusterRouter::Options opt;
  opt.worker_binary = EASYTIME_WORKER_BIN;
  opt.work_dir = work_dir;
  opt.preset = "small";
  return opt;
}

double MeasureRouterRps(size_t shards,
                        const std::vector<std::string>& datasets, int clients,
                        int bursts, int burst_size) {
  cluster::ClusterRouter::Options opt =
      RouterOptions(BenchDir("shards_" + std::to_string(shards)));
  opt.shards = shards;
  opt.replicate = false;  // throughput of the routed path, not replication
  opt.ship_interval_ms = 0.0;
  cluster::ClusterRouter router(opt);
  if (auto st = router.Start(); !st.ok()) Die("router: " + st.ToString());
  double rps =
      MeasurePipelinedRps(router.port(), datasets, clients, bursts,
                          burst_size);
  router.Stop();
  return rps;
}

double MeasureSingleProcessRps(core::EasyTime* system,
                               const std::vector<std::string>& datasets,
                               int clients, int bursts, int burst_size) {
  serve::ForecastServer server(system);
  server.Start();
  serve::EventLoopServer::Options lopt;
  lopt.num_handler_threads = 4;
  serve::EventLoopServer loop(&server, lopt);
  if (auto st = loop.Start(); !st.ok()) Die("baseline: " + st.ToString());
  double rps =
      MeasurePipelinedRps(loop.port(), datasets, clients, bursts, burst_size);
  loop.Stop();
  server.Stop();
  return rps;
}

// ---- 2 + 3. failover latency and segment-ship lag --------------------------

struct FailoverNumbers {
  double time_to_degraded_read_ms = 0.0;
  double failover_ms = 0.0;
  bool acked_append_preserved = false;
  // Replication (measured on the same cluster, before the kill).
  double ship_pass_ms = 0.0;
  int64_t primary_last_seq = 0;
  int64_t follower_applied_seq = 0;
  int64_t ship_lag = 0;
  int64_t segments_shipped = 0;
  int64_t appends_last_seq = 0;
  int64_t appends_staged_seq = 0;
};

Json CallRouter(cluster::ClusterRouter& router, int64_t id,
                const std::string& endpoint, Json params) {
  Json req = Json::Object();
  req.Set("id", id);
  req.Set("endpoint", endpoint);
  req.Set("params", std::move(params));
  auto parsed = Json::Parse(router.HandleLine(req.Dump()));
  if (!parsed.ok()) Die("unparseable router response");
  return std::move(*parsed);
}

Json AppendParams(const std::string& dataset, int n, double base) {
  Json params = Json::Object();
  params.Set("dataset", dataset);
  Json arr = Json::Array();
  for (int i = 0; i < n; ++i) arr.Append(base + i);
  params.Set("values", std::move(arr));
  return params;
}

FailoverNumbers MeasureFailover(const std::string& dataset) {
  cluster::ClusterRouter::Options opt = RouterOptions(BenchDir("failover"));
  opt.shards = 1;
  opt.replicate = true;
  opt.health_interval_ms = 25.0;  // the background thread drives failover
  opt.ship_interval_ms = 0.0;     // shipping passes are driven explicitly
  cluster::ClusterRouter router(opt);
  if (auto st = router.Start(); !st.ok()) Die("router: " + st.ToString());

  FailoverNumbers out;

  // Acked appends: durable the moment the ack arrives.
  Json first = CallRouter(router, 1, "append", AppendParams(dataset, 4, 1.0));
  if (!first.GetBool("ok", false)) Die("append failed: " + first.Dump());
  Json second = CallRouter(router, 2, "append", AppendParams(dataset, 3, 5.0));
  if (!second.GetBool("ok", false)) Die("append failed: " + second.Dump());
  const int64_t acked_length = second.Get("result").GetInt("length", 0);

  // Segment-ship lag after one synchronous pass.
  router.replicator()->ShipOnce();
  {
    Stopwatch pass;
    router.replicator()->ShipOnce();
    out.ship_pass_ms = pass.ElapsedMillis();
  }
  cluster::Replicator::LinkStats link =
      router.replicator()->StatsFor("shard-0");
  out.primary_last_seq = static_cast<int64_t>(link.primary_last_seq);
  out.follower_applied_seq = static_cast<int64_t>(link.follower_applied_seq);
  out.ship_lag = static_cast<int64_t>(link.ship_lag);
  out.segments_shipped = static_cast<int64_t>(link.segments_shipped);
  out.appends_last_seq = static_cast<int64_t>(link.appends_last_seq);
  out.appends_staged_seq = static_cast<int64_t>(link.appends_staged_seq);

  // Kill -9 the only primary and measure service restoration.
  if (!router.KillShardPrimary("shard-0", SIGKILL).ok()) Die("kill failed");
  Json forecast_params = Json::Object();
  forecast_params.Set("dataset", dataset);
  forecast_params.Set("method", "theta");
  forecast_params.Set("horizon", int64_t{4});

  Stopwatch watch;
  bool degraded_seen = false;
  bool restored = false;
  for (int i = 0; i < 24000 && !restored; ++i) {
    Json resp = CallRouter(router, 100 + i, "forecast", forecast_params);
    if (resp.GetBool("ok", false)) {
      if (resp.Get("result").GetBool("degraded", false)) {
        if (!degraded_seen) {
          degraded_seen = true;
          out.time_to_degraded_read_ms = watch.ElapsedMillis();
        }
      } else {
        restored = true;
        out.failover_ms = watch.ElapsedMillis();
      }
    }
    if (!restored) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (!restored) Die("failover did not complete within the poll budget");

  // The promoted store must continue the exact acked offset chain.
  Json resume = AppendParams(dataset, 2, 8.0);
  resume.Set("start", acked_length);
  Json resumed = CallRouter(router, 50000, "append", std::move(resume));
  out.acked_append_preserved =
      resumed.GetBool("ok", false) &&
      resumed.Get("result").GetInt("length", 0) == acked_length + 2;
  if (!out.acked_append_preserved) {
    Die("acked append lost across failover: " + resumed.Dump());
  }

  router.Stop();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr int kClients = 4;
  constexpr int kBursts = 20;
  constexpr int kBurstSize = 16;  // stays under the epoll pipeline depth

  // The baseline system mirrors the workers' "small" preset exactly, so the
  // single-process number differs only by the routing hop.
  auto preset = cluster::PresetOptions("small");
  if (!preset.ok()) Die(preset.status().ToString());
  auto system = core::EasyTime::Create(*preset);
  if (!system.ok()) Die(system.status().ToString());
  const std::vector<std::string> datasets = (*system)->repository()->names();

  double single_rps = MeasureSingleProcessRps(system->get(), datasets,
                                              kClients, kBursts, kBurstSize);
  const std::vector<size_t> shard_counts = {1, 2, 4};
  std::vector<double> shard_rps;
  for (size_t shards : shard_counts) {
    shard_rps.push_back(
        MeasureRouterRps(shards, datasets, kClients, kBursts, kBurstSize));
  }

  FailoverNumbers failover = MeasureFailover(datasets[0]);

  const int64_t hc =
      static_cast<int64_t>(std::thread::hardware_concurrency());

  Json out = Json::Object();
  out.Set("hardware_concurrency", hc);

  Json sharding = Json::Object();
  sharding.Set("threads", static_cast<int64_t>(kClients));  // client threads
  sharding.Set("requests_per_config",
               static_cast<int64_t>(kClients * kBursts * kBurstSize));
  sharding.Set("single_process_req_per_sec", single_rps);
  for (size_t i = 0; i < shard_counts.size(); ++i) {
    Json entry = Json::Object();
    entry.Set("req_per_sec", shard_rps[i]);
    entry.Set("vs_single_process",
              single_rps > 0.0 ? shard_rps[i] / single_rps : 0.0);
    sharding.Set("shards_" + std::to_string(shard_counts[i]),
                 std::move(entry));
  }
  out.Set("sharding", std::move(sharding));

  Json fo = Json::Object();
  fo.Set("threads", static_cast<int64_t>(1));
  fo.Set("time_to_degraded_read_ms", failover.time_to_degraded_read_ms);
  fo.Set("failover_ms", failover.failover_ms);
  fo.Set("acked_append_preserved", failover.acked_append_preserved);
  out.Set("failover", std::move(fo));

  Json rep = Json::Object();
  rep.Set("threads", static_cast<int64_t>(1));
  rep.Set("ship_pass_ms", failover.ship_pass_ms);
  rep.Set("primary_last_seq", failover.primary_last_seq);
  rep.Set("follower_applied_seq", failover.follower_applied_seq);
  rep.Set("ship_lag", failover.ship_lag);
  rep.Set("segments_shipped", failover.segments_shipped);
  rep.Set("appends_last_seq", failover.appends_last_seq);
  rep.Set("appends_staged_seq", failover.appends_staged_seq);
  out.Set("replication", std::move(rep));

  std::string payload = out.Dump(2);
  std::printf("%s\n", payload.c_str());
  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    std::fputs(payload.c_str(), f);
    std::fputs("\n", f);
    std::fclose(f);
  }
  return 0;
}
