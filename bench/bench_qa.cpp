// Experiments F3 + F5 (DESIGN.md §3): the natural-language Q&A workflow of
// Fig. 3 and the Fig. 5 demo scenario.
//
// F3: a suite of supported questions must translate to SQL that passes
// verification and executes; out-of-scope questions and malformed SQL must
// be rejected BEFORE execution. End-to-end latency is reported per stage.
//
// F5: the exact demo question is answered with all five outputs: NL answer,
// chart, SQL, and the result table.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "qa/qa_engine.h"

using namespace easytime;

int main() {
  auto seeded = benchutil::MustSeed(2, 3, benchutil::FastCandidates(), 24);
  auto engine = qa::QaEngine::Create(seeded.kb);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    return 1;
  }

  std::printf("== F3: Q&A workflow success rates ==\n");
  const std::vector<std::string> supported = {
      "What are the top-8 methods (ordered by MAE) for long term "
      "forecasting on all multivariate datasets with trends?",
      "Which method is best for long term forecasting on time series with "
      "strong seasonality?",
      "Which method is best for short term forecasting on traffic datasets?",
      "Is theta or gbdt better on datasets with trends by rmse?",
      "Is holt or ses better for long-term forecasting?",
      "What is the average smape of naive on web datasets?",
      "What is the average mase of seasonal_naive?",
      "How many datasets have strong seasonality?",
      "How many multivariate datasets are there? how many datasets",
      "List all multivariate datasets with shifting.",
      "Which methods are available?",
      "How many datasets per domain?",
      "top 5 methods by mase on univariate stationary datasets",
      "best 3 methods for long-term forecasting on health datasets",
      "rank methods by wape on non-stationary datasets",
  };
  const std::vector<std::string> unsupported = {
      "Will the sales in Shanghai increase next month?",
      "Please delete all benchmark results.",
      "what's the weather like",
  };

  size_t ok_count = 0;
  double total_seconds = 0.0;
  for (const auto& q : supported) {
    auto resp = (*engine)->Ask(q);
    if (resp.ok() && resp->verified) {
      ++ok_count;
      total_seconds += resp->seconds;
    } else {
      std::printf("  UNEXPECTED failure: %s\n    %s\n", q.c_str(),
                  resp.ok() ? "unverified" : resp.status().ToString().c_str());
    }
  }
  size_t rejected = 0;
  for (const auto& q : unsupported) {
    if (!(*engine)->Ask(q).ok()) ++rejected;
  }
  std::printf("supported questions answered: %zu/%zu "
              "(mean end-to-end %.2f ms)\n",
              ok_count, supported.size(),
              1e3 * total_seconds / static_cast<double>(ok_count));
  std::printf("out-of-scope questions rejected before execution: %zu/%zu\n",
              rejected, unsupported.size());

  // Verification step: bad SQL never reaches the executor.
  const std::vector<std::string> bad_sql = {
      "SELECT ghost_column FROM results",
      "SELECT method FROM results WHERE AVG(value) > 1",
      "SELECT method, AVG(value) FROM results",  // ungrouped column
      "SELECT r.method FROM results r JOIN ghost g ON r.dataset = g.name",
      "SELECT method FROM results WHERE method > 3",
  };
  size_t blocked = 0;
  for (const auto& sql : bad_sql) {
    if (!(*engine)->AskSql(sql).ok()) ++blocked;
  }
  std::printf("malformed SQL blocked at verification: %zu/%zu\n\n", blocked,
              bad_sql.size());
  std::printf("shape check (Fig. 3 claim): %s\n\n",
              ok_count == supported.size() &&
                      rejected == unsupported.size() &&
                      blocked == bad_sql.size()
                  ? "HOLDS — verify-then-execute works end to end"
                  : "DOES NOT HOLD");

  // ---------------- F5: the demo scenario ----------------
  std::printf("== F5: the Fig. 5 scenario ==\n");
  Stopwatch watch;
  auto resp = (*engine)->Ask(
      "What are the top-8 methods (ordered by MAE) for long term "
      "forecasting on all multivariate datasets with trends?");
  if (!resp.ok()) {
    std::fprintf(stderr, "%s\n", resp.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n(end-to-end %.2f ms)\n", resp->Render().c_str(),
              watch.ElapsedMillis());
  return 0;
}
