#!/usr/bin/env bash
# Runs the storage-engine benchmark and writes BENCH_store.json at the repo
# root: WAL append throughput (buffered vs fsync-per-append), group-commit
# durable throughput with 8 and 16 concurrent appenders, recovery time as
# the record count grows, and the on-disk compaction ratio.
#
# Usage: bench/run_store.sh [build_dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
bin="$build_dir/bench/bench_store"

if [[ ! -x "$bin" ]]; then
  echo "bench_store not found at $bin — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

"$bin" "$repo_root/BENCH_store.json"
echo "wrote $repo_root/BENCH_store.json"
