// Experiment S1 (DESIGN.md §3): one-click evaluation. A researcher adds a
// new method (here: a GBDT variant with custom hyperparameters) and runs it
// on every dataset through the facade with a single call, after editing
// only the configuration. Reports per-stage latency of the whole flow.

#include <cstdio>

#include "common/stopwatch.h"
#include "core/easytime.h"

using namespace easytime;

int main() {
  std::printf("== S1: one-click evaluation ==\n");

  Stopwatch boot;
  core::EasyTime::Options opt;
  opt.suite.univariate_per_domain = 2;
  opt.suite.multivariate_total = 2;
  opt.pretrain_ensemble = false;  // S1 needs only benchmark + Q&A layers
  auto system = core::EasyTime::Create(opt);
  if (!system.ok()) {
    std::fprintf(stderr, "%s\n", system.status().ToString().c_str());
    return 1;
  }
  double boot_s = boot.ElapsedSeconds();

  // "Edit the configuration file": a method entry with custom parameters.
  auto method_config =
      Json::Parse(R"({"num_trees": 30, "max_depth": 4})").ValueOrDie();

  Stopwatch click;
  auto report =
      (*system)->EvaluateMethodEverywhere("gbdt", method_config);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  double click_s = click.ElapsedSeconds();

  std::printf("\nstage                                   seconds\n");
  std::printf("system bring-up (suite + KB seeding)    %7.2f\n", boot_s);
  std::printf("one-click method-on-all-datasets        %7.2f\n", click_s);
  std::printf("  -> %zu datasets, %zu ok, %.1f evals/s\n\n",
              report->records.size(), report->Successful().size(),
              static_cast<double>(report->records.size()) / click_s);

  // The results are immediately queryable — close the loop via Q&A.
  auto resp = (*system)->Ask("What is the average mae of gbdt?");
  if (!resp.ok()) {
    std::fprintf(stderr, "%s\n", resp.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", resp->answer.c_str());

  // Rolling reconfiguration: the "new forecasting scenario" path (§II-B).
  auto rolling_cfg = Json::Parse(R"({
    "methods": ["gbdt"],
    "evaluation": {"strategy": "rolling", "horizon": 12, "stride": 12,
                   "metrics": ["mae", "smape"]}
  })").ValueOrDie();
  Stopwatch rolling;
  auto rolling_report = (*system)->OneClickEvaluate(rolling_cfg);
  if (!rolling_report.ok()) {
    std::fprintf(stderr, "%s\n",
                 rolling_report.status().ToString().c_str());
    return 1;
  }
  std::printf("reconfigured to rolling forecasting: %zu pairs in %.2fs\n",
              rolling_report->records.size(), rolling.ElapsedSeconds());
  return 0;
}
