#!/usr/bin/env bash
# Runs the micro benchmark suite and writes BENCH_micro.json at the repo
# root so the perf trajectory is tracked from PR 1 onward.
#
# Usage: bench/run_micro.sh [build_dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
bin="$build_dir/bench/bench_micro"

if [[ ! -x "$bin" ]]; then
  echo "bench_micro not found at $bin — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

# min_time well above the 0.5s default: the training-epoch benchmarks run
# tens of ms per iteration, and on a busy 1-core CI box the default window
# is few enough iterations that tier-vs-tier ratios wobble run to run.
"$bin" --benchmark_format=json --benchmark_out="$repo_root/BENCH_micro.json" \
  --benchmark_out_format=json --benchmark_min_time=2.0
echo "wrote $repo_root/BENCH_micro.json"
