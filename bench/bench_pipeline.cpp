// Experiment F1 (DESIGN.md §3): the TFB benchmark pipeline of Fig. 1 —
// standardized processing/splitting/training/testing across the layer
// stack, under both evaluation strategies, with thread-scaling numbers for
// the parallel executor.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "pipeline/runner.h"

using namespace easytime;

namespace {

double RunOnce(const tsdata::Repository& repo, eval::Strategy strategy,
               size_t threads, size_t* pairs_ok, size_t* pairs_total) {
  pipeline::BenchmarkConfig config;
  config.eval = benchutil::SeedProtocol(12);
  config.eval.strategy = strategy;
  config.num_threads = threads;
  for (const auto& name : benchutil::FastCandidates()) {
    config.methods.push_back(pipeline::MethodSpec{name, Json::Object()});
  }
  pipeline::PipelineRunner runner(&repo, config);
  auto report = runner.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    std::exit(1);
  }
  *pairs_ok = report->Successful().size();
  *pairs_total = report->records.size();
  return report->wall_seconds;
}

}  // namespace

int main() {
  std::printf("== F1: benchmark pipeline (Fig. 1) ==\n");
  tsdata::Repository repo;
  tsdata::SuiteSpec suite;
  suite.univariate_per_domain = 2;
  suite.multivariate_total = 2;
  if (Status st = repo.AddSuite(suite); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("suite: %zu datasets; methods: %zu (fast set)\n\n", repo.size(),
              benchutil::FastCandidates().size());

  std::printf("%-10s %-8s %10s %10s %12s\n", "strategy", "threads", "pairs",
              "wall(s)", "pairs/s");
  for (eval::Strategy strategy :
       {eval::Strategy::kFixed, eval::Strategy::kRolling}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      size_t ok = 0, total = 0;
      double wall = RunOnce(repo, strategy, threads, &ok, &total);
      std::printf("%-10s %-8zu %6zu/%-4zu %9.2f %12.1f\n",
                  eval::StrategyName(strategy), threads, ok, total, wall,
                  static_cast<double>(total) / wall);
    }
  }

  // Per-stage cost of one evaluation (the pipeline's stage breakdown).
  std::printf("\n-- single-pair stage breakdown (theta on one dataset) --\n");
  const tsdata::Dataset* ds = repo.All()[0];
  Stopwatch total_watch;
  eval::Evaluator evaluator(benchutil::SeedProtocol(12));
  auto res = evaluator.EvaluateDataset("theta", Json::Object(), *ds);
  if (!res.ok()) {
    std::fprintf(stderr, "%s\n", res.status().ToString().c_str());
    return 1;
  }
  std::printf("  dataset=%s total=%.2fms fit=%.2fms forecast=%.2fms "
              "(split/scale/metrics = remainder)\n",
              ds->name().c_str(), total_watch.ElapsedMillis(),
              res->fit_seconds * 1e3, res->forecast_seconds * 1e3);
  return 0;
}
