// Experiment M1 (DESIGN.md §3): SQL engine micro-benchmarks at
// knowledge-base scale — tokenize / parse / verify / execute timings for
// the query shapes the Q&A module generates. google-benchmark binary.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "sql/analyzer.h"
#include "sql/executor.h"
#include "sql/lexer.h"
#include "sql/parser.h"

using namespace easytime;

namespace {

/// A knowledge-base-shaped database: `rows` result rows over 40 datasets
/// and 20 methods.
sql::Database MakeDb(size_t rows) {
  sql::Database db;
  (void)db.CreateTable("results", {{"dataset", sql::DataType::kText},
                                   {"method", sql::DataType::kText},
                                   {"metric", sql::DataType::kText},
                                   {"value", sql::DataType::kReal},
                                   {"horizon", sql::DataType::kInteger}});
  (void)db.CreateTable("datasets", {{"name", sql::DataType::kText},
                                    {"domain", sql::DataType::kText},
                                    {"trend", sql::DataType::kReal},
                                    {"multivariate", sql::DataType::kInteger}});
  Rng rng(1);
  sql::Table* rt = db.GetTable("results").ValueOrDie();
  for (size_t i = 0; i < rows; ++i) {
    (void)rt->Insert({sql::Value::Text("ds" + std::to_string(i % 40)),
                      sql::Value::Text("m" + std::to_string(i % 20)),
                      sql::Value::Text(i % 2 ? "mae" : "rmse"),
                      sql::Value::Real(rng.Uniform(0.1, 5.0)),
                      sql::Value::Integer(i % 3 ? 24 : 12)});
  }
  sql::Table* dt = db.GetTable("datasets").ValueOrDie();
  for (size_t i = 0; i < 40; ++i) {
    (void)dt->Insert({sql::Value::Text("ds" + std::to_string(i)),
                      sql::Value::Text(i % 2 ? "traffic" : "web"),
                      sql::Value::Real(rng.Uniform()),
                      sql::Value::Integer(i % 3 == 0 ? 1 : 0)});
  }
  return db;
}

const char* kTopKQuery =
    "SELECT r.method, AVG(r.value) AS avg_mae FROM results r "
    "JOIN datasets d ON r.dataset = d.name "
    "WHERE r.metric = 'mae' AND d.trend > 0.6 AND d.multivariate = 1 "
    "GROUP BY r.method ORDER BY avg_mae ASC LIMIT 8";

void BM_Tokenize(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::Tokenize(kTopKQuery));
  }
}
BENCHMARK(BM_Tokenize);

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::ParseSelect(kTopKQuery));
  }
}
BENCHMARK(BM_Parse);

void BM_Analyze(benchmark::State& state) {
  sql::Database db = MakeDb(100);
  auto stmt = sql::ParseSelect(kTopKQuery).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::AnalyzeSelect(db, stmt));
  }
}
BENCHMARK(BM_Analyze);

void BM_ExecuteFilterScan(benchmark::State& state) {
  sql::Database db = MakeDb(static_cast<size_t>(state.range(0)));
  auto stmt = sql::ParseSelect(
                  "SELECT method, value FROM results "
                  "WHERE metric = 'mae' AND value < 2.5")
                  .ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::ExecuteSelect(db, stmt));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExecuteFilterScan)->Arg(1000)->Arg(10000);

void BM_ExecuteGroupBy(benchmark::State& state) {
  sql::Database db = MakeDb(static_cast<size_t>(state.range(0)));
  auto stmt = sql::ParseSelect(
                  "SELECT method, AVG(value) AS v FROM results "
                  "GROUP BY method ORDER BY v ASC")
                  .ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::ExecuteSelect(db, stmt));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExecuteGroupBy)->Arg(1000)->Arg(10000);

void BM_ExecuteJoinTopK(benchmark::State& state) {
  sql::Database db = MakeDb(static_cast<size_t>(state.range(0)));
  auto stmt = sql::ParseSelect(kTopKQuery).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::ExecuteSelect(db, stmt));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExecuteJoinTopK)->Arg(1000)->Arg(4000);

void BM_EndToEndVerifiedQuery(benchmark::State& state) {
  sql::Database db = MakeDb(1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::ExecuteQuery(&db, kTopKQuery));
  }
}
BENCHMARK(BM_EndToEndVerifiedQuery);

void BM_Insert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sql::Database db = MakeDb(0);
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      benchmark::DoNotOptimize(sql::ExecuteQuery(
          &db, "INSERT INTO results VALUES ('d', 'm', 'mae', 1.5, 24)"));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_Insert);

}  // namespace

BENCHMARK_MAIN();
