#!/usr/bin/env bash
# Runs the streaming + backtest benchmark and writes BENCH_backtest.json at
# the repo root: durable append throughput (buffered / fsync-per-append /
# group-commit across concurrent appenders) and rolling-origin backtest
# throughput (origins/sec at 1 thread vs N, with the bit-identical
# cross-check the backtest job type advertises).
#
# Usage: bench/run_backtest.sh [build_dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
bin="$build_dir/bench/bench_backtest"

if [[ ! -x "$bin" ]]; then
  echo "bench_backtest not found at $bin — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

"$bin" "$repo_root/BENCH_backtest.json"
echo "wrote $repo_root/BENCH_backtest.json"
