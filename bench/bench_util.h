#pragma once

/// \file bench_util.h
/// \brief Shared setup for the benchmark harnesses: the candidate method
/// set, suite construction, and knowledge seeding.

#include <cstdio>
#include <string>
#include <vector>

#include "eval/evaluator.h"
#include "knowledge/knowledge_base.h"
#include "methods/registry.h"
#include "tsdata/repository.h"

namespace easytime::benchutil {

/// The fast candidate set used by the recommendation/ensemble experiments
/// (spans all three families; omits the slow deep models where wall time
/// matters more than coverage).
inline std::vector<std::string> FastCandidates() {
  return {"naive", "seasonal_naive", "drift",  "ses",
          "holt",  "holt_winters_add", "theta", "ar",
          "lag_linear", "dlinear",    "knn",   "gbdt"};
}

/// Every registered method (incl. deep models) for the full leaderboard.
inline std::vector<std::string> AllMethods() {
  return methods::MethodRegistry::Global().Names();
}

/// Standard seeding protocol used across harnesses.
inline eval::EvalConfig SeedProtocol(size_t horizon = 24) {
  eval::EvalConfig cfg;
  cfg.strategy = eval::Strategy::kFixed;
  cfg.horizon = horizon;
  cfg.metrics = {"mae", "rmse", "smape", "mase"};
  return cfg;
}

/// Builds + seeds a knowledge base, exiting the process on failure (benches
/// have no caller to propagate to).
inline knowledge::SeededKnowledge MustSeed(
    size_t uni_per_domain, size_t multivariate,
    const std::vector<std::string>& methods, size_t horizon = 24,
    uint64_t seed = 7) {
  tsdata::SuiteSpec suite;
  suite.univariate_per_domain = uni_per_domain;
  suite.multivariate_total = multivariate;
  suite.seed = seed;
  auto seeded = knowledge::SeedKnowledge(suite, SeedProtocol(horizon), methods);
  if (!seeded.ok()) {
    std::fprintf(stderr, "seeding failed: %s\n",
                 seeded.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*seeded);
}

/// Mean MAE of a method over a dataset under the standard protocol;
/// +inf when the evaluation fails.
inline double EvalMae(const std::string& method, const tsdata::Dataset& ds,
                      size_t horizon = 24) {
  eval::Evaluator evaluator(SeedProtocol(horizon));
  auto res = evaluator.EvaluateDataset(method, Json::Object(), ds);
  return res.ok() ? res->metrics.at("mae") : 1e300;
}

}  // namespace easytime::benchutil
