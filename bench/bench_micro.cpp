// Experiment M2 (DESIGN.md §3): throughput of the evaluation and data
// layers — metric computation, characteristics extraction, generation,
// scaling, and the TS2Vec forward pass. google-benchmark binary.

#include <benchmark/benchmark.h>

#include "ensemble/ts2vec.h"
#include "eval/metrics.h"
#include "tsdata/characteristics.h"
#include "tsdata/generator.h"
#include "tsdata/scaler.h"

using namespace easytime;

namespace {

std::vector<double> DemoSeries(size_t n) {
  tsdata::GeneratorConfig cfg;
  cfg.length = n;
  cfg.period = 24;
  cfg.season_amp = 5.0;
  cfg.trend_slope = 0.02;
  cfg.noise_std = 0.8;
  cfg.seed = 3;
  return tsdata::GenerateSeries(cfg).values();
}

void BM_MetricsSuite(benchmark::State& state) {
  auto actual = DemoSeries(static_cast<size_t>(state.range(0)));
  auto pred = actual;
  for (auto& v : pred) v += 0.1;
  eval::MetricContext ctx;
  ctx.train = actual;
  ctx.period = 24;
  const std::vector<std::string> names = {"mae", "rmse", "smape", "mase"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eval::MetricRegistry::Global().ComputeAll(names, actual, pred, ctx));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MetricsSuite)->Arg(256)->Arg(2048);

void BM_DetectPeriod(benchmark::State& state) {
  auto v = DemoSeries(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsdata::DetectPeriod(v));
  }
}
BENCHMARK(BM_DetectPeriod)->Arg(512)->Arg(4096);

void BM_ExtractCharacteristics(benchmark::State& state) {
  auto v = DemoSeries(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsdata::ExtractCharacteristics(v));
  }
}
BENCHMARK(BM_ExtractCharacteristics)->Arg(512)->Arg(2048);

void BM_GenerateSeries(benchmark::State& state) {
  tsdata::GeneratorConfig cfg;
  cfg.length = static_cast<size_t>(state.range(0));
  cfg.period = 24;
  cfg.season_amp = 5.0;
  cfg.seed = 11;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsdata::GenerateSeries(cfg));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateSeries)->Arg(512)->Arg(8192);

void BM_ZScoreScaler(benchmark::State& state) {
  auto v = DemoSeries(4096);
  tsdata::ZScoreScaler scaler;
  (void)scaler.Fit(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scaler.Transform(v));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ZScoreScaler);

void BM_Ts2VecEncode(benchmark::State& state) {
  ensemble::Ts2VecOptions opt;
  opt.repr_dim = 16;
  opt.hidden_dim = 24;
  opt.depth = 3;
  ensemble::Ts2VecEncoder enc(opt);
  auto v = DemoSeries(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.Represent(v));
  }
}
BENCHMARK(BM_Ts2VecEncode)->Arg(128)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
