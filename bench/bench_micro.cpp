// Experiment M2 (DESIGN.md §3): throughput of the evaluation and data
// layers — metric computation, characteristics extraction, generation,
// scaling, and the TS2Vec forward pass. google-benchmark binary.

#include <benchmark/benchmark.h>

#include <cmath>

#include "common/fault.h"
#include "common/rng.h"
#include "ensemble/ts2vec.h"
#include "eval/metrics.h"
#include "nn/gru.h"
#include "nn/matrix.h"
#include "tsdata/characteristics.h"
#include "tsdata/generator.h"
#include "tsdata/scaler.h"

using namespace easytime;

namespace {

std::vector<double> DemoSeries(size_t n) {
  tsdata::GeneratorConfig cfg;
  cfg.length = n;
  cfg.period = 24;
  cfg.season_amp = 5.0;
  cfg.trend_slope = 0.02;
  cfg.noise_std = 0.8;
  cfg.seed = 3;
  return tsdata::GenerateSeries(cfg).values();
}

void BM_MetricsSuite(benchmark::State& state) {
  auto actual = DemoSeries(static_cast<size_t>(state.range(0)));
  auto pred = actual;
  for (auto& v : pred) v += 0.1;
  eval::MetricContext ctx;
  ctx.train = actual;
  ctx.period = 24;
  const std::vector<std::string> names = {"mae", "rmse", "smape", "mase"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eval::MetricRegistry::Global().ComputeAll(names, actual, pred, ctx));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MetricsSuite)->Arg(256)->Arg(2048);

void BM_DetectPeriod(benchmark::State& state) {
  auto v = DemoSeries(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsdata::DetectPeriod(v));
  }
}
BENCHMARK(BM_DetectPeriod)->Arg(512)->Arg(4096);

void BM_ExtractCharacteristics(benchmark::State& state) {
  auto v = DemoSeries(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsdata::ExtractCharacteristics(v));
  }
}
BENCHMARK(BM_ExtractCharacteristics)->Arg(512)->Arg(2048);

void BM_GenerateSeries(benchmark::State& state) {
  tsdata::GeneratorConfig cfg;
  cfg.length = static_cast<size_t>(state.range(0));
  cfg.period = 24;
  cfg.season_amp = 5.0;
  cfg.seed = 11;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsdata::GenerateSeries(cfg));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateSeries)->Arg(512)->Arg(8192);

void BM_ZScoreScaler(benchmark::State& state) {
  auto v = DemoSeries(4096);
  tsdata::ZScoreScaler scaler;
  (void)scaler.Fit(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scaler.Transform(v));
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ZScoreScaler);

void BM_Ts2VecEncode(benchmark::State& state) {
  ensemble::Ts2VecOptions opt;
  opt.repr_dim = 16;
  opt.hidden_dim = 24;
  opt.depth = 3;
  ensemble::Ts2VecEncoder enc(opt);
  auto v = DemoSeries(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.Represent(v));
  }
}
BENCHMARK(BM_Ts2VecEncode)->Arg(128)->Arg(512);

// --- Kernel / training-path benchmarks (PR 1). The *Naive cases run the
// seed's reference kernel so the blocked-GEMM speedup is visible in one
// report; BM_Ts2VecTrainEpoch matches the pre-PR harness workload so its
// wall time is comparable across revisions.

void GemmOperands(size_t n, nn::Matrix* a, nn::Matrix* b) {
  Rng rng(1);
  *a = nn::Matrix::Gaussian(n, n, 1.0, &rng);
  *b = nn::Matrix::Gaussian(n, n, 1.0, &rng);
}

void BM_GemmSmall(benchmark::State& state) {
  nn::Matrix a, b, out;
  GemmOperands(64, &a, &b);
  for (auto _ : state) {
    nn::MatMulInto(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 64 * 64 * 64);
}
BENCHMARK(BM_GemmSmall);

void BM_GemmSmallNaive(benchmark::State& state) {
  nn::Matrix a, b;
  GemmOperands(64, &a, &b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMulNaive(b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * 64 * 64 * 64);
}
BENCHMARK(BM_GemmSmallNaive);

void BM_GemmLarge(benchmark::State& state) {
  nn::Matrix a, b, out;
  GemmOperands(256, &a, &b);
  for (auto _ : state) {
    nn::MatMulInto(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 256 * 256 * 256);
}
BENCHMARK(BM_GemmLarge);

// --- Fast-tier kernel benchmarks (PR 6, DESIGN.md §10). Same workloads as
// the bit-exact cases above, run under MatrixMode::kFast (FMA-contracted
// fp64) and kFastF32 (float32 multiply-accumulate), so BENCH_micro.json
// records all numeric tiers side by side.

void BM_GemmLargeFast(benchmark::State& state) {
  nn::ScopedMatrixMode mode(nn::MatrixMode::kFast);
  nn::Matrix a, b, out;
  GemmOperands(256, &a, &b);
  for (auto _ : state) {
    nn::MatMulInto(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 256 * 256 * 256);
}
BENCHMARK(BM_GemmLargeFast);

void BM_GemmLargeFastF32(benchmark::State& state) {
  nn::ScopedMatrixMode mode(nn::MatrixMode::kFastF32);
  nn::Matrix a, b, out;
  GemmOperands(256, &a, &b);
  for (auto _ : state) {
    nn::MatMulInto(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 256 * 256 * 256);
}
BENCHMARK(BM_GemmLargeFastF32);

// Registered after the tier trio on purpose: the ref-vs-fast ratio is the
// number PR 6 tracks, so those two run back to back instead of with the
// multi-second naive sweep between them.
void BM_GemmLargeNaive(benchmark::State& state) {
  nn::Matrix a, b;
  GemmOperands(256, &a, &b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMulNaive(b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * 256 * 256 * 256);
}
BENCHMARK(BM_GemmLargeNaive);

void BM_GemmSmallFast(benchmark::State& state) {
  nn::ScopedMatrixMode mode(nn::MatrixMode::kFast);
  nn::Matrix a, b, out;
  GemmOperands(64, &a, &b);
  for (auto _ : state) {
    nn::MatMulInto(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 64 * 64 * 64);
}
BENCHMARK(BM_GemmSmallFast);

void BM_GemmSmallFastF32(benchmark::State& state) {
  nn::ScopedMatrixMode mode(nn::MatrixMode::kFastF32);
  nn::Matrix a, b, out;
  GemmOperands(64, &a, &b);
  for (auto _ : state) {
    nn::MatMulInto(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 64 * 64 * 64);
}
BENCHMARK(BM_GemmSmallFastF32);

void BM_GruStep(benchmark::State& state) {
  Rng rng(2);
  nn::Gru gru(1, 32, &rng);
  nn::Matrix x = nn::Matrix::Gaussian(64, 1, 1.0, &rng);
  nn::Matrix g = nn::Matrix::Gaussian(64, 32, 0.1, &rng);
  nn::Matrix h, dx;
  for (auto _ : state) {
    gru.ForwardInto(x, &h);
    gru.BackwardInto(g, &dx);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_GruStep);

void BM_GruStepFastF32(benchmark::State& state) {
  nn::ScopedMatrixMode mode(nn::MatrixMode::kFastF32);
  Rng rng(2);
  nn::Gru gru(1, 32, &rng);
  nn::Matrix x = nn::Matrix::Gaussian(64, 1, 1.0, &rng);
  nn::Matrix g = nn::Matrix::Gaussian(64, 32, 0.1, &rng);
  nn::Matrix h, dx;
  for (auto _ : state) {
    gru.ForwardInto(x, &h);
    gru.BackwardInto(g, &dx);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_GruStepFastF32);

void RunTs2VecTrainEpoch(benchmark::State& state) {
  ensemble::Ts2VecOptions opt;
  opt.repr_dim = 16;
  opt.hidden_dim = 24;
  opt.depth = 3;
  opt.crop_length = 64;
  opt.batch_size = 8;
  opt.epochs = 1;
  opt.seed = 9;
  std::vector<std::vector<double>> corpus;
  for (uint64_t s = 0; s < 16; ++s) {
    Rng rng(s + 1);
    std::vector<double> v(160);
    for (size_t i = 0; i < v.size(); ++i) {
      v[i] = std::sin(static_cast<double>(i) * 0.26) + rng.Gaussian(0.0, 0.3);
    }
    corpus.push_back(std::move(v));
  }
  for (auto _ : state) {
    ensemble::Ts2VecEncoder enc(opt);
    auto r = ensemble::PretrainTs2Vec(&enc, corpus);
    if (!r.ok()) state.SkipWithError("pretrain failed");
    benchmark::DoNotOptimize(r);
  }
}

void BM_Ts2VecTrainEpoch(benchmark::State& state) {
  nn::ScopedMatrixMode mode(nn::MatrixMode::kReference);
  RunTs2VecTrainEpoch(state);
}
BENCHMARK(BM_Ts2VecTrainEpoch);

void BM_Ts2VecTrainEpochFastF32(benchmark::State& state) {
  nn::ScopedMatrixMode mode(nn::MatrixMode::kFastF32);
  RunTs2VecTrainEpoch(state);
}
BENCHMARK(BM_Ts2VecTrainEpochFastF32);

void BM_Ts2VecTrainEpochFast(benchmark::State& state) {
  nn::ScopedMatrixMode mode(nn::MatrixMode::kFast);
  RunTs2VecTrainEpoch(state);
}
BENCHMARK(BM_Ts2VecTrainEpochFast);

// Fault points are compiled into production paths permanently; the unarmed
// check must stay in the ~1ns range (a single relaxed atomic load) so that
// leaving them in costs nothing.
Status GuardedNoop() {
  EASYTIME_FAULT_POINT("bench.micro.fault");
  return Status::OK();
}

void BM_FaultPointUnarmed(benchmark::State& state) {
  FaultRegistry::Global().DisarmAll();
  for (auto _ : state) {
    Status s = GuardedNoop();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_FaultPointUnarmed);

// With any point armed the gate opens and checks take the registry mutex;
// this bounds the slow path (rate 0 so nothing ever fires).
void BM_FaultPointArmedRateZero(benchmark::State& state) {
  FaultSpec spec;
  spec.rate = 0.0;
  (void)FaultRegistry::Global().Arm("bench.micro.fault", spec);
  for (auto _ : state) {
    Status s = GuardedNoop();
    benchmark::DoNotOptimize(s);
  }
  FaultRegistry::Global().DisarmAll();
}
BENCHMARK(BM_FaultPointArmedRateZero);

}  // namespace

BENCHMARK_MAIN();
