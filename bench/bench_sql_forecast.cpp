// SQL-native forecasting benchmark (DESIGN.md §11): measures the two
// numbers the table-function subsystem exists for and emits them as JSON
// (BENCH_sql.json via bench/run_sql.sh):
//
//   1. ts_forecast    — end-to-end TS_FORECAST latency (parse + analyze +
//                       fit + intervals) per model over a 480-point series
//   2. ts_forecast_by — TS_FORECAST_BY group throughput on the global pool
//                       vs the same query forced onto a single thread
//
// The single-thread leg re-executes this binary with EASYTIME_NUM_THREADS=1
// (the pool size is fixed at process start), so both rows come from the
// identical code path and the speedup column is honest.
//
//   ./build/bench/bench_sql_forecast [output.json]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "sql/executor.h"
#include "sql/table.h"

using namespace easytime;

namespace {

constexpr int kGroups = 64;
constexpr int kGroupLen = 240;
constexpr int kSeriesLen = 480;

void Die(const std::string& what, const Status& status) {
  std::fprintf(stderr, "bench_sql_forecast: %s: %s\n", what.c_str(),
               status.ToString().c_str());
  std::exit(1);
}

/// One long seasonal series plus a fleet of `kGroups` shorter ones.
sql::Database MakeDb() {
  sql::Database db;
  (void)db.CreateTable("series", {{"t", sql::DataType::kInteger},
                                  {"v", sql::DataType::kReal}});
  sql::Table* st = db.GetTable("series").ValueOrDie();
  for (int i = 0; i < kSeriesLen; ++i) {
    double v = 50.0 + 0.2 * i + 10.0 * std::sin(2.0 * 3.14159265 * i / 24.0);
    (void)st->Insert({sql::Value::Integer(i), sql::Value::Real(v)});
  }
  (void)db.CreateTable("fleet", {{"g", sql::DataType::kInteger},
                                 {"t", sql::DataType::kInteger},
                                 {"v", sql::DataType::kReal}});
  sql::Table* ft = db.GetTable("fleet").ValueOrDie();
  for (int g = 0; g < kGroups; ++g) {
    double level = 100.0 + g;
    for (int i = 0; i < kGroupLen; ++i) {
      level += std::sin(0.7 * i + g);  // deterministic wiggle
      (void)ft->Insert({sql::Value::Integer(g), sql::Value::Integer(i),
                        sql::Value::Real(level)});
    }
  }
  return db;
}

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Median end-to-end latency of one TS_FORECAST query, in milliseconds.
double ForecastLatencyMs(sql::Database* db, const std::string& model,
                         int iters) {
  const std::string query =
      "SELECT * FROM TS_FORECAST(series, t, v, model := '" + model +
      "', horizon := 24, period := 24)";
  std::vector<double> ms;
  ms.reserve(static_cast<size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    Stopwatch watch;
    auto rs = sql::ExecuteQuery(db, query);
    if (!rs.ok()) Die("TS_FORECAST " + model, rs.status());
    ms.push_back(watch.ElapsedSeconds() * 1000.0);
  }
  return MedianMs(std::move(ms));
}

/// Group fits per second for one TS_FORECAST_BY query over the fleet.
double GroupThroughput(sql::Database* db, int iters) {
  const std::string query =
      "SELECT * FROM TS_FORECAST_BY(fleet, g, t, v, model := 'theta', "
      "horizon := 12)";
  // Warm-up (pool spin-up, allocator).
  if (auto rs = sql::ExecuteQuery(db, query); !rs.ok()) {
    Die("TS_FORECAST_BY", rs.status());
  }
  Stopwatch watch;
  for (int i = 0; i < iters; ++i) {
    auto rs = sql::ExecuteQuery(db, query);
    if (!rs.ok()) Die("TS_FORECAST_BY", rs.status());
  }
  return kGroups * iters / watch.ElapsedSeconds();
}

/// Re-runs this binary single-threaded and reads its one-number output.
double SingleThreadThroughput(const char* argv0) {
  std::string cmd = std::string("EASYTIME_NUM_THREADS=1 '") + argv0 +
                    "' --by-throughput-only 2>/dev/null";
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  if (!pipe) return 0.0;
  double value = 0.0;
  int got = std::fscanf(pipe, "%lf", &value);
  int rc = ::pclose(pipe);
  return (got == 1 && rc == 0) ? value : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  sql::Database db = MakeDb();

  if (argc > 1 && std::string(argv[1]) == "--by-throughput-only") {
    std::printf("%.3f\n", GroupThroughput(&db, 5));
    return 0;
  }

  const int64_t pool_threads =
      static_cast<int64_t>(GlobalThreadPool().size());
  const int64_t hw = static_cast<int64_t>(std::thread::hardware_concurrency());

  Json out = Json::Object();
  out.Set("bench", "sql_forecast");
  out.Set("threads", pool_threads);
  out.Set("hardware_concurrency", hw);

  Json latency = Json::Array();
  for (const char* model : {"naive", "ses", "theta", "holt", "ets_auto"}) {
    Json row = Json::Object();
    row.Set("model", model);
    row.Set("horizon", static_cast<int64_t>(24));
    row.Set("train_points", static_cast<int64_t>(kSeriesLen));
    row.Set("median_ms", ForecastLatencyMs(&db, model, 15));
    latency.Append(std::move(row));
  }
  out.Set("ts_forecast", std::move(latency));

  const double par = GroupThroughput(&db, 5);
  const double seq = SingleThreadThroughput(argv[0]);
  Json by = Json::Object();
  by.Set("groups", static_cast<int64_t>(kGroups));
  by.Set("points_per_group", static_cast<int64_t>(kGroupLen));
  Json par_row = Json::Object();
  par_row.Set("threads", pool_threads);
  par_row.Set("group_fits_per_sec", par);
  Json seq_row = Json::Object();
  seq_row.Set("threads", static_cast<int64_t>(1));
  seq_row.Set("group_fits_per_sec", seq);
  Json runs = Json::Array();
  runs.Append(std::move(seq_row));
  runs.Append(std::move(par_row));
  by.Set("runs", std::move(runs));
  by.Set("speedup", seq > 0.0 ? par / seq : 0.0);
  out.Set("ts_forecast_by", std::move(by));

  std::string payload = out.Dump(2);
  std::printf("%s\n", payload.c_str());
  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    std::fputs(payload.c_str(), f);
    std::fputs("\n", f);
    std::fclose(f);
  }
  return 0;
}
