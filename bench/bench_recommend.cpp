// Experiment F4 (DESIGN.md §3): recommendation quality (Fig. 4 label 4).
// The pretrained classifier's ranking is scored on held-out datasets
// against the ground-truth per-method MAE, versus two baselines:
// uniform-random ranking and the global-frequency heuristic (rank methods
// by how often they win on the training knowledge).
//
// Because many candidate methods are near-tied on easy datasets, a "hit"
// counts any top-k pick whose MAE is within 10% of the per-dataset oracle —
// the paper's module only needs the top-k to contain *promising* methods
// (they are ensembled afterwards, Fig. 2).
//
// Metrics: hit@1 / hit@3 (tolerance-based), mean regret of the top-1 pick,
// and the mean Spearman correlation between predicted rank and true error.

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "ensemble/auto_ensemble.h"
#include "tsdata/generator.h"

using namespace easytime;

int main() {
  std::printf("== F4: method recommendation quality ==\n");

  auto candidates = benchutil::FastCandidates();
  auto seeded = benchutil::MustSeed(4, 4, candidates, 24, /*seed=*/7);

  ensemble::AutoEnsembleOptions opt;
  opt.ts2vec.epochs = 10;
  opt.classifier.epochs = 400;
  opt.classifier.label_temperature = 0.3;
  ensemble::AutoEnsembleEngine engine(opt);
  if (Status st = engine.Pretrain(seeded.repository, seeded.kb); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const auto& methods = engine.candidate_methods();

  // Global-frequency baseline: rank by training-set win counts.
  std::map<std::string, int> train_wins;
  for (const auto& meta : seeded.kb.datasets()) {
    auto scores = seeded.kb.MethodScores(meta.name, "mae");
    if (scores.empty()) continue;
    std::string best;
    double best_v = 1e300;
    for (const auto& [m, v] : scores) {
      if (v < best_v) {
        best_v = v;
        best = m;
      }
    }
    ++train_wins[best];
  }
  std::vector<std::string> freq_ranking = methods;
  std::sort(freq_ranking.begin(), freq_ranking.end(),
            [&](const std::string& a, const std::string& b) {
              return train_wins[a] > train_wins[b];
            });

  // Held-out datasets with ground-truth per-method MAE.
  tsdata::SuiteSpec held;
  held.univariate_per_domain = 2;
  held.multivariate_total = 2;
  held.seed = 424242;
  auto held_out = tsdata::GenerateSuite(held);

  constexpr double kTolerance = 1.10;  // within 10% of the oracle counts

  struct Scores {
    double hit1 = 0, hit3 = 0, regret = 0, spearman = 0;
  };
  Scores clf, freq, rnd;
  Rng rng(99);
  size_t n = 0;

  for (const auto& ds : held_out) {
    std::map<std::string, double> truth;
    double oracle = 1e300;
    for (const auto& m : methods) {
      truth[m] = benchutil::EvalMae(m, ds, 24);
      oracle = std::min(oracle, truth[m]);
    }

    auto score = [&](const std::vector<std::string>& ranking, Scores* s) {
      auto good = [&](const std::string& m) {
        return truth[m] <= kTolerance * oracle;
      };
      if (good(ranking[0])) s->hit1 += 1;
      for (size_t i = 0; i < std::min<size_t>(3, ranking.size()); ++i) {
        if (good(ranking[i])) {
          s->hit3 += 1;
          break;
        }
      }
      s->regret += truth[ranking[0]] - oracle;
      std::vector<double> pred_rank(methods.size()), true_err(methods.size());
      for (size_t i = 0; i < methods.size(); ++i) {
        auto it = std::find(ranking.begin(), ranking.end(), methods[i]);
        pred_rank[i] =
            static_cast<double>(std::distance(ranking.begin(), it));
        true_err[i] = truth[methods[i]];
      }
      s->spearman += SpearmanCorrelation(pred_rank, true_err);
    };

    auto rec = engine.Recommend(ds.primary().values(), methods.size());
    if (!rec.ok()) continue;
    std::vector<std::string> clf_ranking;
    for (const auto& [m, p] : *rec) clf_ranking.push_back(m);
    score(clf_ranking, &clf);

    score(freq_ranking, &freq);
    std::vector<std::string> random_ranking = methods;
    rng.Shuffle(&random_ranking);
    score(random_ranking, &rnd);
    ++n;
  }

  auto row = [&](const char* name, const Scores& s) {
    double dn = static_cast<double>(n);
    std::printf("%-18s %7.2f %7.2f %10.4f %10.3f\n", name, s.hit1 / dn,
                s.hit3 / dn, s.regret / dn, s.spearman / dn);
  };
  std::printf("\n%zu held-out datasets, %zu candidate methods, "
              "hit tolerance %.0f%%\n",
              n, methods.size(), (kTolerance - 1.0) * 100);
  std::printf("%-18s %7s %7s %10s %10s\n", "recommender", "hit@1", "hit@3",
              "regret", "spearman");
  row("classifier", clf);
  row("global-frequency", freq);
  row("random", rnd);

  bool holds = clf.hit3 > rnd.hit3 && clf.regret < rnd.regret &&
               clf.spearman > rnd.spearman;
  std::printf("\nshape check (Fig. 4 claim): classifier beats random on "
              "hit@3, regret, and spearman -> %s\n",
              holds ? "HOLDS" : "DOES NOT HOLD");
  return 0;
}
