#!/usr/bin/env bash
# Runs the SQL-native forecasting benchmark and writes BENCH_sql.json at the
# repo root: TS_FORECAST end-to-end latency per model, and TS_FORECAST_BY
# group-fit throughput on the full thread pool vs a single thread (the
# single-thread leg is the same binary re-run under EASYTIME_NUM_THREADS=1).
#
# Usage: bench/run_sql.sh [build_dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
bin="$build_dir/bench/bench_sql_forecast"

if [[ ! -x "$bin" ]]; then
  echo "bench_sql_forecast not found at $bin — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

"$bin" "$repo_root/BENCH_sql.json"
echo "wrote $repo_root/BENCH_sql.json"
