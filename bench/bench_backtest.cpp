// Streaming + backtest benchmark (DESIGN.md §13): the two numbers the
// streaming subsystem exists for, emitted as JSON (BENCH_backtest.json via
// bench/run_backtest.sh):
//
//   1. append   — durable streaming-append throughput through the
//                 AppendLog: buffered, fsync-per-append, and group-commit
//                 with concurrent appenders on distinct datasets
//   2. backtest — rolling-origin evaluation throughput (origins/sec) at
//                 1 thread vs N, plus a bit-identical cross-check of the
//                 two reports (fit_seconds zeroed — wall-clock is the one
//                 field outside the determinism contract)
//
//   ./build/bench/bench_backtest [output.json]

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/stopwatch.h"
#include "eval/backtest.h"
#include "tsdata/append_log.h"
#include "tsdata/generator.h"
#include "tsdata/repository.h"

using namespace easytime;

namespace {

namespace fs = std::filesystem;

const char* kDir = "/tmp/easytime_bench_backtest";

void Die(const Status& status) {
  std::fprintf(stderr, "bench_backtest: %s\n", status.ToString().c_str());
  std::exit(1);
}

// ---- 1. streaming append throughput ---------------------------------------

tsdata::Repository MakeRepo(size_t datasets) {
  tsdata::Repository repo;
  for (size_t d = 0; d < datasets; ++d) {
    tsdata::GeneratorConfig cfg;
    cfg.name = "stream_" + std::to_string(d);
    cfg.length = 128;
    cfg.seed = 100 + d;
    auto status = repo.Add(tsdata::GenerateDataset(cfg));
    if (!status.ok()) Die(status);
  }
  return repo;
}

/// Appends \p batches batches of \p batch_size points per appender thread,
/// each thread owning one dataset (the log serializes per dataset, fans out
/// fsyncs across datasets). Returns appended points per second.
double AppendThroughput(size_t appenders, size_t batches, size_t batch_size,
                        bool sync_every_append, bool group_commit) {
  fs::remove_all(kDir);
  tsdata::Repository repo = MakeRepo(appenders);
  tsdata::AppendLogOptions opt;
  opt.dir = kDir;
  opt.sync_every_append = sync_every_append;
  opt.group_commit = group_commit;
  opt.compact_every = 0;  // measure the WAL, not compaction
  auto log = tsdata::AppendLog::Open(opt, &repo, nullptr);
  if (!log.ok()) Die(log.status());

  std::atomic<size_t> failures{0};
  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(appenders);
  for (size_t t = 0; t < appenders; ++t) {
    threads.emplace_back([&, t] {
      const std::string name = "stream_" + std::to_string(t);
      size_t start = 128;
      for (size_t b = 0; b < batches; ++b) {
        tsdata::AppendRecord rec;
        rec.dataset = name;
        rec.start = start;
        rec.channels.emplace_back(batch_size, static_cast<double>(b));
        if (!(*log)->Append(rec).ok()) failures.fetch_add(1);
        start += batch_size;
      }
    });
  }
  for (auto& th : threads) th.join();
  const double seconds = watch.ElapsedSeconds();
  if (failures.load() != 0) Die(Status::IOError("append failed"));
  const double points =
      static_cast<double>(appenders * batches * batch_size);
  return seconds > 0.0 ? points / seconds : 0.0;
}

// ---- 2. backtest origins/sec ----------------------------------------------

std::vector<double> BenchSeries() {
  tsdata::GeneratorConfig cfg;
  cfg.name = "bench";
  cfg.length = 3200;
  cfg.level = 25.0;
  cfg.period = 24;
  cfg.season_amp = 5.0;
  cfg.trend_slope = 0.01;
  cfg.noise_std = 0.8;
  cfg.ar_coef = 0.3;
  cfg.seed = 9;
  return tsdata::GenerateSeries(cfg).values();
}

eval::BacktestConfig BenchConfig(const std::string& method) {
  eval::BacktestConfig cfg;
  cfg.method = method;
  cfg.origins = 48;
  cfg.horizon = 24;
  cfg.stride = 24;
  return cfg;
}

/// The report's JSON with per-origin fit_seconds zeroed: everything that is
/// part of the determinism contract, nothing that is not.
std::string CanonicalReport(const eval::BacktestReport& report) {
  Json j = report.ToJson();
  Json origins = Json::Array();
  for (const auto& origin : j.Get("origins").items()) {
    Json o = origin;
    o.Set("fit_seconds", 0.0);
    origins.Append(std::move(o));
  }
  j.Set("origins", std::move(origins));
  return j.Dump();
}

struct BacktestNumbers {
  double seconds = 0.0;
  double origins_per_sec = 0.0;
  std::string canonical;
};

BacktestNumbers RunOnce(const std::vector<double>& values,
                        const std::string& method, size_t max_threads) {
  eval::BacktestHooks hooks;
  hooks.max_threads = max_threads;
  Stopwatch watch;
  auto report = eval::RunBacktest(values, 24, BenchConfig(method), hooks);
  if (!report.ok()) Die(report.status());
  BacktestNumbers out;
  out.seconds = watch.ElapsedSeconds();
  out.origins_per_sec =
      out.seconds > 0.0
          ? static_cast<double>(report->origins.size()) / out.seconds
          : 0.0;
  out.canonical = CanonicalReport(*report);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Json out = Json::Object();

  // Streaming ingestion: points/sec through the durable append log.
  const double buffered = AppendThroughput(1, 2000, 8, false, false);
  const double fsynced = AppendThroughput(1, 400, 8, true, false);
  const double grouped = AppendThroughput(8, 400, 8, true, true);
  Json append_json = Json::Object();
  append_json.Set("batch_points", static_cast<int64_t>(8));
  append_json.Set("buffered_points_per_sec", buffered);
  append_json.Set("fsync_points_per_sec", fsynced);
  append_json.Set("group_commit_threads", static_cast<int64_t>(8));
  append_json.Set("group_commit_points_per_sec", grouped);
  append_json.Set("group_commit_speedup_vs_fsync",
                  fsynced > 0.0 ? grouped / fsynced : 0.0);
  out.Set("append", std::move(append_json));

  // Rolling-origin backtest: origins/sec at 1 thread vs hardware threads,
  // and the bit-identical cross-check the job type advertises.
  const unsigned hw = std::thread::hardware_concurrency();
  const size_t threads = hw > 1 ? hw : 2;
  const std::vector<double> values = BenchSeries();
  Json backtest_json = Json::Array();
  for (const std::string& method : {std::string("theta"),
                                    std::string("ses")}) {
    const BacktestNumbers seq = RunOnce(values, method, 1);
    const BacktestNumbers par = RunOnce(values, method, threads);
    Json point = Json::Object();
    point.Set("method", method);
    point.Set("origins", static_cast<int64_t>(48));
    point.Set("horizon", static_cast<int64_t>(24));
    point.Set("series_length", static_cast<int64_t>(values.size()));
    point.Set("threads", static_cast<int64_t>(threads));
    point.Set("origins_per_sec_1_thread", seq.origins_per_sec);
    point.Set("origins_per_sec_n_threads", par.origins_per_sec);
    point.Set("speedup", seq.seconds > 0.0 && par.seconds > 0.0
                             ? seq.seconds / par.seconds
                             : 0.0);
    point.Set("bit_identical", seq.canonical == par.canonical);
    if (seq.canonical != par.canonical) {
      std::fprintf(stderr,
                   "bench_backtest: %s report differs at 1 vs %zu threads\n",
                   method.c_str(), threads);
      std::exit(1);
    }
    backtest_json.Append(std::move(point));
  }
  out.Set("backtest", std::move(backtest_json));

  fs::remove_all(kDir);

  std::string payload = out.Dump(2);
  std::printf("%s\n", payload.c_str());
  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    std::fputs(payload.c_str(), f);
    std::fputs("\n", f);
    std::fclose(f);
  }
  return 0;
}
