// Experiment F2 (DESIGN.md §3): the Automated Ensemble (Fig. 2). Offline:
// pretrain TS2Vec + the soft-label classifier on the benchmark knowledge.
// Online: on HELD-OUT datasets (fresh generator seed), build the top-k
// ensemble, and compare against (a) each member, (b) the globally best
// single method from the training knowledge, and (c) the per-dataset oracle
// over the candidate set.
//
// Reproduction claims: ensemble MAE < mean member MAE on most datasets, and
// the ensemble closes most of the gap between the global-best heuristic and
// the oracle.

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "ensemble/auto_ensemble.h"
#include "tsdata/generator.h"

using namespace easytime;

int main() {
  std::printf("== F2: automated ensemble vs individual methods ==\n");

  // Offline pretraining.
  auto candidates = benchutil::FastCandidates();
  auto seeded = benchutil::MustSeed(3, 3, candidates, 24, /*seed=*/7);

  ensemble::AutoEnsembleOptions opt;
  opt.top_k = 3;
  opt.ts2vec.epochs = 8;
  ensemble::AutoEnsembleEngine engine(opt);
  if (Status st = engine.Pretrain(seeded.repository, seeded.kb); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // The global-best heuristic: the method with the lowest mean MAE on the
  // training knowledge.
  std::map<std::string, std::pair<double, size_t>> acc;
  for (const auto& r : seeded.kb.results()) {
    auto it = r.metrics.find("mae");
    if (it == r.metrics.end()) continue;
    acc[r.method].first += it->second;
    acc[r.method].second += 1;
  }
  std::string global_best;
  double global_best_mae = 1e300;
  for (const auto& [m, sum_n] : acc) {
    double mean = sum_n.first / static_cast<double>(sum_n.second);
    if (mean < global_best_mae) {
      global_best_mae = mean;
      global_best = m;
    }
  }
  std::printf("global-best single method on training KB: %s\n\n",
              global_best.c_str());

  // Held-out evaluation.
  tsdata::SuiteSpec held;
  held.univariate_per_domain = 1;
  held.multivariate_total = 2;
  held.seed = 20250706;  // disjoint from training seed
  auto held_out = tsdata::GenerateSuite(held);

  size_t ens_beats_mean_member = 0, ens_beats_global_best = 0;
  double sum_ens = 0, sum_member_avg = 0, sum_global = 0, sum_oracle = 0;
  std::printf("%-18s %9s %9s %9s %9s\n", "dataset", "ensemble", "avg-mem",
              "glob-best", "oracle");

  for (const auto& ds : held_out) {
    auto ens = engine.BuildEnsemble(ds.primary().values());
    if (!ens.ok()) continue;

    eval::Evaluator evaluator(benchutil::SeedProtocol(24));
    auto ens_res = evaluator.EvaluateValues(ens->get(),
                                            ds.primary().values());
    if (!ens_res.ok()) continue;
    double ens_mae = ens_res->metrics.at("mae");

    double member_sum = 0;
    for (const auto& name : (*ens)->member_names()) {
      member_sum += benchutil::EvalMae(name, ds, 24);
    }
    double member_avg =
        member_sum / static_cast<double>((*ens)->member_names().size());

    double global = benchutil::EvalMae(global_best, ds, 24);
    double oracle = 1e300;
    for (const auto& name : candidates) {
      oracle = std::min(oracle, benchutil::EvalMae(name, ds, 24));
    }

    std::printf("%-18s %9.4f %9.4f %9.4f %9.4f\n", ds.name().c_str(),
                ens_mae, member_avg, global, oracle);
    sum_ens += ens_mae;
    sum_member_avg += member_avg;
    sum_global += global;
    sum_oracle += oracle;
    if (ens_mae <= member_avg) ++ens_beats_mean_member;
    if (ens_mae <= global) ++ens_beats_global_best;
  }

  double n = static_cast<double>(held_out.size());
  std::printf("\nmean MAE:  ensemble=%.4f  avg-member=%.4f  "
              "global-best=%.4f  oracle=%.4f\n",
              sum_ens / n, sum_member_avg / n, sum_global / n,
              sum_oracle / n);
  std::printf("ensemble <= avg member on %zu/%zu datasets; "
              "<= global-best on %zu/%zu\n",
              ens_beats_mean_member, held_out.size(), ens_beats_global_best,
              held_out.size());
  std::printf("shape check (paper Fig. 2 claim): %s\n",
              2 * ens_beats_mean_member >= held_out.size()
                  ? "HOLDS — the automated ensemble improves on its members"
                  : "DOES NOT HOLD");
  return 0;
}
