#include "tsdata/characteristics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "test_util.h"
#include "tsdata/generator.h"

namespace easytime::tsdata {
namespace {

using ::easytime::testing::MakeLinearSeries;
using ::easytime::testing::MakeSeasonalSeries;

TEST(DetectPeriod, FindsSinePeriod) {
  auto v = MakeSeasonalSeries(480, 24, 5.0, 0.0, 0.1);
  size_t p = DetectPeriod(v);
  EXPECT_NEAR(static_cast<double>(p), 24.0, 2.0);
}

TEST(DetectPeriod, RobustToTrend) {
  auto v = MakeSeasonalSeries(480, 12, 4.0, 0.5, 0.1);
  size_t p = DetectPeriod(v);
  EXPECT_NEAR(static_cast<double>(p), 12.0, 2.0);
}

TEST(DetectPeriod, NoPeriodInNoise) {
  Rng rng(3);
  std::vector<double> v(300);
  for (auto& x : v) x = rng.Gaussian();
  size_t p = DetectPeriod(v);
  // White noise should give no (or a spurious weak) period; accept 0 or a
  // value whose ACF is weak — here we require 0 most of the time.
  EXPECT_EQ(p, 0u);
}

TEST(DetectPeriod, TooShortReturnsZero) {
  EXPECT_EQ(DetectPeriod({1, 2, 3}), 0u);
}

TEST(SeasonalStrength, HighForCleanSine) {
  auto v = MakeSeasonalSeries(240, 24, 5.0, 0.0, 0.05);
  EXPECT_GT(SeasonalStrength(v, 24), 0.85);
}

TEST(SeasonalStrength, LowForNoise) {
  Rng rng(5);
  std::vector<double> v(240);
  for (auto& x : v) x = rng.Gaussian();
  EXPECT_LT(SeasonalStrength(v, 24), 0.4);
}

TEST(SeasonalStrength, ZeroWithoutPeriod) {
  auto v = MakeSeasonalSeries(100, 10);
  EXPECT_DOUBLE_EQ(SeasonalStrength(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(SeasonalStrength(v, 60), 0.0);  // < 2 full cycles
}

TEST(TrendStrength, HighForLine) {
  auto v = MakeLinearSeries(200, 1.0, 0.5);
  EXPECT_GT(TrendStrength(v, 0), 0.95);
}

TEST(TrendStrength, LowForStationaryNoise) {
  Rng rng(7);
  std::vector<double> v(200);
  for (auto& x : v) x = rng.Gaussian();
  EXPECT_LT(TrendStrength(v, 0), 0.5);
}

TEST(Adf, StationaryVsRandomWalk) {
  Rng rng(11);
  std::vector<double> stationary(400), walk(400);
  double acc = 0.0;
  double prev = 0.0;
  for (size_t i = 0; i < 400; ++i) {
    prev = 0.5 * prev + rng.Gaussian();  // AR(1), phi=0.5: stationary
    stationary[i] = prev;
    acc += rng.Gaussian();
    walk[i] = acc;
  }
  double adf_stat = AdfStatistic(stationary);
  double adf_walk = AdfStatistic(walk);
  EXPECT_LT(adf_stat, -4.0);      // strongly rejects the unit root
  EXPECT_LT(adf_stat, adf_walk);  // walk looks much less stationary
  EXPECT_GT(StationarityScore(adf_stat), 0.9);
  EXPECT_GT(StationarityScore(adf_stat), StationarityScore(adf_walk));
}

TEST(StationarityScore, ClampsToUnitInterval) {
  EXPECT_DOUBLE_EQ(StationarityScore(-10.0), 1.0);
  EXPECT_DOUBLE_EQ(StationarityScore(0.0), 0.0);
}

TEST(ShiftingScore, DetectsLevelShift) {
  std::vector<double> v(200, 1.0);
  Rng rng(13);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = (i < 100 ? 0.0 : 8.0) + rng.Gaussian(0.0, 0.5);
  }
  EXPECT_GT(ShiftingScore(v), 0.7);
}

TEST(ShiftingScore, LowWithoutShift) {
  Rng rng(17);
  std::vector<double> v(200);
  for (auto& x : v) x = rng.Gaussian();
  EXPECT_LT(ShiftingScore(v), 0.4);
}

TEST(TransitionScore, DetectsSlopeReversals) {
  // Zig-zag macro pattern: up, down, up — clear regime transitions.
  std::vector<double> v;
  for (int seg = 0; seg < 6; ++seg) {
    for (int i = 0; i < 40; ++i) {
      double slope = seg % 2 == 0 ? 1.0 : -1.0;
      v.push_back(slope * i);
    }
  }
  double zigzag = TransitionScore(v);
  double line = TransitionScore(
      ::easytime::testing::MakeLinearSeries(240, 0.0, 1.0));
  EXPECT_GT(zigzag, 0.15);
  EXPECT_GT(zigzag, line + 0.1);
}

TEST(TransitionScore, LowForSmoothLine) {
  auto v = MakeLinearSeries(300, 0.0, 1.0);
  EXPECT_LT(TransitionScore(v), 0.2);
}

TEST(ChannelCorrelation, ControlledByGenerator) {
  GeneratorConfig cfg;
  cfg.name = "corr_test";
  cfg.length = 400;
  cfg.num_channels = 4;
  cfg.noise_std = 1.0;
  cfg.seed = 21;

  cfg.channel_correlation = 0.9;
  double high = ChannelCorrelation(GenerateDataset(cfg));
  cfg.channel_correlation = 0.05;
  cfg.seed = 22;
  double low = ChannelCorrelation(GenerateDataset(cfg));
  EXPECT_GT(high, low);
  EXPECT_GT(high, 0.5);
  EXPECT_LT(low, 0.5);
}

TEST(ChannelCorrelation, ZeroForUnivariate) {
  Dataset ds("u");
  (void)ds.AddChannel(Series("a", MakeLinearSeries(50, 0, 1)));
  EXPECT_DOUBLE_EQ(ChannelCorrelation(ds), 0.0);
}

TEST(ExtractCharacteristics, SeasonalTrendingSeries) {
  auto v = MakeSeasonalSeries(480, 24, 5.0, 0.08, 0.3);
  Characteristics ch = ExtractCharacteristics(v);
  EXPECT_TRUE(ch.has_seasonality());
  EXPECT_TRUE(ch.has_trend());
  EXPECT_NEAR(static_cast<double>(ch.period), 24.0, 3.0);
  EXPECT_FALSE(ch.Describe().empty());
}

TEST(FeatureVector, FixedDimensionAndFiniteValues) {
  auto v = MakeSeasonalSeries(300, 12, 3.0, 0.02, 0.5);
  auto f = CharacteristicFeatureVector(v);
  EXPECT_EQ(f.size(), kCharacteristicFeatureDim);
  for (double x : f) EXPECT_TRUE(std::isfinite(x));
}

}  // namespace
}  // namespace easytime::tsdata
