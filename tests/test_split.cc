#include "tsdata/split.h"

#include <gtest/gtest.h>

namespace easytime::tsdata {
namespace {

TEST(ComputeSplit, DefaultFractions) {
  auto b = ComputeSplit(100, SplitSpec{});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->train_end, 70u);
  EXPECT_EQ(b->val_end, 80u);
  EXPECT_EQ(b->n, 100u);
  EXPECT_EQ(b->train_size(), 70u);
  EXPECT_EQ(b->val_size(), 10u);
  EXPECT_EQ(b->test_size(), 20u);
}

TEST(ComputeSplit, NoValidation) {
  SplitSpec spec{0.8, 0.0, 0.2};
  auto b = ComputeSplit(50, spec);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->train_end, 40u);
  EXPECT_EQ(b->val_end, 40u);
  EXPECT_EQ(b->test_size(), 10u);
}

TEST(ComputeSplit, TrainAlwaysNonEmpty) {
  SplitSpec spec{0.01, 0.1, 0.89};
  auto b = ComputeSplit(5, spec);
  ASSERT_TRUE(b.ok());
  EXPECT_GE(b->train_size(), 1u);
}

TEST(ComputeSplit, Validation) {
  EXPECT_FALSE(ComputeSplit(0, SplitSpec{}).ok());
  EXPECT_FALSE(ComputeSplit(10, SplitSpec{0.0, 0.5, 0.5}).ok());
  EXPECT_FALSE(ComputeSplit(10, SplitSpec{1.5, 0.0, 0.0}).ok());
  EXPECT_FALSE(ComputeSplit(10, SplitSpec{0.7, 0.4, 0.2}).ok());  // sum > 1
  EXPECT_FALSE(ComputeSplit(10, SplitSpec{0.7, -0.1, 0.2}).ok());
}

TEST(ApplySplit, SegmentsAreChronological) {
  std::vector<double> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto b = ComputeSplit(v.size(), SplitSpec{0.6, 0.2, 0.2}).ValueOrDie();
  SplitView view = ApplySplit(v, b);
  EXPECT_EQ(view.train, (std::vector<double>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(view.val, (std::vector<double>{6, 7}));
  EXPECT_EQ(view.test, (std::vector<double>{8, 9}));
}

TEST(ApplySplit, ReassemblesOriginal) {
  std::vector<double> v(37);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  auto b = ComputeSplit(v.size(), SplitSpec{}).ValueOrDie();
  SplitView view = ApplySplit(v, b);
  std::vector<double> joined = view.train;
  joined.insert(joined.end(), view.val.begin(), view.val.end());
  joined.insert(joined.end(), view.test.begin(), view.test.end());
  EXPECT_EQ(joined, v);
}

}  // namespace
}  // namespace easytime::tsdata
