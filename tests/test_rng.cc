#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace easytime {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    double v = rng.Uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformInt(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values hit
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
  EXPECT_EQ(rng.UniformInt(5, 2), 5);  // degenerate clamps to lo
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, GaussianScaled) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.15);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
  std::vector<int> empty;
  rng.Shuffle(&empty);  // must not crash
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(19);
  auto idx = rng.SampleIndices(10, 4);
  EXPECT_EQ(idx.size(), 4u);
  std::set<size_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 4u);
  for (size_t i : idx) EXPECT_LT(i, 10u);
  // k > n clamps.
  EXPECT_EQ(rng.SampleIndices(3, 10).size(), 3u);
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(23);
  Rng fork1 = a.Fork();
  Rng b(23);
  Rng fork2 = b.Fork();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fork1.Next(), fork2.Next());
}

}  // namespace
}  // namespace easytime
