#include "common/fault.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "core/easytime.h"
#include "serve/server.h"

namespace easytime {
namespace {

/// A function with a fault point, the way production code uses the macro.
Status GuardedOperation() {
  EASYTIME_FAULT_POINT("fault_test.op");
  return Status::OK();
}

Result<double> GuardedResultOperation() {
  EASYTIME_FAULT_POINT("fault_test.result_op");
  return 42.0;
}

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Global().DisarmAll();
    FaultRegistry::Global().Reseed(1234);
  }
  void TearDown() override { FaultRegistry::Global().DisarmAll(); }
};

TEST_F(FaultTest, UnarmedPointPassesThrough) {
  ASSERT_FALSE(FaultRegistry::AnyArmed());
  EXPECT_TRUE(GuardedOperation().ok());
  auto r = GuardedResultOperation();
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 42.0);
  // Unarmed points never even reach the registry: no stats accumulate.
  EXPECT_EQ(FaultRegistry::Global().PointStats("fault_test.op").passes, 0u);
}

TEST_F(FaultTest, ArmedErrorFaultInjects) {
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.code = StatusCode::kUnavailable;
  spec.rate = 1.0;
  ASSERT_TRUE(FaultRegistry::Global().Arm("fault_test.op", spec).ok());
  EXPECT_TRUE(FaultRegistry::AnyArmed());

  Status s = GuardedOperation();
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_NE(s.message().find("fault_test.op"), std::string::npos);

  auto stats = FaultRegistry::Global().PointStats("fault_test.op");
  EXPECT_EQ(stats.passes, 1u);
  EXPECT_EQ(stats.triggers, 1u);

  // Disarm restores normal behaviour (and the hot-path gate drops).
  EXPECT_TRUE(FaultRegistry::Global().Disarm("fault_test.op"));
  EXPECT_FALSE(FaultRegistry::AnyArmed());
  EXPECT_TRUE(GuardedOperation().ok());
}

TEST_F(FaultTest, ResultReturningFunctionPropagatesInjectedStatus) {
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.message = "simulated outage";
  ASSERT_TRUE(FaultRegistry::Global().Arm("fault_test.result_op", spec).ok());
  auto r = GuardedResultOperation();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "simulated outage");
}

TEST_F(FaultTest, RateZeroNeverFiresButCountsPasses) {
  FaultSpec spec;
  spec.rate = 0.0;
  ASSERT_TRUE(FaultRegistry::Global().Arm("fault_test.op", spec).ok());
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(GuardedOperation().ok());
  auto stats = FaultRegistry::Global().PointStats("fault_test.op");
  EXPECT_EQ(stats.passes, 50u);
  EXPECT_EQ(stats.triggers, 0u);
}

TEST_F(FaultTest, FractionalRateFiresApproximatelyThatOften) {
  FaultSpec spec;
  spec.rate = 0.3;
  ASSERT_TRUE(FaultRegistry::Global().Arm("fault_test.op", spec).ok());
  int failures = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!GuardedOperation().ok()) ++failures;
  }
  // 1000 Bernoulli(0.3) trials: [200, 400] is ~8 sigma wide.
  EXPECT_GT(failures, 200);
  EXPECT_LT(failures, 400);
}

TEST_F(FaultTest, MaxTriggersBudgetExhausts) {
  FaultSpec spec;
  spec.max_triggers = 2;
  ASSERT_TRUE(FaultRegistry::Global().Arm("fault_test.op", spec).ok());
  EXPECT_FALSE(GuardedOperation().ok());
  EXPECT_FALSE(GuardedOperation().ok());
  EXPECT_TRUE(GuardedOperation().ok());  // budget spent
  EXPECT_TRUE(GuardedOperation().ok());
  auto stats = FaultRegistry::Global().PointStats("fault_test.op");
  EXPECT_EQ(stats.triggers, 2u);
  EXPECT_EQ(stats.passes, 4u);
}

TEST_F(FaultTest, DelayFaultSleepsThenProceeds) {
  FaultSpec spec;
  spec.kind = FaultKind::kDelay;
  spec.delay_ms = 30.0;
  ASSERT_TRUE(FaultRegistry::Global().Arm("fault_test.op", spec).ok());
  auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(GuardedOperation().ok());  // delay does not fail the call
  auto elapsed = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_GE(elapsed, 25.0);
}

TEST_F(FaultTest, NanFaultSetsCorruptFlag) {
  FaultSpec spec;
  spec.kind = FaultKind::kNan;
  ASSERT_TRUE(FaultRegistry::Global().Arm("fault_test.payload", spec).ok());
  bool corrupt = false;
  Status s = FaultRegistry::Global().Check("fault_test.payload", &corrupt);
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(corrupt);
  // Callers that cannot corrupt pass nullptr and are unaffected.
  EXPECT_TRUE(FaultRegistry::Global().Check("fault_test.payload").ok());
}

TEST_F(FaultTest, ArmRejectsBadRates) {
  FaultSpec spec;
  spec.rate = 1.5;
  EXPECT_FALSE(FaultRegistry::Global().Arm("x", spec).ok());
  spec.rate = -0.1;
  EXPECT_FALSE(FaultRegistry::Global().Arm("x", spec).ok());
  spec.rate = 0.5;
  spec.delay_ms = -1.0;
  spec.kind = FaultKind::kDelay;
  EXPECT_FALSE(FaultRegistry::Global().Arm("x", spec).ok());
  EXPECT_FALSE(FaultRegistry::AnyArmed());
}

TEST_F(FaultTest, ParseSpecListAcceptsTheDocumentedSyntax) {
  auto parsed = FaultRegistry::ParseSpecList(
      "serve.execute:unavailable:0.1,pipeline.pair:delay:0.5:20,"
      "method.forecast.payload:nan:1,knowledge.export:ioerror:1:3");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 4u);

  EXPECT_EQ((*parsed)[0].first, "serve.execute");
  EXPECT_EQ((*parsed)[0].second.kind, FaultKind::kError);
  EXPECT_EQ((*parsed)[0].second.code, StatusCode::kUnavailable);
  EXPECT_DOUBLE_EQ((*parsed)[0].second.rate, 0.1);

  EXPECT_EQ((*parsed)[1].second.kind, FaultKind::kDelay);
  EXPECT_DOUBLE_EQ((*parsed)[1].second.delay_ms, 20.0);

  EXPECT_EQ((*parsed)[2].second.kind, FaultKind::kNan);

  EXPECT_EQ((*parsed)[3].second.code, StatusCode::kIOError);
  EXPECT_EQ((*parsed)[3].second.max_triggers, 3);
}

TEST_F(FaultTest, ParseSpecListRejectsMalformedEntries) {
  EXPECT_FALSE(FaultRegistry::ParseSpecList("no_kind_or_rate").ok());
  EXPECT_FALSE(FaultRegistry::ParseSpecList("p:unknown_kind:1").ok());
  EXPECT_FALSE(FaultRegistry::ParseSpecList("p:error:2.0").ok());
  EXPECT_FALSE(FaultRegistry::ParseSpecList("p:error:abc").ok());
  EXPECT_FALSE(FaultRegistry::ParseSpecList(":error:1").ok());
}

TEST_F(FaultTest, ArmFromSpecArmsEveryEntry) {
  ASSERT_TRUE(FaultRegistry::Global()
                  .ArmFromSpec("a.one:error:1,b.two:delay:0.5:10")
                  .ok());
  auto armed = FaultRegistry::Global().ArmedPoints();
  ASSERT_EQ(armed.size(), 2u);
  EXPECT_TRUE(FaultRegistry::AnyArmed());
  FaultRegistry::Global().DisarmAll();
  EXPECT_TRUE(FaultRegistry::Global().ArmedPoints().empty());
  EXPECT_FALSE(FaultRegistry::AnyArmed());
}

TEST_F(FaultTest, ReseedMakesProbabilisticRunsReproducible) {
  FaultSpec spec;
  spec.rate = 0.5;
  ASSERT_TRUE(FaultRegistry::Global().Arm("fault_test.op", spec).ok());

  auto run = [&]() {
    FaultRegistry::Global().Reseed(99);
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) outcomes.push_back(GuardedOperation().ok());
    return outcomes;
  };
  EXPECT_EQ(run(), run());
}

// The unarmed hot path must stay cheap enough that leaving fault points in
// production code is free: sanity-bound a million unarmed checks.
TEST_F(FaultTest, UnarmedOverheadIsNegligible) {
  ASSERT_FALSE(FaultRegistry::AnyArmed());
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 1000000; ++i) {
    Status s = GuardedOperation();
    ASSERT_TRUE(s.ok());
  }
  auto elapsed = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  // Generous bound (~50ns/check) — a mutex or map lookup on the hot path
  // would blow well past it.
  EXPECT_LT(elapsed, 0.5);
}

// ------------------------------------------- SQL / QA endpoint fault points
//
// The serving layer gates the "ask" and "sql" endpoints ("serve.ask",
// "serve.sql"), and the knowledge query core gates SELECT execution itself
// ("sql.execute") — the path both endpoints funnel through. These tests pin
// down that each gate fires on its own endpoint, leaves its neighbours
// untouched, and always surfaces as a clean error status.

class EndpointFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::EasyTime::Options opt;
    opt.suite.univariate_per_domain = 1;
    opt.suite.multivariate_total = 1;
    opt.suite.min_length = 180;
    opt.suite.max_length = 220;
    opt.seed_eval.horizon = 12;
    opt.seed_eval.metrics = {"mae", "rmse"};
    opt.seed_methods = {"naive", "seasonal_naive", "theta", "ses", "drift"};
    opt.ensemble.top_k = 2;
    opt.ensemble.ts2vec.epochs = 3;
    opt.ensemble.ts2vec.repr_dim = 8;
    opt.ensemble.ts2vec.hidden_dim = 10;
    opt.ensemble.ts2vec.depth = 2;
    opt.ensemble.classifier.epochs = 80;
    auto system = core::EasyTime::Create(opt);
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    system_ = system->release();
    server_ = new serve::ForecastServer(system_);
    server_->Start();
  }
  static void TearDownTestSuite() {
    delete server_;
    server_ = nullptr;
    delete system_;
    system_ = nullptr;
  }
  void SetUp() override {
    FaultRegistry::Global().DisarmAll();
    FaultRegistry::Global().Reseed(1234);
  }
  void TearDown() override { FaultRegistry::Global().DisarmAll(); }

  static Result<Json> Ask() {
    Json p = Json::Object();
    p.Set("question", "What is the average mae of theta?");
    return server_->Call("ask", p);
  }
  static Result<Json> Sql() {
    Json p = Json::Object();
    p.Set("query", "SELECT method FROM results LIMIT 1");
    return server_->Call("sql", p);
  }
  static void ArmError(const std::string& point) {
    FaultSpec spec;
    spec.kind = FaultKind::kError;
    spec.code = StatusCode::kUnavailable;
    spec.rate = 1.0;
    ASSERT_TRUE(FaultRegistry::Global().Arm(point, spec).ok());
  }

  static core::EasyTime* system_;
  static serve::ForecastServer* server_;
};

core::EasyTime* EndpointFaultTest::system_ = nullptr;
serve::ForecastServer* EndpointFaultTest::server_ = nullptr;

TEST_F(EndpointFaultTest, AskGateFailsOnlyTheAskEndpoint) {
  ArmError("serve.ask");
  auto ask = Ask();
  ASSERT_FALSE(ask.ok());
  EXPECT_TRUE(ask.status().IsUnavailable());
  EXPECT_NE(ask.status().message().find("serve.ask"), std::string::npos);

  EXPECT_TRUE(Sql().ok()) << "the sql endpoint must not share the ask gate";
  EXPECT_TRUE(server_->Call("ping", Json::Object()).ok());

  FaultRegistry::Global().DisarmAll();
  EXPECT_TRUE(Ask().ok()) << "disarming restores the endpoint";
}

TEST_F(EndpointFaultTest, SqlGateFailsOnlyTheSqlEndpoint) {
  ArmError("serve.sql");
  auto sql = Sql();
  ASSERT_FALSE(sql.ok());
  EXPECT_TRUE(sql.status().IsUnavailable());
  EXPECT_NE(sql.status().message().find("serve.sql"), std::string::npos);

  EXPECT_TRUE(Ask().ok()) << "the ask endpoint must not share the sql gate";

  FaultRegistry::Global().DisarmAll();
  EXPECT_TRUE(Sql().ok());
}

TEST_F(EndpointFaultTest, QueryCoreGateCoversBothSqlAndAskPaths) {
  ArmError("sql.execute");
  EXPECT_FALSE(Sql().ok()) << "sql funnels through the SELECT core";
  EXPECT_FALSE(Ask().ok()) << "ask's generated SELECT funnels through too";
  auto stats = FaultRegistry::Global().PointStats("sql.execute");
  EXPECT_GE(stats.triggers, 2u);
  EXPECT_TRUE(server_->Call("ping", Json::Object()).ok())
      << "endpoints off the knowledge path are unaffected";

  FaultRegistry::Global().DisarmAll();
  EXPECT_TRUE(Sql().ok());
  EXPECT_TRUE(Ask().ok());
}

TEST_F(EndpointFaultTest, DelayFaultSlowsTheSqlEndpointWithoutFailingIt) {
  FaultSpec spec;
  spec.kind = FaultKind::kDelay;
  spec.delay_ms = 30.0;
  ASSERT_TRUE(FaultRegistry::Global().Arm("serve.sql", spec).ok());
  auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(Sql().ok());
  auto elapsed = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_GE(elapsed, 25.0);
}

}  // namespace
}  // namespace easytime
