#pragma once

/// \file socket_test_util.h
/// \brief Raw loopback-socket helpers for the serving front-end tests
/// (test_event_loop, test_protocol_fuzz). Everything is poll()-bounded so a
/// server bug shows up as a test failure, never as a hung test run.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>

namespace easytime::serve::testutil {

/// Blocking connect to 127.0.0.1:port. Returns the fd, or -1 on failure.
inline int ConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Sends all of \p data (blocking socket), riding out EINTR/short writes.
inline bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// \brief Poll-bounded line reader; leftover bytes carry across calls.
struct LineReader {
  LineReader() = default;
  explicit LineReader(int fd_in) : fd(fd_in) {}

  int fd = -1;
  std::string buf;
  bool eof = false;

  /// Next '\n'-terminated line (without the newline), or nullopt on
  /// timeout / EOF / socket error.
  std::optional<std::string> Next(int timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      size_t nl = buf.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        return line;
      }
      if (eof) return std::nullopt;
      auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                           deadline - std::chrono::steady_clock::now())
                           .count();
      if (remaining <= 0) return std::nullopt;
      pollfd p{fd, POLLIN, 0};
      int pr = ::poll(&p, 1, static_cast<int>(remaining));
      if (pr < 0) {
        if (errno == EINTR) continue;
        return std::nullopt;
      }
      if (pr == 0) return std::nullopt;
      char chunk[4096];
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buf.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        eof = true;
        continue;  // drain whatever is already buffered
      }
      if (errno == EINTR) continue;
      return std::nullopt;
    }
  }
};

/// True when the peer closes the connection within \p timeout_ms (any bytes
/// received in the meantime are discarded).
inline bool WaitForEof(int fd, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                         deadline - std::chrono::steady_clock::now())
                         .count();
    if (remaining <= 0) return false;
    pollfd p{fd, POLLIN, 0};
    int pr = ::poll(&p, 1, static_cast<int>(remaining));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (pr == 0) return false;
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) return true;
    if (n < 0 && errno != EINTR) return false;
  }
}

/// Switches \p fd to non-blocking mode (for the fuzz harness, which must
/// never park itself inside send()).
inline bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace easytime::serve::testutil
