// Sharded serving tier tests (DESIGN.md §14): consistent-hash placement
// (stable owners, bounded-load overflow), frozen-store catch-up with the
// torn-tail guard, worker supervision, and the full router integration —
// routing, fan-out merges, at-most-once appends, and the SIGKILL failover
// that promotes a replica without losing an acked append.
//
// The integration tests spawn real easytime_shard_worker processes (path
// baked in via EASYTIME_WORKER_BIN); worker bring-up seeds a small suite,
// so those tests are seconds-not-milliseconds and assert a lot per cluster.

#include <gtest/gtest.h>

#include <signal.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/replicator.h"
#include "cluster/router.h"
#include "cluster/shard_map.h"
#include "cluster/supervisor.h"
#include "common/json.h"
#include "serve/client.h"
#include "store/wal.h"

namespace easytime::cluster {
namespace {

namespace fs = std::filesystem;
using easytime::Json;

std::string TestDir(const std::string& leaf) {
  std::string dir =
      (fs::path(::testing::TempDir()) / ("easytime_cluster_" + leaf)).string();
  fs::remove_all(dir);
  return dir;
}

// ----- shard map ------------------------------------------------------------

TEST(Fnv1a64Test, MatchesReferenceVectorsAndIsStable) {
  // Published FNV-1a 64-bit vectors.
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(Fnv1a64("a"), 12638187200555641996ULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
  EXPECT_EQ(Fnv1a64("traffic_u0"), Fnv1a64(std::string("traffic_u0")));
}

TEST(ShardMapTest, OwnerIsStableAndIndependentOfInsertionOrder) {
  ShardMap a;
  ShardMap b;
  a.AddShard("shard-0");
  a.AddShard("shard-1");
  a.AddShard("shard-2");
  b.AddShard("shard-2");
  b.AddShard("shard-0");
  b.AddShard("shard-1");
  for (int i = 0; i < 200; ++i) {
    const std::string key = "dataset_" + std::to_string(i);
    auto oa = a.Owner(key);
    auto ob = b.Owner(key);
    ASSERT_TRUE(oa.ok());
    ASSERT_TRUE(ob.ok());
    EXPECT_EQ(*oa, *ob) << key;
  }
}

TEST(ShardMapTest, OwnerFailsOnEmptyRingAndDistributesOtherwise) {
  ShardMap map;
  EXPECT_FALSE(map.Owner("anything").ok());
  map.AddShard("shard-0");
  map.AddShard("shard-1");
  map.AddShard("shard-2");
  std::map<std::string, int> counts;
  for (int i = 0; i < 600; ++i) {
    auto owner = map.Owner("key_" + std::to_string(i));
    ASSERT_TRUE(owner.ok());
    counts[*owner]++;
  }
  // With 64 vnodes each, every shard owns a meaningful slice.
  EXPECT_EQ(counts.size(), 3u);
  for (const auto& [id, n] : counts) EXPECT_GT(n, 60) << id;
}

TEST(ShardMapTest, RemoveShardOnlyMovesTheRemovedShardsKeys) {
  ShardMap map;
  map.AddShard("shard-0");
  map.AddShard("shard-1");
  map.AddShard("shard-2");
  std::map<std::string, std::string> before;
  for (int i = 0; i < 300; ++i) {
    const std::string key = "key_" + std::to_string(i);
    before[key] = *map.Owner(key);
  }
  map.RemoveShard("shard-1");
  for (const auto& [key, owner] : before) {
    auto now = map.Owner(key);
    ASSERT_TRUE(now.ok());
    if (owner != "shard-1") {
      EXPECT_EQ(*now, owner) << key;  // consistent hashing: others stay put
    } else {
      EXPECT_NE(*now, "shard-1") << key;
    }
  }
}

TEST(ShardMapTest, BoundedLoadPickRoutesAroundSaturatedShards) {
  ShardMap map;
  map.AddShard("shard-0");
  map.AddShard("shard-1");
  map.AddShard("shard-2");

  // Zero load everywhere: Pick agrees with Owner (affinity preserved).
  std::map<std::string, size_t> idle = {
      {"shard-0", 0}, {"shard-1", 0}, {"shard-2", 0}};
  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(*map.Pick(key, idle), *map.Owner(key)) << key;
  }

  // One shard saturated: none of its keys stay; other shards keep theirs.
  // total = 90, ceiling = ceil(1.25 * 91 / 3) = 38.
  std::map<std::string, size_t> hot = {
      {"shard-0", 90}, {"shard-1", 0}, {"shard-2", 0}};
  for (int i = 0; i < 200; ++i) {
    const std::string key = "k" + std::to_string(i);
    auto picked = map.Pick(key, hot);
    ASSERT_TRUE(picked.ok());
    EXPECT_NE(*picked, "shard-0") << key;
    if (*map.Owner(key) != "shard-0") {
      EXPECT_EQ(*picked, *map.Owner(key)) << key;
    }
  }

  // Everyone saturated: somebody must do the work — fall back to the owner.
  std::map<std::string, size_t> slammed = {
      {"shard-0", 500}, {"shard-1", 500}, {"shard-2", 500}};
  for (int i = 0; i < 50; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(*map.Pick(key, slammed), *map.Owner(key)) << key;
  }
}

// ----- frozen-store catch-up ------------------------------------------------

TEST(SyncFrozenStoreDirTest, CopiesValidRecordsAndCutsTornTail) {
  const std::string src = TestDir("sync_src");
  const std::string dst = TestDir("sync_dst");
  {
    store::WalOptions wopt;
    wopt.segment_bytes = 256;  // force several sealed segments
    auto wal = store::Wal::Open(src, wopt, 0, nullptr);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (int i = 0; i < 40; ++i) {
      auto seq = (*wal)->Append("record-" + std::to_string(i));
      ASSERT_TRUE(seq.ok());
    }
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  // Simulate death mid-append: garbage on the active segment's tail.
  {
    auto segments = store::ListWalSegments(src);
    ASSERT_TRUE(segments.ok());
    ASSERT_GT(segments->size(), 1u);
    std::ofstream out(segments->back().path,
                      std::ios::binary | std::ios::app);
    out << "\x13\x37garbage torn tail";
  }

  auto report = SyncFrozenStoreDir(src, dst);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->last_seq, 40u);
  EXPECT_GT(report->segments_copied, 1u);

  // The copy recovers to exactly the 40 acked records, torn tail gone.
  std::vector<uint64_t> seqs;
  auto wal = store::Wal::Open(
      dst, store::WalOptions(), 0,
      [&](uint64_t seq, std::string&&) { seqs.push_back(seq); });
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_EQ(seqs.size(), 40u);
  EXPECT_EQ(seqs.front(), 1u);
  EXPECT_EQ(seqs.back(), 40u);
}

TEST(SyncFrozenStoreDirTest, MissingSourceIsEmptyNotError) {
  const std::string dst = TestDir("sync_nosrc_dst");
  auto report = SyncFrozenStoreDir(TestDir("sync_nosrc_src"), dst);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->segments_copied, 0u);
  EXPECT_EQ(report->last_seq, 0u);
}

TEST(WalSegmentImportTest, StaleReshipCannotRollBackDurableRecords) {
  const std::string src = TestDir("reship_src");
  const std::string dst = TestDir("reship_dst");
  std::string file;
  {
    store::WalOptions wopt;
    wopt.segment_bytes = 1 << 20;
    auto wal = store::Wal::Open(src, wopt, 0, nullptr);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 10; ++i) ASSERT_TRUE((*wal)->Append("r").ok());
    ASSERT_TRUE((*wal)->Sync().ok());
    auto segments = store::ListWalSegments(src);
    ASSERT_TRUE(segments.ok());
    ASSERT_EQ(segments->size(), 1u);
    file = segments->front().file;
  }
  auto full = store::ExportWalSegment(src + "/" + file, file);
  ASSERT_TRUE(full.ok());
  auto imported = store::ImportWalSegment(dst, file, *full);
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ(imported->records, 10u);

  // A stale re-ship carrying fewer valid records must be rejected.
  const std::string stale = full->substr(0, full->size() - 10);
  auto rejected = store::ImportWalSegment(dst, file, stale);
  EXPECT_FALSE(rejected.ok());
  auto still = store::ExportWalSegment(dst + "/" + file, file);
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(still->size(), full->size());
}

// ----- supervisor -----------------------------------------------------------

TEST(SupervisorTest, SpawnFailsCleanlyOnMissingBinaryOrSilentWorker) {
  const std::string dir = TestDir("supervisor_bad");
  fs::create_directories(dir);
  Supervisor::Options opt;
  opt.spawn_timeout_ms = 1500.0;
  Supervisor supervisor(opt);

  WorkerSpec missing;
  missing.name = "missing";
  missing.argv = {dir + "/does-not-exist"};
  missing.port_file = dir + "/missing.port";
  EXPECT_FALSE(supervisor.Spawn(missing).ok());

  // A worker that runs but never publishes its port times out.
  WorkerSpec silent;
  silent.name = "silent";
  silent.argv = {"/bin/sleep", "30"};
  silent.port_file = dir + "/silent.port";
  auto spawned = supervisor.Spawn(silent);
  EXPECT_FALSE(spawned.ok());
}

TEST(SupervisorTest, SpawnReadsPortFileAndRestartBacksOff) {
  const std::string dir = TestDir("supervisor_ok");
  fs::create_directories(dir);
  // A stand-in worker: publish a port atomically, then sleep.
  const std::string script = dir + "/worker.sh";
  {
    std::ofstream out(script);
    // exec: the shell BECOMES the sleep, so Supervisor::Kill's signal hits
    // it — a forked sleep would survive and hold the test's output pipe.
    out << "#!/bin/sh\nprintf '4242\\n' > \"$1.tmp\"\nmv \"$1.tmp\" \"$1\"\n"
           "exec sleep 60\n";
  }
  fs::permissions(script, fs::perms::owner_all);

  Supervisor::Options opt;
  opt.spawn_timeout_ms = 5000.0;
  opt.restart_backoff_ms = 5000.0;  // wide window so the test never races it
  Supervisor supervisor(opt);
  WorkerSpec spec;
  spec.name = "w";
  spec.argv = {"/bin/sh", script, dir + "/w.port"};
  spec.port_file = dir + "/w.port";
  auto port = supervisor.Spawn(spec);
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  EXPECT_EQ(*port, 4242);
  EXPECT_TRUE(supervisor.Alive("w"));
  EXPECT_EQ(supervisor.PortOf("w"), 4242);

  auto wait_dead = [&] {
    for (int i = 0; i < 200 && supervisor.Alive("w"); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_FALSE(supervisor.Alive("w"));
  };

  // Restarting a live worker is refused.
  auto live = supervisor.Restart("w");
  EXPECT_FALSE(live.ok());

  // The first restart after a crash is immediate (a long-lived worker dying
  // once is not a crash loop)…
  ASSERT_TRUE(supervisor.Kill("w", SIGKILL).ok());
  wait_dead();
  auto restarted = supervisor.Restart("w");
  ASSERT_TRUE(restarted.ok()) << restarted.status().ToString();
  EXPECT_EQ(*restarted, 4242);
  EXPECT_EQ(supervisor.Restarts("w"), 1u);

  // …but a second crash inside the backoff window is refused until it
  // elapses (Unavailable — the health loop just retries next tick).
  ASSERT_TRUE(supervisor.Kill("w", SIGKILL).ok());
  wait_dead();
  auto backing_off = supervisor.Restart("w");
  EXPECT_FALSE(backing_off.ok());
  EXPECT_TRUE(backing_off.status().IsUnavailable())
      << backing_off.status().ToString();
  EXPECT_EQ(supervisor.Restarts("w"), 1u);
  supervisor.Terminate("w", 100.0);
}

TEST(SupervisorTest, BringUpWaitDoesNotBlockOtherSupervisorCalls) {
  const std::string dir = TestDir("supervisor_nonblock");
  fs::create_directories(dir);
  // A stand-in worker that takes ~1 s to publish its port, like a shard
  // worker running its cold-store seeding evaluation.
  const std::string script = dir + "/slow.sh";
  {
    std::ofstream out(script);
    out << "#!/bin/sh\nsleep 1\nprintf '4243\\n' > \"$1.tmp\"\n"
           "mv \"$1.tmp\" \"$1\"\nexec sleep 60\n";
  }
  fs::permissions(script, fs::perms::owner_all);

  Supervisor::Options opt;
  opt.spawn_timeout_ms = 15000.0;
  Supervisor supervisor(opt);
  WorkerSpec spec;
  spec.name = "slow";
  spec.argv = {"/bin/sh", script, dir + "/slow.port"};
  spec.port_file = dir + "/slow.port";

  std::thread spawner([&] {
    auto port = supervisor.Spawn(spec);
    EXPECT_TRUE(port.ok()) << port.status().ToString();
  });
  // Let the spawner enter the bring-up wait, then hit the supervisor from
  // another thread: health-check-shaped calls must return promptly instead
  // of stalling behind the whole bring-up (the old single-lock behavior).
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(supervisor.Alive("slow"));
  EXPECT_EQ(supervisor.PortOf("slow"), 0) << "port not published yet";
  EXPECT_TRUE(supervisor.StatsJson().Get("slow").is_object());
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_LT(ms, 500.0);
  // A concurrent Spawn of the same name is refused, not doubled.
  EXPECT_FALSE(supervisor.Spawn(spec).ok());
  spawner.join();
  EXPECT_EQ(supervisor.PortOf("slow"), 4243);
  supervisor.Terminate("slow", 100.0);
}

// ----- router integration ---------------------------------------------------

Json ParseLine(const std::string& line) {
  auto parsed = Json::Parse(line);
  EXPECT_TRUE(parsed.ok()) << line;
  return parsed.ok() ? std::move(*parsed) : Json::Object();
}

Json Call(ClusterRouter& router, int64_t id, const std::string& endpoint,
          Json params) {
  Json req = Json::Object();
  req.Set("id", id);
  req.Set("endpoint", endpoint);
  req.Set("params", std::move(params));
  return ParseLine(router.HandleLine(req.Dump()));
}

Json AppendParams(const std::string& dataset,
                  const std::vector<double>& values) {
  Json params = Json::Object();
  params.Set("dataset", dataset);
  Json arr = Json::Array();
  for (double v : values) arr.Append(v);
  params.Set("values", std::move(arr));
  return params;
}

ClusterRouter::Options BaseOptions(const std::string& work_dir) {
  ClusterRouter::Options opt;
  opt.worker_binary = EASYTIME_WORKER_BIN;
  opt.work_dir = work_dir;
  opt.preset = "small";
  opt.health_interval_ms = 0.0;  // tests drive HealthCheckNow deterministically
  opt.ship_interval_ms = 0.0;    // and ShipOnce likewise
  opt.retry.max_attempts = 2;
  opt.retry.base_delay_ms = 2.0;
  return opt;
}

TEST(ClusterRouterTest, RoutesAppendsAndMergesFanOuts) {
  ClusterRouter::Options opt = BaseOptions(TestDir("router_route"));
  opt.shards = 2;
  opt.replicate = false;
  ClusterRouter router(opt);
  auto started = router.Start();
  ASSERT_TRUE(started.ok()) << started.ToString();

  // ping answers at the router, not a shard.
  Json pong = Call(router, 1, "ping", Json::Object());
  ASSERT_TRUE(pong.GetBool("ok", false)) << pong.Dump();
  EXPECT_EQ(pong.Get("result").GetString("scope", ""), "cluster");

  const std::string dataset = "traffic_u0";
  auto owner = router.OwnerShard(dataset);
  ASSERT_TRUE(owner.ok());
  const std::string other =
      *owner == "shard-0" ? "shard-1" : "shard-0";

  // Appends land on the owner, and only on the owner.
  Json appended =
      Call(router, 2, "append", AppendParams(dataset, {1.0, 2.0, 3.0}));
  ASSERT_TRUE(appended.GetBool("ok", false)) << appended.Dump();
  EXPECT_EQ(appended.Get("result").GetInt("appended", 0), 3);
  const int64_t length = appended.Get("result").GetInt("length", 0);
  EXPECT_GT(length, 3);

  // A dataset read routes to the same owner and sees the append.
  Json forecast_params = Json::Object();
  forecast_params.Set("dataset", dataset);
  forecast_params.Set("method", "ses");
  forecast_params.Set("horizon", int64_t{4});
  Json forecast = Call(router, 3, "forecast", forecast_params);
  ASSERT_TRUE(forecast.GetBool("ok", false)) << forecast.Dump();
  EXPECT_FALSE(forecast.Get("result").GetBool("degraded", false));

  // Cluster stats: merged scope, per-shard sections, router counters; the
  // owner (and only the owner) saw the append.
  Json stats = Call(router, 4, "stats", Json::Object());
  ASSERT_TRUE(stats.GetBool("ok", false)) << stats.Dump();
  const Json& result = stats.Get("result");
  EXPECT_EQ(result.GetString("scope", ""), "cluster");
  EXPECT_EQ(result.GetInt("shards_responding", 0), 2);
  EXPECT_GT(result.Get("totals").GetInt("requests", 0), 0);
  EXPECT_GT(result.Get("router").GetInt("requests_routed", 0), 0);
  const Json& per_shard = result.Get("shards");
  ASSERT_TRUE(per_shard.Get(*owner).is_object());
  ASSERT_TRUE(per_shard.Get(other).is_object());
  EXPECT_EQ(per_shard.Get(*owner).GetString("scope", ""), "process");
  EXPECT_EQ(per_shard.Get(*owner)
                .Get("endpoints")
                .Get("append")
                .GetInt("requests", 0),
            1);
  EXPECT_FALSE(per_shard.Get(other).Get("endpoints").Has("append"));

  // recommend merges every shard's ranking.
  Json rec_params = Json::Object();
  rec_params.Set("dataset", dataset);
  Json rec = Call(router, 5, "recommend", rec_params);
  ASSERT_TRUE(rec.GetBool("ok", false)) << rec.Dump();
  EXPECT_EQ(rec.Get("result").GetInt("shards_merged", 0), 2);
  ASSERT_GT(rec.Get("result").Get("recommendations").size(), 0u);
  EXPECT_NE(rec.Get("result")
                .Get("recommendations")
                .items()
                .front()
                .GetString("method", ""),
            "");

  // Unknown dataset: a clean NotFound from the owner, not degraded noise.
  Json missing_params = Json::Object();
  missing_params.Set("dataset", "no_such_dataset");
  missing_params.Set("method", "ses");
  missing_params.Set("horizon", int64_t{4});
  Json missing = Call(router, 6, "forecast", missing_params);
  ASSERT_FALSE(missing.GetBool("ok", true));
  EXPECT_EQ(missing.Get("error").GetString("code", ""), "NotFound");

  // An async job is stamped with its shard, and job_status finds it both
  // pinned and via the fan-out.
  auto eval_parsed = Json::Parse(R"({
    "datasets": ["traffic_u0"],
    "methods": ["naive"],
    "evaluation": {"strategy": "fixed", "horizon": 6, "metrics": ["mae"]}
  })");
  ASSERT_TRUE(eval_parsed.ok());
  Json eval_params = std::move(*eval_parsed);
  Json submitted = Call(router, 7, "evaluate", eval_params);
  ASSERT_TRUE(submitted.GetBool("ok", false)) << submitted.Dump();
  const std::string job_shard =
      submitted.Get("result").GetString("shard", "");
  const int64_t job = submitted.Get("result").GetInt("job", -1);
  EXPECT_TRUE(job_shard == "shard-0" || job_shard == "shard-1");
  ASSERT_GE(job, 0);
  Json status_params = Json::Object();
  status_params.Set("job", job);
  Json fanned = Call(router, 8, "job_status", status_params);
  EXPECT_TRUE(fanned.GetBool("ok", false)) << fanned.Dump();
  status_params.Set("shard", job_shard);
  Json pinned = Call(router, 9, "job_status", status_params);
  EXPECT_TRUE(pinned.GetBool("ok", false)) << pinned.Dump();

  // The TCP front-end speaks the same protocol.
  ASSERT_NE(router.port(), 0);
  serve::TcpClient client(router.port());
  auto net = client.Call("ping", Json::Object());
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  EXPECT_TRUE(net->GetBool("pong", false));

  router.Stop();
}

TEST(ClusterRouterTest, SigkillFailoverPromotesReplicaWithoutLosingAcks) {
  ClusterRouter::Options opt = BaseOptions(TestDir("router_failover"));
  opt.shards = 1;
  opt.replicate = true;
  ClusterRouter router(opt);
  auto started = router.Start();
  ASSERT_TRUE(started.ok()) << started.ToString();

  const std::string dataset = "traffic_u0";

  // Acked appends: these are durable the moment the ack arrives.
  Json first =
      Call(router, 1, "append", AppendParams(dataset, {1.0, 2.0, 3.0, 4.0}));
  ASSERT_TRUE(first.GetBool("ok", false)) << first.Dump();
  Json second =
      Call(router, 2, "append", AppendParams(dataset, {5.0, 6.0, 7.0}));
  ASSERT_TRUE(second.GetBool("ok", false)) << second.Dump();
  const int64_t acked_length = second.Get("result").GetInt("length", 0);
  ASSERT_GT(acked_length, 0);

  // Exercise the live shipping pass (sealed segments only — with a small
  // write volume there may be nothing sealed yet; lag metrics must appear
  // either way).
  router.replicator()->ShipOnce();
  Json ship = router.replicator()->StatsJson();
  ASSERT_TRUE(ship.Get("shard-0").is_object()) << ship.Dump();
  EXPECT_GE(ship.Get("shard-0").GetInt("primary_last_seq", -1), 0);

  // Kill -9 the primary mid-flight.
  ASSERT_TRUE(router.KillShardPrimary("shard-0", SIGKILL).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // While the shard is down: reads degrade to the replica (stale, tagged,
  // never wrong), appends refuse with Unavailable instead of lying.
  Json forecast_params = Json::Object();
  forecast_params.Set("dataset", dataset);
  forecast_params.Set("method", "ses");
  forecast_params.Set("horizon", int64_t{4});
  Json degraded = Call(router, 3, "forecast", forecast_params);
  ASSERT_TRUE(degraded.GetBool("ok", false)) << degraded.Dump();
  EXPECT_TRUE(degraded.Get("result").GetBool("degraded", false));

  Json refused = Call(router, 4, "append", AppendParams(dataset, {9.9}));
  ASSERT_FALSE(refused.GetBool("ok", true)) << refused.Dump();
  EXPECT_EQ(refused.Get("error").GetString("code", ""), "Unavailable");

  // Job submits are at-most-once like appends: with the only primary dead
  // they refuse with Unavailable rather than blind-retrying the submit.
  auto submit_parsed = Json::Parse(R"({
    "datasets": ["traffic_u0"],
    "methods": ["naive"],
    "evaluation": {"strategy": "fixed", "horizon": 6, "metrics": ["mae"]}
  })");
  ASSERT_TRUE(submit_parsed.ok());
  Json submit = Call(router, 8, "evaluate", std::move(*submit_parsed));
  ASSERT_FALSE(submit.GetBool("ok", true)) << submit.Dump();
  EXPECT_EQ(submit.Get("error").GetString("code", ""), "Unavailable");

  // An un-pinned job lookup cannot claim NotFound while the shard that may
  // own the job is unreachable — that would make a fanned cancel a silent
  // no-op and report live jobs as gone.
  Json lookup_params = Json::Object();
  lookup_params.Set("job", int64_t{12345});
  Json lookup = Call(router, 9, "job_status", lookup_params);
  ASSERT_FALSE(lookup.GetBool("ok", true)) << lookup.Dump();
  EXPECT_EQ(lookup.Get("error").GetString("code", ""), "Unavailable");

  // Drive failover: detect death, promote, finish. Promotion replays the
  // dead primary's frozen store, so give it real time.
  router.HealthCheckNow();  // detects the corpse, asks the replica to promote
  bool promoted = false;
  for (int i = 0; i < 1200 && !promoted; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    router.HealthCheckNow();
    Json status = router.ClusterStatusJson();
    const Json& shard = status.Get("shards").Get("shard-0");
    promoted = shard.GetInt("failovers", 0) > 0 &&
               !shard.GetBool("promoting", true) &&
               !shard.GetBool("down", true);
  }
  ASSERT_TRUE(promoted) << router.ClusterStatusJson().Dump();

  // No acked append lost: the promoted store continues the exact offset
  // chain. An explicit "start" at the acked length must fit…
  Json resume_params = AppendParams(dataset, {8.0, 9.0});
  resume_params.Set("start", acked_length);
  Json resumed = Call(router, 5, "append", resume_params);
  ASSERT_TRUE(resumed.GetBool("ok", false)) << resumed.Dump();
  EXPECT_EQ(resumed.Get("result").GetInt("length", 0), acked_length + 2);
  // …and a stale offset (as if an acked batch had vanished) must not.
  Json stale_params = AppendParams(dataset, {1.5});
  stale_params.Set("start", acked_length - 3);
  Json stale = Call(router, 6, "append", stale_params);
  EXPECT_FALSE(stale.GetBool("ok", true)) << stale.Dump();

  // Reads are first-class again (no degraded tag), and the failover left a
  // fresh replica behind for the next crash.
  Json healthy = Call(router, 7, "forecast", forecast_params);
  ASSERT_TRUE(healthy.GetBool("ok", false)) << healthy.Dump();
  EXPECT_FALSE(healthy.Get("result").GetBool("degraded", false));

  Json status = router.ClusterStatusJson();
  const Json& shard = status.Get("shards").Get("shard-0");
  EXPECT_EQ(shard.GetString("primary", ""), "shard-0-r0");
  EXPECT_EQ(shard.GetString("replica", ""), "shard-0-r1");
  EXPECT_NE(shard.GetInt("replica_port", 0), 0);

  router.Stop();
}

}  // namespace
}  // namespace easytime::cluster
