#include "eval/evaluator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "methods/baselines.h"
#include "test_util.h"
#include "tsdata/generator.h"

namespace easytime::eval {
namespace {

using ::easytime::testing::MakeLinearSeries;
using ::easytime::testing::MakeSeasonalSeries;

EvalConfig SmallConfig(Strategy strategy = Strategy::kFixed) {
  EvalConfig c;
  c.strategy = strategy;
  c.horizon = 8;
  c.metrics = {"mae", "rmse"};
  return c;
}

TEST(ParseStrategy, NamesAndErrors) {
  EXPECT_EQ(ParseStrategy("fixed").ValueOrDie(), Strategy::kFixed);
  EXPECT_EQ(ParseStrategy("ROLLING").ValueOrDie(), Strategy::kRolling);
  EXPECT_FALSE(ParseStrategy("expanding").ok());
  EXPECT_STREQ(StrategyName(Strategy::kRolling), "rolling");
}

TEST(EvalConfigJson, RoundTrip) {
  EvalConfig c;
  c.strategy = Strategy::kRolling;
  c.horizon = 12;
  c.stride = 6;
  c.scaler = "minmax";
  c.metrics = {"mae", "smape"};
  c.drop_last = false;
  auto parsed = EvalConfig::FromJson(c.ToJson()).ValueOrDie();
  EXPECT_EQ(parsed.strategy, Strategy::kRolling);
  EXPECT_EQ(parsed.horizon, 12u);
  EXPECT_EQ(parsed.stride, 6u);
  EXPECT_EQ(parsed.scaler, "minmax");
  EXPECT_EQ(parsed.metrics, (std::vector<std::string>{"mae", "smape"}));
  EXPECT_FALSE(parsed.drop_last);
}

TEST(EvalConfigJson, RejectsBadInput) {
  EXPECT_FALSE(EvalConfig::FromJson(Json("string")).ok());
  auto bad_metric = Json::Parse(R"({"metrics": ["nope"]})").ValueOrDie();
  EXPECT_FALSE(EvalConfig::FromJson(bad_metric).ok());
  auto bad_horizon = Json::Parse(R"({"horizon": -3})").ValueOrDie();
  EXPECT_FALSE(EvalConfig::FromJson(bad_horizon).ok());
  auto bad_strategy = Json::Parse(R"({"strategy": "magic"})").ValueOrDie();
  EXPECT_FALSE(EvalConfig::FromJson(bad_strategy).ok());
}

TEST(EvaluatorFixed, PerfectForecasterScoresZero) {
  // A forecaster that always predicts the true continuation of a line.
  auto v = MakeLinearSeries(100, 0.0, 1.0);
  methods::DriftForecaster drift;  // exact on a pure line
  Evaluator eval(SmallConfig());
  auto r = eval.EvaluateValues(&drift, v).ValueOrDie();
  EXPECT_NEAR(r.metrics.at("mae"), 0.0, 1e-6);
  EXPECT_EQ(r.num_windows, 1u);
  EXPECT_EQ(r.last_forecast.size(), 8u);
  EXPECT_EQ(r.last_actual.size(), 8u);
}

TEST(EvaluatorFixed, MetricsInOriginalScale) {
  // Scale-dependent check: a mean forecaster on a +1000-level series must
  // produce an MAE in original units, not normalized ones.
  auto v = MakeSeasonalSeries(120, 12, 50.0, 0.0, 0.0);
  for (auto& x : v) x += 1000.0;
  methods::MeanForecaster mean;
  Evaluator eval(SmallConfig());
  auto r = eval.EvaluateValues(&mean, v).ValueOrDie();
  EXPECT_GT(r.metrics.at("mae"), 5.0);   // seasonal amplitude visible
  EXPECT_LT(r.metrics.at("mae"), 200.0); // but not level-sized
}

TEST(EvaluatorFixed, NullForecasterRejected) {
  Evaluator eval(SmallConfig());
  EXPECT_FALSE(eval.EvaluateValues(nullptr, {1, 2, 3}).ok());
}

TEST(EvaluatorRolling, CountsWindowsAndDropLast) {
  auto v = MakeLinearSeries(100, 0.0, 1.0);
  // test segment = 20 points; horizon 8, stride 8 -> windows at 80, 88
  // cover 8 each; window at 96 is incomplete (4 left).
  EvalConfig c = SmallConfig(Strategy::kRolling);
  c.split = tsdata::SplitSpec{0.7, 0.1, 0.2};
  c.drop_last = true;
  methods::NaiveForecaster naive;
  auto dropped = Evaluator(c).EvaluateValues(&naive, v).ValueOrDie();
  EXPECT_EQ(dropped.num_windows, 2u);

  c.drop_last = false;
  auto kept = Evaluator(c).EvaluateValues(&naive, v).ValueOrDie();
  EXPECT_EQ(kept.num_windows, 3u);  // truncated final window included
}

TEST(EvaluatorRolling, StrideControlsOverlap) {
  auto v = MakeLinearSeries(100, 0.0, 1.0);
  EvalConfig c = SmallConfig(Strategy::kRolling);
  c.stride = 4;
  c.drop_last = true;
  methods::NaiveForecaster naive;
  auto r = Evaluator(c).EvaluateValues(&naive, v).ValueOrDie();
  // windows start at 80, 84, 88, 92 (96 would need 8 -> only 4 left).
  EXPECT_EQ(r.num_windows, 4u);
}

TEST(EvaluatorRolling, NaiveErrorGrowsWithHorizonOnTrend) {
  // Sanity: on a trending series rolling naive has nonzero error ~ slope.
  auto v = MakeLinearSeries(120, 0.0, 2.0);
  EvalConfig c = SmallConfig(Strategy::kRolling);
  methods::NaiveForecaster naive;
  auto r = Evaluator(c).EvaluateValues(&naive, v).ValueOrDie();
  // Mean |h*slope| for h=1..8 = 2 * 4.5 = 9.
  EXPECT_NEAR(r.metrics.at("mae"), 9.0, 0.5);
}

TEST(EvaluatorRolling, TooShortTestRejected) {
  EvalConfig c = SmallConfig(Strategy::kRolling);
  c.horizon = 50;
  methods::NaiveForecaster naive;
  auto v = MakeLinearSeries(60, 0.0, 1.0);
  EXPECT_FALSE(Evaluator(c).EvaluateValues(&naive, v).ok());
}

TEST(EvaluateDataset, AveragesOverChannels) {
  tsdata::GeneratorConfig cfg;
  cfg.name = "mv";
  cfg.length = 120;
  cfg.num_channels = 3;
  cfg.period = 12;
  cfg.season_amp = 4.0;
  cfg.seed = 3;
  tsdata::Dataset ds = tsdata::GenerateDataset(cfg);

  Evaluator eval(SmallConfig());
  auto r = eval.EvaluateDataset("naive", Json::Object(), ds).ValueOrDie();
  EXPECT_TRUE(r.metrics.count("mae"));
  EXPECT_EQ(r.num_windows, 3u);  // one fixed window per channel
}

TEST(EvaluateDataset, UnknownMethodFails) {
  tsdata::Dataset ds("x");
  (void)ds.AddChannel(tsdata::Series("a", MakeLinearSeries(50, 0, 1)));
  Evaluator eval(SmallConfig());
  EXPECT_FALSE(eval.EvaluateDataset("not_a_method", Json::Object(), ds).ok());
}

TEST(Evaluator, ScalerVariantsAllWork) {
  auto v = MakeSeasonalSeries(120, 12, 4.0, 0.1, 0.2);
  for (const char* scaler : {"zscore", "minmax", "none"}) {
    EvalConfig c = SmallConfig();
    c.scaler = scaler;
    methods::NaiveForecaster naive;
    auto r = Evaluator(c).EvaluateValues(&naive, v);
    ASSERT_TRUE(r.ok()) << scaler;
    EXPECT_TRUE(std::isfinite(r->metrics.at("mae"))) << scaler;
  }
}

}  // namespace
}  // namespace easytime::eval
