#include "ensemble/classifier.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace easytime::ensemble {
namespace {

TEST(SoftLabel, SoftmaxOfNegatedErrors) {
  auto label = MethodClassifier::SoftLabel({1.0, 2.0, 3.0}, 0.5, false);
  ASSERT_EQ(label.size(), 3u);
  double sum = label[0] + label[1] + label[2];
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(label[0], label[1]);  // lower error -> higher probability
  EXPECT_GT(label[1], label[2]);
}

TEST(SoftLabel, HardModeIsOneHot) {
  auto label = MethodClassifier::SoftLabel({5.0, 1.0, 3.0}, 0.5, true);
  EXPECT_DOUBLE_EQ(label[0], 0.0);
  EXPECT_DOUBLE_EQ(label[1], 1.0);
  EXPECT_DOUBLE_EQ(label[2], 0.0);
}

TEST(SoftLabel, TemperatureControlsSharpness) {
  auto soft = MethodClassifier::SoftLabel({1.0, 2.0}, 1.0, false);
  auto sharp = MethodClassifier::SoftLabel({1.0, 2.0}, 0.1, false);
  EXPECT_GT(sharp[0], soft[0]);
}

ClassifierOptions FastOptions() {
  ClassifierOptions o;
  o.hidden = 16;
  o.epochs = 250;
  return o;
}

/// Synthetic supervision: method A wins when feature[0] > 0, B otherwise.
std::vector<ClassifierExample> SyntheticExamples(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<ClassifierExample> out;
  for (size_t i = 0; i < n; ++i) {
    ClassifierExample ex;
    double f0 = rng.Uniform(-1.0, 1.0);
    ex.features = {f0, rng.Uniform(-1.0, 1.0), rng.Uniform(-0.1, 0.1)};
    if (f0 > 0) {
      ex.method_errors = {{"A", 1.0}, {"B", 3.0}, {"C", 2.0}};
    } else {
      ex.method_errors = {{"A", 3.0}, {"B", 1.0}, {"C", 2.0}};
    }
    out.push_back(std::move(ex));
  }
  return out;
}

TEST(Classifier, LearnsFeaturePerformanceMapping) {
  MethodClassifier clf({"A", "B", "C"}, 3, FastOptions());
  ASSERT_TRUE(clf.Train(SyntheticExamples(80, 1)).ok());

  auto probs_pos = clf.Predict({0.8, 0.0, 0.0}).ValueOrDie();
  auto probs_neg = clf.Predict({-0.8, 0.0, 0.0}).ValueOrDie();
  EXPECT_GT(probs_pos[0], probs_pos[1]);  // A preferred
  EXPECT_GT(probs_neg[1], probs_neg[0]);  // B preferred
  double s = probs_pos[0] + probs_pos[1] + probs_pos[2];
  EXPECT_NEAR(s, 1.0, 1e-9);
}

TEST(Classifier, TopKOrderedByProbability) {
  MethodClassifier clf({"A", "B", "C"}, 3, FastOptions());
  ASSERT_TRUE(clf.Train(SyntheticExamples(80, 2)).ok());
  auto top = clf.TopK({0.8, 0.0, 0.0}, 2).ValueOrDie();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "A");
  EXPECT_GE(top[0].second, top[1].second);
  // k larger than classes clamps.
  EXPECT_EQ(clf.TopK({0.1, 0.0, 0.0}, 10).ValueOrDie().size(), 3u);
}

TEST(Classifier, PredictBeforeTrainFails) {
  MethodClassifier clf({"A", "B"}, 2, FastOptions());
  EXPECT_FALSE(clf.Predict({0.0, 0.0}).ok());
}

TEST(Classifier, DimensionMismatchRejected) {
  MethodClassifier clf({"A", "B"}, 3, FastOptions());
  ClassifierExample bad;
  bad.features = {1.0};  // wrong dim
  bad.method_errors = {{"A", 1.0}, {"B", 2.0}};
  EXPECT_FALSE(clf.Train({bad}).ok());

  ASSERT_TRUE(clf.Train(SyntheticExamples(20, 3)).ok());
  EXPECT_FALSE(clf.Predict({1.0}).ok());
}

TEST(Classifier, SkipsExamplesWithTooFewScores) {
  MethodClassifier clf({"A", "B"}, 2, FastOptions());
  ClassifierExample only_one;
  only_one.features = {0.5, 0.5};
  only_one.method_errors = {{"A", 1.0}};
  EXPECT_FALSE(clf.Train({only_one}).ok());  // nothing usable
}

TEST(Classifier, HandlesMissingMethodScores) {
  // Example missing method C: C is imputed as a loser, training proceeds.
  MethodClassifier clf({"A", "B", "C"}, 2, FastOptions());
  std::vector<ClassifierExample> ex(10);
  Rng rng(4);
  for (auto& e : ex) {
    e.features = {rng.Uniform(), rng.Uniform()};
    e.method_errors = {{"A", 1.0}, {"B", 2.0}};  // no C anywhere
  }
  ASSERT_TRUE(clf.Train(ex).ok());
  auto probs = clf.Predict({0.5, 0.5}).ValueOrDie();
  EXPECT_LT(probs[2], probs[0]);  // C never wins
}

TEST(Classifier, SoftBeatsHardOnNearTies) {
  // When two methods are near-tied winners, soft labels preserve both in
  // the predicted ranking; hard labels overcommit. Measure the probability
  // assigned to the runner-up.
  auto make_examples = [](uint64_t seed) {
    Rng rng(seed);
    std::vector<ClassifierExample> out;
    for (int i = 0; i < 60; ++i) {
      ClassifierExample ex;
      ex.features = {rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
      // A and B nearly tied (noise decides), C clearly worst.
      double noise = rng.Gaussian(0.0, 0.05);
      ex.method_errors = {{"A", 1.0 + noise}, {"B", 1.0 - noise}, {"C", 5.0}};
      out.push_back(std::move(ex));
    }
    return out;
  };
  ClassifierOptions soft_opt = FastOptions();
  ClassifierOptions hard_opt = FastOptions();
  hard_opt.hard_labels = true;

  MethodClassifier soft({"A", "B", "C"}, 2, soft_opt);
  MethodClassifier hard({"A", "B", "C"}, 2, hard_opt);
  ASSERT_TRUE(soft.Train(make_examples(5)).ok());
  ASSERT_TRUE(hard.Train(make_examples(5)).ok());

  auto ps = soft.Predict({0.3, -0.2}).ValueOrDie();
  auto ph = hard.Predict({0.3, -0.2}).ValueOrDie();
  // Soft classifier assigns materially less mass to the clear loser C
  // relative to the tied pair, and keeps A/B balanced.
  EXPECT_LT(ps[2], 0.2);
  double soft_gap = std::fabs(ps[0] - ps[1]);
  double hard_gap = std::fabs(ph[0] - ph[1]);
  EXPECT_LE(soft_gap, hard_gap + 0.15);
}

}  // namespace
}  // namespace easytime::ensemble
