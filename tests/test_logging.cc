#include "common/logging.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/stopwatch.h"

namespace easytime {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (fs::temp_directory_path() / "easytime_log_test.txt").string();
    std::remove(path_.c_str());
    Logging::SetLogFile(path_);
    Logging::SetLevel(LogLevel::kDebug);
  }
  void TearDown() override {
    Logging::SetLogFile("");  // back to stderr for other tests
    Logging::SetLevel(LogLevel::kInfo);
    std::remove(path_.c_str());
  }
  std::string path_;
};

TEST_F(LoggingTest, WritesFormattedLinesToFile) {
  EASYTIME_LOG(Info) << "pipeline started with " << 3 << " methods";
  std::string log = ReadFile(path_);
  EXPECT_NE(log.find("INFO"), std::string::npos);
  EXPECT_NE(log.find("pipeline started with 3 methods"), std::string::npos);
  EXPECT_NE(log.find("test_logging.cc"), std::string::npos);
}

TEST_F(LoggingTest, LevelFiltering) {
  Logging::SetLevel(LogLevel::kWarning);
  EASYTIME_LOG(Debug) << "hidden debug";
  EASYTIME_LOG(Info) << "hidden info";
  EASYTIME_LOG(Warning) << "visible warning";
  EASYTIME_LOG(Error) << "visible error";
  std::string log = ReadFile(path_);
  EXPECT_EQ(log.find("hidden"), std::string::npos);
  EXPECT_NE(log.find("visible warning"), std::string::npos);
  EXPECT_NE(log.find("visible error"), std::string::npos);
  EXPECT_EQ(Logging::GetLevel(), LogLevel::kWarning);
}

TEST_F(LoggingTest, SeverityNamesDistinct) {
  EASYTIME_LOG(Debug) << "d";
  EASYTIME_LOG(Error) << "e";
  std::string log = ReadFile(path_);
  EXPECT_NE(log.find("DEBUG"), std::string::npos);
  EXPECT_NE(log.find("ERROR"), std::string::npos);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  double t0 = watch.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  // Busy-wait a tiny bit; elapsed must be monotone.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  double t1 = watch.ElapsedSeconds();
  EXPECT_GE(t1, t0);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedMillis() * 0.5 + 1.0);
  watch.Reset();
  EXPECT_LT(watch.ElapsedSeconds(), t1 + 1.0);
}

}  // namespace
}  // namespace easytime
