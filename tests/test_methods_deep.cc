#include <gtest/gtest.h>

#include <cmath>

#include "methods/baselines.h"
#include "methods/deep.h"
#include "test_util.h"

namespace easytime::methods {
namespace {

using ::easytime::testing::MakeSeasonalSeries;

DeepOptions FastOptions() {
  DeepOptions o;
  o.hidden = 16;
  o.epochs = 30;
  o.max_windows = 96;
  return o;
}

double MaeAgainst(const std::vector<double>& fc,
                  const std::vector<double>& actual) {
  double acc = 0.0;
  for (size_t i = 0; i < fc.size(); ++i) acc += std::fabs(fc[i] - actual[i]);
  return acc / static_cast<double>(fc.size());
}

struct DeepCase {
  std::string name;
};

class DeepForecasterTest : public ::testing::TestWithParam<std::string> {
 protected:
  ForecasterPtr Make() {
    std::string which = GetParam();
    if (which == "mlp") return std::make_unique<MlpForecaster>(FastOptions());
    if (which == "gru") return std::make_unique<GruForecaster>(FastOptions());
    return std::make_unique<TcnForecaster>(FastOptions());
  }
};

TEST_P(DeepForecasterTest, FitsAndForecastsRightLength) {
  auto v = MakeSeasonalSeries(200, 12, 4.0, 0.0, 0.2);
  auto f = Make();
  FitContext ctx;
  ctx.horizon = 8;
  ctx.period_hint = 12;
  ASSERT_TRUE(f->Fit(v, ctx).ok());
  auto fc = f->Forecast(8).ValueOrDie();
  EXPECT_EQ(fc.size(), 8u);
  for (double x : fc) EXPECT_TRUE(std::isfinite(x));
  // Longer-than-trained horizon via recursion.
  auto longer = f->Forecast(20).ValueOrDie();
  EXPECT_EQ(longer.size(), 20u);
}

TEST_P(DeepForecasterTest, BeatsMeanBaselineOnSeasonalSignal) {
  auto full = MakeSeasonalSeries(260, 12, 6.0, 0.0, 0.2);
  std::vector<double> train(full.begin(), full.end() - 12);
  std::vector<double> actual(full.end() - 12, full.end());

  auto f = Make();
  FitContext ctx;
  ctx.horizon = 12;
  ctx.period_hint = 12;
  ctx.seed = 5;
  ASSERT_TRUE(f->Fit(train, ctx).ok());
  auto fc = f->Forecast(12).ValueOrDie();

  MeanForecaster mean;
  ASSERT_TRUE(mean.Fit(train, ctx).ok());
  auto mf = mean.Forecast(12).ValueOrDie();

  EXPECT_LT(MaeAgainst(fc, actual), MaeAgainst(mf, actual))
      << GetParam() << " failed to beat the mean baseline";
}

TEST_P(DeepForecasterTest, DeterministicGivenSeed) {
  auto v = MakeSeasonalSeries(150, 12, 3.0, 0.0, 0.3);
  FitContext ctx;
  ctx.horizon = 6;
  ctx.period_hint = 12;
  ctx.seed = 11;
  auto f1 = Make();
  auto f2 = Make();
  ASSERT_TRUE(f1->Fit(v, ctx).ok());
  ASSERT_TRUE(f2->Fit(v, ctx).ok());
  auto a = f1->Forecast(6).ValueOrDie();
  auto b = f2->Forecast(6).ValueOrDie();
  for (size_t i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST_P(DeepForecasterTest, ForecastFromReusesWeights) {
  auto v = MakeSeasonalSeries(160, 8, 4.0, 0.0, 0.2);
  auto f = Make();
  FitContext ctx;
  ctx.horizon = 4;
  ctx.period_hint = 8;
  ASSERT_TRUE(f->Fit(v, ctx).ok());
  auto fc = f->ForecastFrom(v, 4).ValueOrDie();
  EXPECT_EQ(fc.size(), 4u);
  EXPECT_FALSE(f->ForecastFrom({}, 4).ok());
}

INSTANTIATE_TEST_SUITE_P(AllDeepModels, DeepForecasterTest,
                         ::testing::Values("mlp", "gru", "tcn"));

TEST(DeepModels, RejectTooShortSeries) {
  MlpForecaster f(FastOptions());
  FitContext ctx;
  ctx.horizon = 50;
  EXPECT_FALSE(f.Fit({1, 2, 3}, ctx).ok());
}

}  // namespace
}  // namespace easytime::methods
