#include "tsdata/dataset_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "store/record_store.h"
#include "tsdata/generator.h"
#include "tsdata/repository.h"

namespace easytime::tsdata {
namespace {

namespace fs = std::filesystem;

std::string TestDir(const std::string& leaf) {
  std::string dir =
      (fs::path(::testing::TempDir()) / ("easytime_ds_" + leaf)).string();
  fs::remove_all(dir);
  return dir;
}

SuiteSpec SmallSuite() {
  SuiteSpec spec;
  spec.univariate_per_domain = 1;
  spec.multivariate_total = 1;
  spec.min_length = 120;
  spec.max_length = 160;
  return spec;
}

Repository MakeRepo(const SuiteSpec& spec) {
  Repository repo;
  EXPECT_TRUE(repo.AddSuite(spec).ok());
  return repo;
}

std::vector<std::vector<double>> AllValues(const Repository& repo) {
  std::vector<std::vector<double>> out;
  for (const Dataset* ds : repo.All()) {
    for (const Series& ch : ds->channels()) out.push_back(ch.values());
  }
  return out;
}

TEST(DatasetStoreTest, RoundTripRestoresTheSuiteBitExactly) {
  const std::string dir = TestDir("roundtrip");
  const SuiteSpec spec = SmallSuite();
  Repository repo = MakeRepo(spec);
  ASSERT_TRUE(PersistRepository(dir, spec, repo).ok());

  Repository loaded;
  auto restored = LoadRepositoryFromStore(dir, spec, &loaded);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(*restored);
  EXPECT_EQ(loaded.names(), repo.names());
  EXPECT_EQ(AllValues(loaded), AllValues(repo));
  fs::remove_all(dir);
}

TEST(DatasetStoreTest, MissingStoreIsAColdStart) {
  Repository repo;
  auto restored =
      LoadRepositoryFromStore(TestDir("missing"), SmallSuite(), &repo);
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(*restored);
  EXPECT_EQ(repo.size(), 0u);
}

// A crash mid-persist leaves a tail without the terminal manifest (or with
// records after it); either way the store must not count as a warm start.
TEST(DatasetStoreTest, TailNotEndingInManifestIsNotAWarmStart) {
  const std::string dir = TestDir("partial");
  const SuiteSpec spec = SmallSuite();
  Repository repo = MakeRepo(spec);
  ASSERT_TRUE(PersistRepository(dir, spec, repo).ok());
  {
    auto rs = store::RecordStore::Open(dir, store::RecordStoreOptions{});
    ASSERT_TRUE(rs.ok());
    ASSERT_TRUE((*rs)->Append("{\"name\":\"straggler\"}").ok());
  }
  Repository loaded;
  auto restored = LoadRepositoryFromStore(dir, spec, &loaded);
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(*restored);
  EXPECT_EQ(loaded.size(), 0u) << "a rejected store must not touch the repo";
  fs::remove_all(dir);
}

TEST(DatasetStoreTest, ManifestCountMismatchIsNotAWarmStart) {
  const std::string dir = TestDir("count_mismatch");
  const SuiteSpec spec = SmallSuite();
  Repository repo = MakeRepo(spec);
  ASSERT_TRUE(PersistRepository(dir, spec, repo).ok());
  {
    // A second manifest claiming one more dataset than the tail holds.
    auto rs = store::RecordStore::Open(dir, store::RecordStoreOptions{});
    ASSERT_TRUE(rs.ok());
    ASSERT_TRUE(
        (*rs)->Append(DatasetStoreManifest(spec, repo.size() + 2)).ok());
  }
  Repository loaded;
  auto restored = LoadRepositoryFromStore(dir, spec, &loaded);
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(*restored);
  fs::remove_all(dir);
}

TEST(DatasetStoreTest, ChangedSuiteOptionsInvalidateTheCache) {
  const std::string dir = TestDir("suite_changed");
  const SuiteSpec spec = SmallSuite();
  ASSERT_TRUE(PersistRepository(dir, spec, MakeRepo(spec)).ok());

  SuiteSpec changed = spec;
  changed.min_length = spec.min_length + 8;
  Repository loaded;
  auto restored = LoadRepositoryFromStore(dir, changed, &loaded);
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(*restored) << "stale datasets must not satisfy a new suite";
  fs::remove_all(dir);
}

TEST(DatasetStoreTest, UndecodableDatasetRecordIsAnError) {
  const std::string dir = TestDir("corrupt_record");
  const SuiteSpec spec = SmallSuite();
  {
    auto rs = store::RecordStore::Open(dir, store::RecordStoreOptions{});
    ASSERT_TRUE(rs.ok());
    ASSERT_TRUE((*rs)->Append("this is not json").ok());
    ASSERT_TRUE((*rs)->Append(DatasetStoreManifest(spec, 1)).ok());
    ASSERT_TRUE((*rs)->Sync().ok());
  }
  Repository loaded;
  auto restored = LoadRepositoryFromStore(dir, spec, &loaded);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(loaded.size(), 0u) << "a failed load must not touch the repo";
  fs::remove_all(dir);
}

TEST(DatasetStoreTest, PersistReplacesAnExistingStoreWholesale) {
  const std::string dir = TestDir("replace");
  const SuiteSpec old_spec = SmallSuite();
  ASSERT_TRUE(PersistRepository(dir, old_spec, MakeRepo(old_spec)).ok());

  SuiteSpec new_spec = old_spec;
  new_spec.seed = old_spec.seed + 1;
  Repository new_repo = MakeRepo(new_spec);
  ASSERT_TRUE(PersistRepository(dir, new_spec, new_repo).ok());

  Repository loaded;
  auto restored = LoadRepositoryFromStore(dir, new_spec, &loaded);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(*restored);
  EXPECT_EQ(AllValues(loaded), AllValues(new_repo))
      << "old records must not leak into the rewritten store";
  fs::remove_all(dir);
}

}  // namespace
}  // namespace easytime::tsdata
