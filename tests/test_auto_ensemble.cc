#include "ensemble/auto_ensemble.h"

#include <gtest/gtest.h>

#include <cmath>

#include "methods/baselines.h"
#include "methods/registry.h"
#include "test_util.h"

namespace easytime::ensemble {
namespace {

using ::easytime::testing::MakeSeasonalSeries;

TEST(EnsembleForecaster, WeightsFormSimplexAndFavorBetterMember) {
  // Members: drift (exact on the trend) and mean (poor on a trend).
  std::vector<methods::ForecasterPtr> members;
  members.push_back(
      methods::MethodRegistry::Global().Create("drift").ValueOrDie());
  members.push_back(
      methods::MethodRegistry::Global().Create("mean").ValueOrDie());
  EnsembleForecaster ens(std::move(members), {"drift", "mean"}, 0.25,
                         /*weight_shrinkage=*/0.0);

  auto v = ::easytime::testing::MakeLinearSeries(100, 0.0, 1.0);
  methods::FitContext ctx;
  ctx.horizon = 8;
  ASSERT_TRUE(ens.Fit(v, ctx).ok());

  const auto& w = ens.weights();
  ASSERT_EQ(w.size(), 2u);
  double sum = w[0] + w[1];
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(w[0], 0.8) << "drift should dominate on a pure trend";

  auto fc = ens.Forecast(8).ValueOrDie();
  EXPECT_NEAR(fc[0], 100.0, 2.0);
}

TEST(EnsembleForecaster, FailingMemberIsNeutralized) {
  std::vector<methods::ForecasterPtr> members;
  members.push_back(
      methods::MethodRegistry::Global().Create("naive").ValueOrDie());
  members.push_back(
      methods::MethodRegistry::Global().Create("arima").ValueOrDie());
  EnsembleForecaster ens(std::move(members), {"naive", "arima"}, 0.25);

  // Too short for ARIMA (both on the inner and the full fit) but fine for
  // naive: the failing member's weight must be zeroed.
  std::vector<double> tiny = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  methods::FitContext ctx;
  ctx.horizon = 2;
  ASSERT_TRUE(ens.Fit(tiny, ctx).ok());
  EXPECT_DOUBLE_EQ(ens.weights()[1], 0.0);
  auto fc = ens.Forecast(2).ValueOrDie();
  EXPECT_NEAR(fc[0], 10.0, 1e-6);  // pure naive
}

TEST(EnsembleForecaster, EmptyEnsembleRejected) {
  EnsembleForecaster ens({}, {}, 0.2);
  EXPECT_FALSE(ens.Fit({1, 2, 3}, {}).ok());
  EXPECT_FALSE(ens.Forecast(2).ok());
}

TEST(EnsembleForecaster, ForecastFromDelegatesToMembers) {
  std::vector<methods::ForecasterPtr> members;
  members.push_back(
      methods::MethodRegistry::Global().Create("naive").ValueOrDie());
  EnsembleForecaster ens(std::move(members), {"naive"}, 0.25);
  auto v = MakeSeasonalSeries(80, 8, 3.0);
  methods::FitContext ctx;
  ctx.horizon = 4;
  ASSERT_TRUE(ens.Fit(v, ctx).ok());
  auto fc = ens.ForecastFrom({5.0, 7.0}, 3).ValueOrDie();
  EXPECT_NEAR(fc[0], 7.0, 1e-9);
}

class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tsdata::SuiteSpec suite;
    suite.univariate_per_domain = 2;
    suite.multivariate_total = 1;
    suite.min_length = 200;
    suite.max_length = 260;
    eval::EvalConfig cfg;
    cfg.horizon = 12;
    cfg.metrics = {"mae"};
    auto seeded = knowledge::SeedKnowledge(
        suite, cfg, {"naive", "seasonal_naive", "theta", "drift", "ses"});
    ASSERT_TRUE(seeded.ok());
    seeded_ = new knowledge::SeededKnowledge(std::move(*seeded));

    AutoEnsembleOptions opt;
    opt.top_k = 3;
    opt.ts2vec.epochs = 4;
    opt.ts2vec.repr_dim = 8;
    opt.ts2vec.hidden_dim = 12;
    opt.ts2vec.depth = 2;
    opt.classifier.epochs = 120;
    engine_ = new AutoEnsembleEngine(opt);
    ASSERT_TRUE(engine_->Pretrain(seeded_->repository, seeded_->kb).ok());
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete seeded_;
    engine_ = nullptr;
    seeded_ = nullptr;
  }

  static knowledge::SeededKnowledge* seeded_;
  static AutoEnsembleEngine* engine_;
};

knowledge::SeededKnowledge* EngineTest::seeded_ = nullptr;
AutoEnsembleEngine* EngineTest::engine_ = nullptr;

TEST_F(EngineTest, PretrainedStateAndCandidates) {
  EXPECT_TRUE(engine_->pretrained());
  EXPECT_EQ(engine_->candidate_methods().size(), 5u);
}

TEST_F(EngineTest, FeaturesAreFixedDimension) {
  auto v = MakeSeasonalSeries(150, 12, 4.0, 0.0, 0.2);
  auto f = engine_->Features(v).ValueOrDie();
  EXPECT_EQ(f.size(), 8u + tsdata::kCharacteristicFeatureDim);
}

TEST_F(EngineTest, RecommendReturnsRankedCandidates) {
  auto v = MakeSeasonalSeries(180, 24, 6.0, 0.0, 0.3);
  auto rec = engine_->Recommend(v, 3).ValueOrDie();
  ASSERT_EQ(rec.size(), 3u);
  EXPECT_GE(rec[0].second, rec[1].second);
  EXPECT_GE(rec[1].second, rec[2].second);
  for (const auto& [name, prob] : rec) {
    EXPECT_TRUE(methods::MethodRegistry::Global().Contains(name)) << name;
    EXPECT_GE(prob, 0.0);
    EXPECT_LE(prob, 1.0);
  }
}

TEST_F(EngineTest, BuildEnsembleProducesWorkingForecaster) {
  auto v = MakeSeasonalSeries(220, 12, 5.0, 0.05, 0.3);
  auto ens = engine_->BuildEnsemble(v).ValueOrDie();
  EXPECT_EQ(ens->member_names().size(), 3u);

  methods::FitContext ctx;
  ctx.horizon = 12;
  ctx.period_hint = 12;
  std::vector<double> train(v.begin(), v.end() - 12);
  ASSERT_TRUE(ens->Fit(train, ctx).ok());
  auto fc = ens->Forecast(12).ValueOrDie();
  EXPECT_EQ(fc.size(), 12u);

  // The paper's claim (Fig. 2): the validation-weighted ensemble is at
  // least competitive with its average member.
  std::vector<double> actual(v.end() - 12, v.end());
  auto mae = [&](const std::vector<double>& fc_values) {
    double acc = 0.0;
    for (size_t i = 0; i < fc_values.size(); ++i) {
      acc += std::fabs(fc_values[i] - actual[i]);
    }
    return acc / static_cast<double>(fc_values.size());
  };
  double ens_mae = mae(fc);
  double member_sum = 0.0;
  for (const auto& name : ens->member_names()) {
    auto m = methods::MethodRegistry::Global().Create(name).ValueOrDie();
    EXPECT_TRUE(m->Fit(train, ctx).ok());
    member_sum += mae(m->Forecast(12).ValueOrDie());
  }
  double member_avg = member_sum / 3.0;
  EXPECT_LE(ens_mae, member_avg * 1.25)
      << "ensemble should be competitive with its mean member";
}

TEST_F(EngineTest, MethodsBeforePretrainFail) {
  AutoEnsembleEngine fresh;
  auto v = MakeSeasonalSeries(100, 10, 2.0);
  EXPECT_FALSE(fresh.Recommend(v).ok());
  EXPECT_FALSE(fresh.Features(v).ok());
  EXPECT_FALSE(fresh.BuildEnsemble(v).ok());
}

TEST(EngineValidation, PretrainNeedsResults) {
  tsdata::Repository repo;
  tsdata::SuiteSpec spec;
  spec.univariate_per_domain = 1;
  spec.multivariate_total = 0;
  ASSERT_TRUE(repo.AddSuite(spec).ok());
  knowledge::KnowledgeBase empty_kb;
  AutoEnsembleEngine engine;
  EXPECT_FALSE(engine.Pretrain(repo, empty_kb).ok());
}

}  // namespace
}  // namespace easytime::ensemble
