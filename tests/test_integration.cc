// Cross-module integration tests: the full user journeys the demo paper
// walks through, exercised end-to-end without mocks.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/easytime.h"
#include "pipeline/plot.h"
#include "test_util.h"
#include "tsdata/generator.h"

namespace easytime {
namespace {

namespace fs = std::filesystem;

/// Journey 1: a practitioner's CSV file -> repository -> pipeline -> KB ->
/// Q&A answer that mentions the uploaded data.
TEST(Integration, CsvUploadToQueryableResults) {
  // Write a user CSV to disk.
  fs::path dir = fs::temp_directory_path() / "easytime_it_upload";
  fs::create_directories(dir);
  {
    std::ofstream f(dir / "shop_sales.csv");
    f << "sales\n";
    auto v = testing::MakeSeasonalSeries(240, 12, 6.0, 0.1, 0.4);
    for (double x : v) f << x << "\n";
  }

  // Repository loads the directory.
  tsdata::Repository repo;
  ASSERT_TRUE(repo.LoadDirectory(dir.string()).ok());
  ASSERT_TRUE(repo.Contains("shop_sales"));

  // Pipeline run on the uploaded data only.
  pipeline::BenchmarkConfig config;
  config.datasets = {"shop_sales"};
  config.methods = {pipeline::MethodSpec{"theta", Json::Object()},
                    pipeline::MethodSpec{"seasonal_naive", Json::Object()}};
  config.eval.horizon = 12;
  config.eval.metrics = {"mae"};
  auto report = pipeline::PipelineRunner(&repo, config).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->Successful().size(), 2u);

  // Knowledge base ingests it; Q&A can answer about it.
  knowledge::KnowledgeBase kb;
  kb.AddDataset(**repo.Get("shop_sales"));
  kb.AddAllMethods();
  kb.AddReport(*report);
  auto qa = qa::QaEngine::Create(kb);
  ASSERT_TRUE(qa.ok());
  auto resp = (*qa)->Ask("Is theta or seasonal_naive better by mae?");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->table.rows.size(), 2u);
  fs::remove_all(dir);
}

/// Journey 2: recommend -> ensemble -> forecast -> visualize, starting from
/// raw values (the Upload Dataset button path).
TEST(Integration, UploadRecommendEnsembleVisualize) {
  core::EasyTime::Options opt;
  opt.suite.univariate_per_domain = 1;
  opt.suite.multivariate_total = 1;
  opt.suite.min_length = 180;
  opt.suite.max_length = 220;
  opt.seed_eval.horizon = 12;
  opt.seed_eval.metrics = {"mae"};
  opt.seed_methods = {"naive", "seasonal_naive", "theta", "ses"};
  opt.ensemble.top_k = 2;
  opt.ensemble.ts2vec.epochs = 3;
  opt.ensemble.ts2vec.repr_dim = 8;
  opt.ensemble.ts2vec.hidden_dim = 10;
  opt.ensemble.ts2vec.depth = 2;
  opt.ensemble.classifier.epochs = 60;
  auto system = core::EasyTime::Create(opt);
  ASSERT_TRUE(system.ok()) << system.status().ToString();

  auto uploaded = testing::MakeSeasonalSeries(260, 24, 5.0, 0.0, 0.3, 999);
  auto rec = (*system)->RecommendForValues(uploaded, 2);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->size(), 2u);

  // Build + fit the ensemble, forecast, and render the report plot.
  auto ens = (*system)->ensemble_engine().BuildEnsemble(uploaded);
  ASSERT_TRUE(ens.ok());
  methods::FitContext ctx;
  ctx.horizon = 24;
  ctx.period_hint = 24;
  std::vector<double> train(uploaded.begin(), uploaded.end() - 24);
  std::vector<double> actual(uploaded.end() - 24, uploaded.end());
  ASSERT_TRUE((*ens)->Fit(train, ctx).ok());
  auto fc = (*ens)->Forecast(24);
  ASSERT_TRUE(fc.ok());

  std::string plot = pipeline::RenderForecastPlot(train, actual, *fc);
  EXPECT_NE(plot.find('x'), std::string::npos);
  EXPECT_NE(plot.find('.'), std::string::npos);
}

/// Journey 3: the results a user adds via one-click evaluation become part
/// of the ensemble engine's world after re-pretraining.
TEST(Integration, OneClickResultsFeedTheRecommender) {
  tsdata::SuiteSpec suite;
  suite.univariate_per_domain = 1;
  suite.multivariate_total = 0;
  suite.min_length = 160;
  suite.max_length = 200;
  eval::EvalConfig cfg;
  cfg.horizon = 8;
  cfg.metrics = {"mae"};
  auto seeded = knowledge::SeedKnowledge(suite, cfg, {"naive", "ses"});
  ASSERT_TRUE(seeded.ok());

  // Only two candidates initially.
  ensemble::AutoEnsembleOptions eopt;
  eopt.ts2vec.epochs = 2;
  eopt.ts2vec.repr_dim = 8;
  eopt.ts2vec.hidden_dim = 10;
  eopt.ts2vec.depth = 2;
  eopt.classifier.epochs = 40;
  ensemble::AutoEnsembleEngine engine(eopt);
  ASSERT_TRUE(engine.Pretrain(seeded->repository, seeded->kb).ok());
  EXPECT_EQ(engine.candidate_methods().size(), 2u);

  // One-click evaluate a third method into the KB, re-pretrain: the
  // candidate set grows.
  pipeline::BenchmarkConfig config;
  config.methods = {pipeline::MethodSpec{"theta", Json::Object()}};
  config.eval = cfg;
  auto report = pipeline::PipelineRunner(&seeded->repository, config).Run();
  ASSERT_TRUE(report.ok());
  seeded->kb.AddReport(*report);
  ASSERT_TRUE(engine.Pretrain(seeded->repository, seeded->kb).ok());
  EXPECT_EQ(engine.candidate_methods().size(), 3u);
}

/// Journey 4: the KB round-trips through CSV persistence and still answers
/// the same question identically.
TEST(Integration, KnowledgePersistenceRoundTrip) {
  tsdata::SuiteSpec suite;
  suite.univariate_per_domain = 1;
  suite.multivariate_total = 0;
  suite.min_length = 160;
  suite.max_length = 180;
  eval::EvalConfig cfg;
  cfg.horizon = 8;
  cfg.metrics = {"mae"};
  auto seeded = knowledge::SeedKnowledge(suite, cfg, {"naive", "theta"});
  ASSERT_TRUE(seeded.ok());

  std::string path =
      (fs::temp_directory_path() / "easytime_it_kb.csv").string();
  ASSERT_TRUE(seeded->kb.SaveResultsCsv(path).ok());

  knowledge::KnowledgeBase restored;
  for (const auto* ds : seeded->repository.All()) restored.AddDataset(*ds);
  restored.AddAllMethods();
  ASSERT_TRUE(restored.LoadResultsCsv(path).ok());

  auto qa1 = qa::QaEngine::Create(seeded->kb).ValueOrDie();
  auto qa2 = qa::QaEngine::Create(restored).ValueOrDie();
  const char* q = "Is naive or theta better by mae?";
  auto a1 = qa1->Ask(q).ValueOrDie();
  auto a2 = qa2->Ask(q).ValueOrDie();
  EXPECT_EQ(a1.table.rows[0][0].AsText(), a2.table.rows[0][0].AsText());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace easytime
