#include "tsdata/series.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace easytime::tsdata {
namespace {

TEST(Domain, NamesRoundTrip) {
  for (int i = 0; i < kNumDomains; ++i) {
    Domain d = static_cast<Domain>(i);
    auto parsed = ParseDomain(DomainName(d));
    ASSERT_TRUE(parsed.ok()) << DomainName(d);
    EXPECT_EQ(*parsed, d);
  }
  EXPECT_TRUE(ParseDomain("TRAFFIC").ok());  // case-insensitive
  EXPECT_FALSE(ParseDomain("astrology").ok());
}

TEST(Series, BasicAccessors) {
  Series s("load", {1.0, 2.0, 3.0});
  EXPECT_EQ(s.name(), "load");
  EXPECT_EQ(s.length(), 3u);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  s.Append(4.0);
  EXPECT_EQ(s.length(), 4u);
  s.set_period_hint(24);
  EXPECT_EQ(s.period_hint(), 24u);
}

TEST(Series, SliceClampsToBounds) {
  Series s("x", {0, 1, 2, 3, 4});
  EXPECT_EQ(s.Slice(1, 3), (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(s.Slice(3, 10), (std::vector<double>{3, 4}));
  EXPECT_TRUE(s.Slice(9, 2).empty());
}

TEST(Dataset, ChannelsMustAlign) {
  Dataset ds("multi");
  EXPECT_TRUE(ds.AddChannel(Series("a", {1, 2, 3})).ok());
  EXPECT_TRUE(ds.AddChannel(Series("b", {4, 5, 6})).ok());
  EXPECT_FALSE(ds.AddChannel(Series("c", {7, 8})).ok());
  EXPECT_EQ(ds.num_channels(), 2u);
  EXPECT_EQ(ds.length(), 3u);
  EXPECT_TRUE(ds.multivariate());
  EXPECT_EQ(ds.primary().name(), "a");
}

TEST(DatasetCsv, SaveLoadRoundTrip) {
  Dataset ds("roundtrip");
  (void)ds.AddChannel(Series("ch0", {1.5, 2.5, 3.5}));
  (void)ds.AddChannel(Series("ch1", {-1.0, 0.0, 1.0}));
  std::string path =
      (std::filesystem::temp_directory_path() / "easytime_ds.csv").string();
  ASSERT_TRUE(SaveDatasetCsv(ds, path).ok());

  auto loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->name(), "easytime_ds");
  ASSERT_EQ(loaded->num_channels(), 2u);
  EXPECT_EQ(loaded->channel(0).name(), "ch0");
  EXPECT_NEAR(loaded->channel(0)[2], 3.5, 1e-9);
  EXPECT_NEAR(loaded->channel(1)[0], -1.0, 1e-9);
  std::remove(path.c_str());
}

TEST(DatasetCsv, SkipsDateColumn) {
  std::string path =
      (std::filesystem::temp_directory_path() / "easytime_dated.csv").string();
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("date,value\n2024-01-01,1.0\n2024-01-02,2.0\n", f);
    fclose(f);
  }
  auto ds = LoadDatasetCsv(path);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_channels(), 1u);
  EXPECT_EQ(ds->channel(0).name(), "value");
  EXPECT_EQ(ds->length(), 2u);
  std::remove(path.c_str());
}

TEST(DatasetCsv, NonNumericValueIsError) {
  std::string path =
      (std::filesystem::temp_directory_path() / "easytime_bad.csv").string();
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("v\n1.0\nnot_a_number\n", f);
    fclose(f);
  }
  EXPECT_FALSE(LoadDatasetCsv(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace easytime::tsdata
