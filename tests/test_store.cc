// Storage engine tests (DESIGN.md §9): CRC framing, WAL append/rotate/
// recover, torn-tail and bit-flip corruption corpus, snapshot fallback,
// compaction's segment-deletion guard, fault injection on the
// store.append/store.fsync/store.snapshot points, fork/SIGKILL torture for
// kill-mid-append and kill-mid-compaction, and the KnowledgeStore round
// trip on top of it all.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/mman.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/json.h"
#include "knowledge/knowledge_store.h"
#include "store/crc32.h"
#include "store/record_store.h"
#include "store/snapshot.h"
#include "store/wal.h"

namespace easytime::store {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

std::string TestDir(const std::string& leaf) {
  std::string dir =
      (fs::path(::testing::TempDir()) / ("easytime_" + leaf)).string();
  fs::remove_all(dir);
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

void FlipByte(const std::string& path, size_t offset) {
  std::string content = ReadFile(path);
  ASSERT_LT(offset, content.size());
  content[offset] = static_cast<char>(content[offset] ^ 0x40);
  WriteFile(path, content);
}

std::vector<std::string> WalFiles(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().filename().string().rfind("wal-", 0) == 0) {
      out.push_back(e.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// CRC32

TEST(StoreCrcTest, MatchesTheIeeeCheckValue) {
  // The canonical CRC-32 check vector.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(StoreCrcTest, IncrementalEqualsOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t first = Crc32(data.substr(0, split));
    uint32_t both = Crc32(data.substr(split), first);
    EXPECT_EQ(both, Crc32(data)) << "split at " << split;
  }
}

TEST(StoreCrcTest, SliceBy8MatchesBytewiseReference) {
  // Reference: classic byte-at-a-time loop over the reflected polynomial.
  auto reference = [](const std::string& s) {
    uint32_t c = 0xFFFFFFFFu;
    for (unsigned char byte : s) {
      c ^= byte;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
    }
    return ~c;
  };
  std::string s;
  for (int i = 0; i < 300; ++i) {
    s.push_back(static_cast<char>((i * 131 + 7) & 0xFF));
    EXPECT_EQ(Crc32(s), reference(s)) << "length " << s.size();
  }
}

// ---------------------------------------------------------------------------
// WAL

TEST(StoreWalTest, AppendAndReplayRoundTrip) {
  const std::string dir = TestDir("wal_roundtrip");
  {
    auto wal = Wal::Open(dir, WalOptions{}, 0, nullptr);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (int i = 1; i <= 20; ++i) {
      auto seq = (*wal)->Append("payload-" + std::to_string(i));
      ASSERT_TRUE(seq.ok()) << seq.status().ToString();
      EXPECT_EQ(*seq, static_cast<uint64_t>(i));
    }
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  std::vector<std::pair<uint64_t, std::string>> replayed;
  WalRecoveryStats stats;
  auto wal = Wal::Open(
      dir, WalOptions{}, 0,
      [&](uint64_t seq, std::string&& p) { replayed.emplace_back(seq, p); },
      &stats);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_EQ(replayed.size(), 20u);
  for (int i = 1; i <= 20; ++i) {
    EXPECT_EQ(replayed[i - 1].first, static_cast<uint64_t>(i));
    EXPECT_EQ(replayed[i - 1].second, "payload-" + std::to_string(i));
  }
  EXPECT_EQ(stats.records_replayed, 20u);
  EXPECT_EQ(stats.bytes_dropped, 0u);
  EXPECT_EQ((*wal)->last_seq(), 20u);
  fs::remove_all(dir);
}

TEST(StoreWalTest, RotatesSegmentsAndRecoversAcrossThem) {
  const std::string dir = TestDir("wal_rotate");
  WalOptions opt;
  opt.segment_bytes = 64;  // a couple of records per segment
  {
    auto wal = Wal::Open(dir, opt, 0, nullptr);
    ASSERT_TRUE(wal.ok());
    for (int i = 1; i <= 12; ++i) {
      ASSERT_TRUE((*wal)->Append("rec-" + std::to_string(i)).ok());
    }
    EXPECT_GE((*wal)->SegmentPaths().size(), 3u)
        << "64-byte segments must rotate";
  }
  size_t replayed = 0;
  uint64_t expect = 1;
  auto wal = Wal::Open(dir, opt, 0, [&](uint64_t seq, std::string&& p) {
    EXPECT_EQ(seq, expect);
    EXPECT_EQ(p, "rec-" + std::to_string(seq));
    ++expect;
    ++replayed;
  });
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(replayed, 12u);
  // Appends continue the chain after reopen.
  auto seq = (*wal)->Append("rec-13");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 13u);
  fs::remove_all(dir);
}

TEST(StoreWalTest, AfterSeqSkipsCoveredRecords) {
  const std::string dir = TestDir("wal_afterseq");
  {
    auto wal = Wal::Open(dir, WalOptions{}, 0, nullptr);
    ASSERT_TRUE(wal.ok());
    for (int i = 1; i <= 10; ++i) {
      ASSERT_TRUE((*wal)->Append("r" + std::to_string(i)).ok());
    }
  }
  std::vector<uint64_t> seqs;
  WalRecoveryStats stats;
  auto wal = Wal::Open(
      dir, WalOptions{}, 7,
      [&](uint64_t seq, std::string&&) { seqs.push_back(seq); }, &stats);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(seqs, (std::vector<uint64_t>{8, 9, 10}));
  EXPECT_EQ(stats.records_skipped, 7u);
  fs::remove_all(dir);
}

TEST(StoreWalTest, TornTailIsTruncatedAndAppendsContinue) {
  const std::string dir = TestDir("wal_torn");
  {
    auto wal = Wal::Open(dir, WalOptions{}, 0, nullptr);
    ASSERT_TRUE(wal.ok());
    for (int i = 1; i <= 5; ++i) {
      ASSERT_TRUE((*wal)->Append("payload-" + std::to_string(i)).ok());
    }
  }
  auto files = WalFiles(dir);
  ASSERT_EQ(files.size(), 1u);
  // Chop mid-record: drop the last 4 bytes of the final frame.
  const std::string before = ReadFile(files[0]);
  fs::resize_file(files[0], before.size() - 4);

  size_t replayed = 0;
  WalRecoveryStats stats;
  auto wal = Wal::Open(
      dir, WalOptions{}, 0,
      [&](uint64_t, std::string&&) { ++replayed; }, &stats);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(replayed, 4u) << "only the torn final record may be lost";
  EXPECT_GT(stats.bytes_dropped, 0u);
  EXPECT_EQ((*wal)->last_seq(), 4u);
  // The chain continues seamlessly past the truncation point.
  auto seq = (*wal)->Append("payload-5b");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 5u);
  fs::remove_all(dir);
}

TEST(StoreWalTest, BitFlipCorpusKeepsTheValidPrefix) {
  // Records have fixed size: header 16 + per-record (16-byte frame + 11-byte
  // payload). Flipping any byte of record k must keep records 0..k-1 and
  // drop k and everything after — never crash, never return garbage.
  const size_t kHeader = 16, kFrame = 16, kPayload = 11;
  const size_t kRecordBytes = kFrame + kPayload;
  for (size_t victim = 0; victim < 6; ++victim) {
    for (size_t offset_in_rec : {size_t{0}, size_t{5}, size_t{8},
                                 size_t{kFrame}, size_t{kRecordBytes - 1}}) {
      const std::string dir = TestDir("wal_bitflip");
      {
        auto wal = Wal::Open(dir, WalOptions{}, 0, nullptr);
        ASSERT_TRUE(wal.ok());
        for (int i = 0; i < 6; ++i) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "payload-%03d", i);
          ASSERT_TRUE((*wal)->Append(buf).ok());
        }
      }
      auto files = WalFiles(dir);
      ASSERT_EQ(files.size(), 1u);
      FlipByte(files[0], kHeader + victim * kRecordBytes + offset_in_rec);

      std::vector<std::string> replayed;
      WalRecoveryStats stats;
      auto wal = Wal::Open(
          dir, WalOptions{}, 0,
          [&](uint64_t, std::string&& p) { replayed.push_back(p); }, &stats);
      ASSERT_TRUE(wal.ok()) << wal.status().ToString();
      ASSERT_EQ(replayed.size(), victim)
          << "flip in record " << victim << " at +" << offset_in_rec;
      for (size_t i = 0; i < replayed.size(); ++i) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "payload-%03zu", i);
        EXPECT_EQ(replayed[i], buf);
      }
      EXPECT_GT(stats.bytes_dropped, 0u);
      fs::remove_all(dir);
    }
  }
}

TEST(StoreWalTest, MissingMiddleSegmentDropsEverythingAfterTheHole) {
  const std::string dir = TestDir("wal_hole");
  WalOptions opt;
  opt.segment_bytes = 64;
  {
    auto wal = Wal::Open(dir, opt, 0, nullptr);
    ASSERT_TRUE(wal.ok());
    for (int i = 1; i <= 12; ++i) {
      ASSERT_TRUE((*wal)->Append("rec-" + std::to_string(i)).ok());
    }
    ASSERT_GE((*wal)->SegmentPaths().size(), 3u);
  }
  auto files = WalFiles(dir);
  fs::remove(files[1]);  // punch a hole in the chain

  std::vector<uint64_t> seqs;
  WalRecoveryStats stats;
  auto wal = Wal::Open(
      dir, opt, 0, [&](uint64_t seq, std::string&&) { seqs.push_back(seq); },
      &stats);
  ASSERT_TRUE(wal.ok());
  // Only the first segment's records survive; later segments cannot apply.
  ASSERT_FALSE(seqs.empty());
  for (size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], i + 1);
  }
  EXPECT_LT(seqs.size(), 12u);
  EXPECT_GT(stats.segments_dropped, 0u);
  fs::remove_all(dir);
}

TEST(StoreWalTest, RemoveSegmentsCoveredByDeletesOnlyCoveredPrefix) {
  const std::string dir = TestDir("wal_remove");
  WalOptions opt;
  opt.segment_bytes = 64;
  auto wal = Wal::Open(dir, opt, 0, nullptr);
  ASSERT_TRUE(wal.ok());
  for (int i = 1; i <= 12; ++i) {
    ASSERT_TRUE((*wal)->Append("rec-" + std::to_string(i)).ok());
  }
  const size_t before = (*wal)->SegmentPaths().size();
  ASSERT_GE(before, 3u);
  ASSERT_TRUE((*wal)->RemoveSegmentsCoveredBy(5).ok());
  const size_t after = (*wal)->SegmentPaths().size();
  EXPECT_LT(after, before);
  // Everything above seq 5 must still replay after reopen.
  (*wal).reset();
  std::vector<uint64_t> seqs;
  auto reopened = Wal::Open(
      dir, opt, 5, [&](uint64_t seq, std::string&&) { seqs.push_back(seq); });
  ASSERT_TRUE(reopened.ok());
  ASSERT_FALSE(seqs.empty());
  EXPECT_EQ(seqs.back(), 12u);
  for (size_t i = 1; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], seqs[i - 1] + 1);
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Snapshots

TEST(StoreSnapshotTest, WriteAndLoadRoundTrip) {
  const std::string dir = TestDir("snap_roundtrip");
  fs::create_directories(dir);
  ASSERT_TRUE(WriteSnapshot(dir, 42, "state-42").ok());
  auto loaded = LoadLatestSnapshot(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->seq, 42u);
  EXPECT_EQ(loaded->state, "state-42");
  EXPECT_EQ(loaded->corrupt_skipped, 0u);
  fs::remove_all(dir);
}

TEST(StoreSnapshotTest, CorruptNewestFallsBackToPreviousImage) {
  const std::string dir = TestDir("snap_fallback");
  fs::create_directories(dir);
  ASSERT_TRUE(WriteSnapshot(dir, 10, "older-state").ok());
  ASSERT_TRUE(WriteSnapshot(dir, 20, "newer-state").ok());
  auto snaps = ListSnapshots(dir);
  ASSERT_EQ(snaps.size(), 2u);
  FlipByte(snaps[1].path, 30);  // corrupt the newer image's body

  auto loaded = LoadLatestSnapshot(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->seq, 10u);
  EXPECT_EQ(loaded->state, "older-state");
  EXPECT_EQ(loaded->corrupt_skipped, 1u);
  fs::remove_all(dir);
}

TEST(StoreSnapshotTest, PruneKeepsTheNewestAndReportsOldestRetained) {
  const std::string dir = TestDir("snap_prune");
  fs::create_directories(dir);
  for (uint64_t seq : {5u, 10u, 15u, 20u}) {
    ASSERT_TRUE(WriteSnapshot(dir, seq, "s" + std::to_string(seq)).ok());
  }
  auto oldest = PruneSnapshots(dir, 2);
  ASSERT_TRUE(oldest.ok());
  EXPECT_EQ(*oldest, 15u);
  auto snaps = ListSnapshots(dir);
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].seq, 15u);
  EXPECT_EQ(snaps[1].seq, 20u);
  // Fewer snapshots than keep: nothing deleted, sentinel 0 returned.
  auto none = PruneSnapshots(dir, 3);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, 0u);
  EXPECT_EQ(ListSnapshots(dir).size(), 2u);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// RecordStore (snapshot + WAL tail)

TEST(StoreRecordStoreTest, AppendRecoverRoundTripWithoutSnapshot) {
  const std::string dir = TestDir("rs_roundtrip");
  {
    auto rs = RecordStore::Open(dir, RecordStoreOptions{}, nullptr);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    for (int i = 1; i <= 8; ++i) {
      ASSERT_TRUE((*rs)->Append("rec-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*rs)->Sync().ok());
  }
  RecordStoreRecovery rec;
  auto rs = RecordStore::Open(dir, RecordStoreOptions{}, &rec);
  ASSERT_TRUE(rs.ok());
  EXPECT_FALSE(rec.has_snapshot);
  ASSERT_EQ(rec.tail.size(), 8u);
  for (size_t i = 0; i < rec.tail.size(); ++i) {
    EXPECT_EQ(rec.tail[i].first, i + 1);
    EXPECT_EQ(rec.tail[i].second, "rec-" + std::to_string(i + 1));
  }
  EXPECT_EQ(rec.last_seq, 8u);
  fs::remove_all(dir);
}

TEST(StoreRecordStoreTest, CompactionSnapshotsAndRecoveryReplaysOnlyTheTail) {
  const std::string dir = TestDir("rs_compact");
  {
    auto rs = RecordStore::Open(dir, RecordStoreOptions{}, nullptr);
    ASSERT_TRUE(rs.ok());
    for (int i = 1; i <= 5; ++i) {
      ASSERT_TRUE((*rs)->Append("pre-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*rs)->Compact("full-state-at-5").ok());
    EXPECT_EQ((*rs)->snapshot_seq(), 5u);
    EXPECT_EQ((*rs)->appends_since_compaction(), 0u);
    for (int i = 6; i <= 7; ++i) {
      ASSERT_TRUE((*rs)->Append("post-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*rs)->Sync().ok());
  }
  RecordStoreRecovery rec;
  auto rs = RecordStore::Open(dir, RecordStoreOptions{}, &rec);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rec.has_snapshot);
  EXPECT_EQ(rec.snapshot, "full-state-at-5");
  EXPECT_EQ(rec.snapshot_seq, 5u);
  ASSERT_EQ(rec.tail.size(), 2u);
  EXPECT_EQ(rec.tail[0].second, "post-6");
  EXPECT_EQ(rec.tail[1].second, "post-7");
  fs::remove_all(dir);
}

TEST(StoreRecordStoreTest, SegmentsSurviveUntilASecondSnapshotExists) {
  const std::string dir = TestDir("rs_guard");
  RecordStoreOptions opt;
  opt.segment_bytes = 1;  // every record in its own segment
  opt.keep_snapshots = 2;
  auto rs = RecordStore::Open(dir, opt, nullptr);
  ASSERT_TRUE(rs.ok());
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE((*rs)->Append("r" + std::to_string(i)).ok());
  }
  const size_t segments_before = WalFiles(dir).size();
  ASSERT_TRUE((*rs)->Compact("state-4").ok());
  // One snapshot only: the deletion guard must keep every segment so a
  // corrupt snapshot can still fall back to pure WAL replay.
  EXPECT_EQ(WalFiles(dir).size(), segments_before);
  ASSERT_TRUE((*rs)->Append("r5").ok());
  ASSERT_TRUE((*rs)->Compact("state-5").ok());
  // Two snapshots: segments covered by the OLDEST retained (seq 4) go.
  EXPECT_LT(WalFiles(dir).size(), segments_before);
  EXPECT_EQ(ListSnapshots(dir).size(), 2u);
  fs::remove_all(dir);
}

TEST(StoreRecordStoreTest, TruncatedTailLosesAtMostTheTornFinalRecord) {
  const std::string dir = TestDir("rs_torn");
  RecordStoreOptions opt;
  opt.sync_every_append = true;
  {
    auto rs = RecordStore::Open(dir, opt, nullptr);
    ASSERT_TRUE(rs.ok());
    for (int i = 1; i <= 10; ++i) {
      ASSERT_TRUE((*rs)->Append("rec-" + std::to_string(i)).ok());
    }
  }
  auto files = WalFiles(dir);
  ASSERT_EQ(files.size(), 1u);
  fs::resize_file(files[0], fs::file_size(files[0]) - 3);

  RecordStoreRecovery rec;
  auto rs = RecordStore::Open(dir, opt, &rec);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rec.tail.size(), 9u) << "at most the torn final record is lost";
  EXPECT_EQ(rec.tail.back().second, "rec-9");
  EXPECT_GT(rec.bytes_dropped, 0u);
  fs::remove_all(dir);
}

TEST(StoreRecordStoreTest, CorruptNewestSnapshotFallsBackAndReplaysMore) {
  const std::string dir = TestDir("rs_snapfallback");
  RecordStoreOptions opt;
  opt.keep_snapshots = 2;
  {
    auto rs = RecordStore::Open(dir, opt, nullptr);
    ASSERT_TRUE(rs.ok());
    for (int i = 1; i <= 3; ++i) {
      ASSERT_TRUE((*rs)->Append("r" + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*rs)->Compact("state-at-3").ok());
    for (int i = 4; i <= 5; ++i) {
      ASSERT_TRUE((*rs)->Append("r" + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*rs)->Compact("state-at-5").ok());
    ASSERT_TRUE((*rs)->Append("r6").ok());
    ASSERT_TRUE((*rs)->Sync().ok());
  }
  auto snaps = ListSnapshots(dir);
  ASSERT_EQ(snaps.size(), 2u);
  FlipByte(snaps[1].path, 28);  // corrupt the newest image

  RecordStoreRecovery rec;
  auto rs = RecordStore::Open(dir, opt, &rec);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rec.has_snapshot);
  EXPECT_EQ(rec.snapshot, "state-at-3");
  EXPECT_EQ(rec.snapshot_seq, 3u);
  EXPECT_EQ(rec.corrupt_snapshots, 1u);
  // The WAL still holds 4..6 because the deletion guard only trusts the
  // oldest retained snapshot — nothing is lost.
  ASSERT_EQ(rec.tail.size(), 3u);
  EXPECT_EQ(rec.tail[0].second, "r4");
  EXPECT_EQ(rec.tail[2].second, "r6");
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Fault injection on the store.* points

class StoreFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().DisarmAll(); }
  void TearDown() override { FaultRegistry::Global().DisarmAll(); }
};

TEST_F(StoreFaultTest, AppendFaultPropagatesAndTheStoreSurvives) {
  const std::string dir = TestDir("fault_append");
  auto rs = RecordStore::Open(dir, RecordStoreOptions{}, nullptr);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE((*rs)->Append("before").ok());

  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.code = StatusCode::kIOError;
  ASSERT_TRUE(FaultRegistry::Global().Arm("store.append", spec).ok());
  auto failed = (*rs)->Append("dropped");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError);

  FaultRegistry::Global().DisarmAll();
  ASSERT_TRUE((*rs)->Append("after").ok());
  ASSERT_TRUE((*rs)->Sync().ok());
  (*rs).reset();

  RecordStoreRecovery rec;
  auto reopened = RecordStore::Open(dir, RecordStoreOptions{}, &rec);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(rec.tail.size(), 2u) << "the faulted append must leave no trace";
  EXPECT_EQ(rec.tail[0].second, "before");
  EXPECT_EQ(rec.tail[1].second, "after");
  fs::remove_all(dir);
}

TEST_F(StoreFaultTest, FsyncFaultFailsSyncAndCompactButNotTheData) {
  const std::string dir = TestDir("fault_fsync");
  auto rs = RecordStore::Open(dir, RecordStoreOptions{}, nullptr);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE((*rs)->Append("r1").ok());

  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.code = StatusCode::kIOError;
  ASSERT_TRUE(FaultRegistry::Global().Arm("store.fsync", spec).ok());
  EXPECT_FALSE((*rs)->Sync().ok());
  // Compact syncs the WAL before snapshotting, so it fails too — and must
  // not have deleted anything.
  EXPECT_FALSE((*rs)->Compact("state").ok());
  EXPECT_TRUE(ListSnapshots(dir).empty());

  FaultRegistry::Global().DisarmAll();
  EXPECT_TRUE((*rs)->Sync().ok());
  EXPECT_TRUE((*rs)->Compact("state").ok());
  EXPECT_EQ(ListSnapshots(dir).size(), 1u);
  fs::remove_all(dir);
}

TEST_F(StoreFaultTest, SnapshotFaultFailsCompactionButReplayStillRecovers) {
  const std::string dir = TestDir("fault_snapshot");
  {
    auto rs = RecordStore::Open(dir, RecordStoreOptions{}, nullptr);
    ASSERT_TRUE(rs.ok());
    for (int i = 1; i <= 4; ++i) {
      ASSERT_TRUE((*rs)->Append("r" + std::to_string(i)).ok());
    }
    FaultSpec spec;
    spec.kind = FaultKind::kError;
    spec.code = StatusCode::kIOError;
    ASSERT_TRUE(FaultRegistry::Global().Arm("store.snapshot", spec).ok());
    EXPECT_FALSE((*rs)->Compact("state").ok());
    EXPECT_TRUE(ListSnapshots(dir).empty());
    FaultRegistry::Global().DisarmAll();
    ASSERT_TRUE((*rs)->Sync().ok());
  }
  RecordStoreRecovery rec;
  auto rs = RecordStore::Open(dir, RecordStoreOptions{}, &rec);
  ASSERT_TRUE(rs.ok());
  EXPECT_FALSE(rec.has_snapshot);
  EXPECT_EQ(rec.tail.size(), 4u)
      << "a failed compaction must never lose WAL records";
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// fork/SIGKILL torture

TEST(StoreKillTest, KillMidAppendKeepsAValidContiguousPrefix) {
  const std::string dir = TestDir("kill_append");
  pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: fsync-per-append writer, killed mid-stream by the parent.
    RecordStoreOptions opt;
    opt.sync_every_append = true;
    opt.segment_bytes = 2048;
    auto rs = RecordStore::Open(dir, opt, nullptr);
    if (!rs.ok()) _exit(1);
    for (uint64_t i = 1;; ++i) {
      if (!(*rs)->Append("rec-" + std::to_string(i)).ok()) _exit(2);
    }
  }
  std::this_thread::sleep_for(200ms);
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  RecordStoreRecovery rec;
  auto rs = RecordStore::Open(dir, RecordStoreOptions{}, &rec);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_GT(rec.tail.size(), 0u) << "200ms of fsynced appends must survive";
  for (size_t i = 0; i < rec.tail.size(); ++i) {
    ASSERT_EQ(rec.tail[i].first, i + 1) << "sequence chain must be contiguous";
    ASSERT_EQ(rec.tail[i].second, "rec-" + std::to_string(i + 1))
        << "every recovered record must be intact";
  }
  // The store keeps working after crash recovery.
  auto seq = (*rs)->Append("post-crash");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, rec.last_seq + 1);
  fs::remove_all(dir);
}

TEST(StoreKillTest, KillMidCompactionNeverLosesAcknowledgedRecords) {
  const std::string dir = TestDir("kill_compact");
  pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: append + compact continuously; each snapshot records how many
    // records it covers, so the parent can reconstruct the full set.
    RecordStoreOptions opt;
    opt.sync_every_append = true;
    opt.segment_bytes = 512;
    opt.keep_snapshots = 2;
    auto rs = RecordStore::Open(dir, opt, nullptr);
    if (!rs.ok()) _exit(1);
    for (uint64_t i = 1;; ++i) {
      if (!(*rs)->Append("rec-" + std::to_string(i)).ok()) _exit(2);
      if (i % 4 == 0) {
        easytime::Json state = easytime::Json::Object();
        state.Set("n", static_cast<int64_t>((*rs)->last_seq()));
        if (!(*rs)->Compact(state.Dump()).ok()) _exit(3);
      }
    }
  }
  std::this_thread::sleep_for(250ms);
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  RecordStoreRecovery rec;
  RecordStoreOptions opt;
  opt.keep_snapshots = 2;
  auto rs = RecordStore::Open(dir, opt, &rec);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  uint64_t covered = 0;
  if (rec.has_snapshot) {
    auto state = easytime::Json::Parse(rec.snapshot);
    ASSERT_TRUE(state.ok()) << "snapshots must never be half-written";
    covered = static_cast<uint64_t>(state->GetInt("n", -1));
    ASSERT_EQ(covered, rec.snapshot_seq)
        << "a snapshot must cover exactly the records up to its seq";
  }
  // Snapshot + tail reconstruct a contiguous record set 1..last_seq.
  uint64_t expect = covered + 1;
  for (const auto& [seq, payload] : rec.tail) {
    ASSERT_EQ(seq, expect);
    ASSERT_EQ(payload, "rec-" + std::to_string(seq));
    ++expect;
  }
  EXPECT_GT(expect - 1, 0u) << "the run must have persisted something";
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// WAL group commit

TEST(StoreGroupCommitTest, ConcurrentAppendersAllDurableAndCoalesced) {
  const std::string dir = TestDir("group_commit");
  RecordStoreOptions opt;
  opt.sync_every_append = true;
  opt.group_commit = true;
  opt.group_commit_max_batch = 16;
  opt.group_commit_max_delay_us = 2000;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  {
    auto rs = RecordStore::Open(dir, opt, nullptr);
    ASSERT_TRUE(rs.ok());
    std::vector<std::thread> workers;
    std::atomic<int> failures{0};
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          std::string payload =
              "t" + std::to_string(t) + "-" + std::to_string(i);
          if (!(*rs)->Append(payload).ok()) failures.fetch_add(1);
        }
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(failures.load(), 0);
    const WalGroupCommitStats stats = (*rs)->group_commit_stats();
    EXPECT_EQ(stats.records, uint64_t{kThreads * kPerThread});
    EXPECT_GE(stats.batches, 1u);
    EXPECT_LT(stats.batches, stats.records)
        << "group commit must coalesce concurrent appends";
  }
  // Every acked append is on disk: reopen and count the contiguous chain.
  RecordStoreRecovery rec;
  auto rs = RecordStore::Open(dir, RecordStoreOptions{}, &rec);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rec.tail.size(), size_t{kThreads * kPerThread});
  for (size_t i = 0; i < rec.tail.size(); ++i) {
    EXPECT_EQ(rec.tail[i].first, i + 1);
  }
  fs::remove_all(dir);
}

TEST(StoreGroupCommitTest, SingleAppenderStillGetsDurability) {
  const std::string dir = TestDir("group_commit_single");
  RecordStoreOptions opt;
  opt.sync_every_append = true;
  opt.group_commit = true;
  {
    auto rs = RecordStore::Open(dir, opt, nullptr);
    ASSERT_TRUE(rs.ok());
    for (int i = 1; i <= 5; ++i) {
      auto seq = (*rs)->Append("r" + std::to_string(i));
      ASSERT_TRUE(seq.ok());
      EXPECT_EQ(*seq, static_cast<uint64_t>(i));
    }
    EXPECT_EQ((*rs)->group_commit_stats().records, 5u);
  }
  RecordStoreRecovery rec;
  auto rs = RecordStore::Open(dir, RecordStoreOptions{}, &rec);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rec.tail.size(), 5u);
  fs::remove_all(dir);
}

TEST_F(StoreFaultTest, GroupCommitFsyncFaultFailsTheWaitingAppend) {
  const std::string dir = TestDir("group_commit_fault");
  RecordStoreOptions opt;
  opt.sync_every_append = true;
  opt.group_commit = true;
  auto rs = RecordStore::Open(dir, opt, nullptr);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE((*rs)->Append("before").ok());

  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.code = StatusCode::kIOError;
  ASSERT_TRUE(FaultRegistry::Global().Arm("store.fsync", spec).ok());
  auto failed = (*rs)->Append("unacked");
  ASSERT_FALSE(failed.ok()) << "a failed batch fsync must fail its waiters";
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError);

  FaultRegistry::Global().DisarmAll();
  EXPECT_TRUE((*rs)->Append("after").ok());
  fs::remove_all(dir);
}

// The REVIEW scenario: rotation's segment-close fsync fails while the
// committer's own batch fsyncs (of the NEW segment) keep succeeding. No
// record written after the failure may be acked durable — the failed
// segment's tail can be torn on disk, and recovery would then drop every
// later segment as an unreachable suffix.
TEST_F(StoreFaultTest, RotationCloseFsyncFailurePoisonsGroupCommitAcks) {
  const std::string dir = TestDir("group_commit_rotate_fault");
  RecordStoreOptions opt;
  opt.sync_every_append = true;
  opt.group_commit = true;
  opt.segment_bytes = 256;  // one biggish record fills a segment
  {
    auto rs = RecordStore::Open(dir, opt, nullptr);
    ASSERT_TRUE(rs.ok());
    ASSERT_TRUE((*rs)->Append(std::string(300, 'a')).ok());

    // Only the close fsync fails; the committer's "store.fsync" stays live.
    FaultSpec spec;
    spec.kind = FaultKind::kError;
    spec.code = StatusCode::kIOError;
    ASSERT_TRUE(
        FaultRegistry::Global().Arm("store.segment_close_fsync", spec).ok());
    auto rotated = (*rs)->Append("lives-in-the-new-segment");
    ASSERT_FALSE(rotated.ok())
        << "a record behind a possibly-torn segment must not be acked";
    EXPECT_EQ(rotated.status().code(), StatusCode::kIOError);

    // The failure is fail-stop for this open: even after the fault clears,
    // the chain behind new records may still be torn on disk.
    FaultRegistry::Global().DisarmAll();
    EXPECT_FALSE((*rs)->Append("still-poisoned").ok());
  }
  // Reopen recovers the valid prefix and appends durably again.
  RecordStoreRecovery rec;
  auto rs = RecordStore::Open(dir, opt, &rec);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_GE(rec.tail.size(), 1u);
  EXPECT_EQ(rec.tail[0].second, std::string(300, 'a'));
  EXPECT_TRUE((*rs)->Append("after-reopen").ok());
  fs::remove_all(dir);
}

TEST(StoreKillTest, KillMidGroupCommitNeverLosesAnAckedRecord) {
  const std::string dir = TestDir("kill_group_commit");
  // Shared ack table: the child flips acked[seq] only AFTER Append returned,
  // i.e. after the batch fsync covering seq reported success. The parent
  // then asserts every acked record survived the SIGKILL.
  constexpr size_t kMaxSeq = 1 << 20;
  auto* acked = static_cast<volatile unsigned char*>(
      mmap(nullptr, kMaxSeq, PROT_READ | PROT_WRITE,
           MAP_SHARED | MAP_ANONYMOUS, -1, 0));
  ASSERT_NE(acked, MAP_FAILED);

  pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    RecordStoreOptions opt;
    opt.sync_every_append = true;
    opt.group_commit = true;
    opt.segment_bytes = 4096;  // exercise rotation under group commit too
    auto rs = RecordStore::Open(dir, opt, nullptr);
    if (!rs.ok()) _exit(1);
    std::vector<std::thread> workers;
    for (int t = 0; t < 8; ++t) {
      workers.emplace_back([&, t] {
        for (uint64_t i = 0;; ++i) {
          auto seq =
              (*rs)->Append("t" + std::to_string(t) + "-" + std::to_string(i));
          if (!seq.ok()) _exit(2);
          if (*seq < kMaxSeq) acked[*seq] = 1;
        }
      });
    }
    for (auto& w : workers) w.join();  // unreachable; killed by the parent
    _exit(0);
  }
  std::this_thread::sleep_for(300ms);
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  RecordStoreRecovery rec;
  auto rs = RecordStore::Open(dir, RecordStoreOptions{}, &rec);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  // Recovery yields a contiguous chain 1..last_seq (no torn batch replayed
  // past a gap), and that chain must cover every acknowledged record.
  uint64_t expect = 1;
  for (const auto& [seq, payload] : rec.tail) {
    ASSERT_EQ(seq, expect) << "recovered chain must be contiguous";
    ASSERT_FALSE(payload.empty());
    ++expect;
  }
  uint64_t max_acked = 0;
  for (size_t s = 1; s < kMaxSeq; ++s) {
    if (acked[s]) max_acked = s;
  }
  EXPECT_GT(max_acked, 0u) << "300ms of group commits must ack something";
  for (size_t s = 1; s <= max_acked; ++s) {
    if (acked[s]) {
      ASSERT_LE(s, rec.last_seq)
          << "acked record " << s << " lost by the crash";
    }
  }
  munmap(const_cast<unsigned char*>(acked), kMaxSeq);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// KnowledgeStore round trip

knowledge::ResultEntry MakeResult(const std::string& dataset,
                                  const std::string& method, double mae) {
  knowledge::ResultEntry e;
  e.dataset = dataset;
  e.method = method;
  e.strategy = "fixed";
  e.horizon = 24;
  e.metrics = {{"mae", mae}, {"rmse", mae * 1.5}};
  e.fit_seconds = 0.25;
  e.forecast_seconds = 0.01;
  return e;
}

void SeedKb(knowledge::KnowledgeBase* kb) {
  std::vector<knowledge::DatasetMeta> datasets(2);
  datasets[0].name = "d1";
  datasets[0].domain = "traffic";
  datasets[0].length = 400;
  datasets[0].characteristics.seasonality = 0.1 + 0.2;  // not representable
  datasets[0].characteristics.trend = 1.0 / 3.0;
  datasets[0].characteristics.period = 24;
  datasets[1].name = "d2";
  datasets[1].domain = "energy";
  datasets[1].multivariate = true;
  datasets[1].num_channels = 3;
  std::vector<knowledge::MethodMeta> methods(2);
  methods[0].name = "naive";
  methods[0].family = "statistical";
  methods[1].name = "theta";
  methods[1].family = "statistical";
  std::vector<knowledge::ResultEntry> results;
  results.push_back(MakeResult("d1", "naive", 0.1));
  results.push_back(MakeResult("d1", "theta", 1.0 / 7.0));
  results.push_back(MakeResult("d2", "naive", 0.3));
  kb->Restore(std::move(datasets), std::move(methods), std::move(results));
}

TEST(StoreKnowledgeTest, ResultEntryJsonRoundTripIsExact) {
  knowledge::ResultEntry e = MakeResult("d1", "theta", 1.0 / 7.0);
  e.metrics["smape"] = 0.1 + 0.2;
  e.metrics["bad"] = std::nan("");
  auto back = knowledge::ResultEntryFromJson(knowledge::ResultEntryToJson(e));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->dataset, e.dataset);
  EXPECT_EQ(back->method, e.method);
  EXPECT_EQ(back->horizon, e.horizon);
  EXPECT_EQ(back->metrics.at("mae"), e.metrics.at("mae"))
      << "doubles must round-trip bit-exactly";
  EXPECT_EQ(back->metrics.at("smape"), e.metrics.at("smape"));
  EXPECT_TRUE(std::isnan(back->metrics.at("bad")))
      << "non-finite metrics keep their key";
}

TEST(StoreKnowledgeTest, CheckpointThenReopenRestoresIdenticalRows) {
  const std::string dir = TestDir("ks_roundtrip");
  knowledge::KnowledgeBase kb;
  SeedKb(&kb);

  knowledge::KnowledgeStore::Options opt;
  opt.dir = dir;
  {
    knowledge::KnowledgeStore::OpenInfo info;
    auto ks = knowledge::KnowledgeStore::Open(opt, &kb, &info);
    ASSERT_TRUE(ks.ok()) << ks.status().ToString();
    EXPECT_FALSE(info.restored) << "an empty store must not touch the KB";
    ASSERT_TRUE((*ks)->Checkpoint(kb).ok());
  }

  knowledge::KnowledgeBase restored;
  const uint64_t version_before = restored.version();
  knowledge::KnowledgeStore::OpenInfo info;
  auto ks = knowledge::KnowledgeStore::Open(opt, &restored, &info);
  ASSERT_TRUE(ks.ok()) << ks.status().ToString();
  ASSERT_TRUE(info.restored);
  EXPECT_EQ(restored.version(), version_before + 1)
      << "bulk restore must advance version() exactly once";
  ASSERT_EQ(restored.NumDatasets(), kb.NumDatasets());
  ASSERT_EQ(restored.NumMethods(), kb.NumMethods());
  ASSERT_EQ(restored.NumResults(), kb.NumResults());
  auto d1 = restored.GetDataset("d1");
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ((*d1)->characteristics.seasonality, 0.1 + 0.2);
  EXPECT_EQ((*d1)->characteristics.trend, 1.0 / 3.0);
  EXPECT_EQ((*d1)->characteristics.period, 24u);
  EXPECT_EQ(restored.MethodScores("d1", "mae"), kb.MethodScores("d1", "mae"));
  fs::remove_all(dir);
}

TEST(StoreKnowledgeTest, AppendedResultsReplayFromTheWalTail) {
  const std::string dir = TestDir("ks_tail");
  knowledge::KnowledgeStore::Options opt;
  opt.dir = dir;
  opt.compact_every = 0;  // keep appends in the tail, no auto-snapshot
  {
    knowledge::KnowledgeBase kb;
    SeedKb(&kb);
    auto ks = knowledge::KnowledgeStore::Open(opt, &kb, nullptr);
    ASSERT_TRUE(ks.ok());
    ASSERT_TRUE((*ks)->Checkpoint(kb).ok());
    // Simulate a committed evaluation: KB first, then the durable append.
    std::vector<knowledge::ResultEntry> fresh;
    fresh.push_back(MakeResult("d2", "theta", 0.7));
    ASSERT_TRUE((*ks)->AppendResults(fresh, kb).ok());
  }
  knowledge::KnowledgeBase restored;
  knowledge::KnowledgeStore::OpenInfo info;
  auto ks = knowledge::KnowledgeStore::Open(opt, &restored, &info);
  ASSERT_TRUE(ks.ok());
  ASSERT_TRUE(info.restored);
  EXPECT_EQ(restored.NumResults(), 4u)
      << "3 snapshotted results + 1 WAL-tail result";
  auto scores = restored.MethodScores("d2", "mae");
  EXPECT_EQ(scores.at("theta"), 0.7);
  fs::remove_all(dir);
}

TEST(StoreKnowledgeTest, TornKnowledgeWalTailLosesOnlyTheLastAppend) {
  const std::string dir = TestDir("ks_torn");
  knowledge::KnowledgeStore::Options opt;
  opt.dir = dir;
  opt.compact_every = 0;
  {
    knowledge::KnowledgeBase kb;
    SeedKb(&kb);
    auto ks = knowledge::KnowledgeStore::Open(opt, &kb, nullptr);
    ASSERT_TRUE(ks.ok());
    std::vector<knowledge::ResultEntry> a{MakeResult("d1", "ses", 0.4)};
    std::vector<knowledge::ResultEntry> b{MakeResult("d2", "ses", 0.5)};
    ASSERT_TRUE((*ks)->AppendResults(a, kb).ok());
    ASSERT_TRUE((*ks)->AppendResults(b, kb).ok());
  }
  auto files = WalFiles(dir);
  ASSERT_EQ(files.size(), 1u);
  fs::resize_file(files[0], fs::file_size(files[0]) - 5);

  knowledge::KnowledgeBase restored;
  knowledge::KnowledgeStore::OpenInfo info;
  auto ks = knowledge::KnowledgeStore::Open(opt, &restored, &info);
  ASSERT_TRUE(ks.ok());
  ASSERT_TRUE(info.restored);
  EXPECT_EQ(info.recovery.tail.size(), 1u);
  auto scores_d1 = restored.MethodScores("d1", "mae");
  EXPECT_EQ(scores_d1.count("ses"), 1u) << "the intact append must survive";
  auto scores_d2 = restored.MethodScores("d2", "mae");
  EXPECT_EQ(scores_d2.count("ses"), 0u) << "only the torn append is lost";
  fs::remove_all(dir);
}

}  // namespace
}  // namespace easytime::store
