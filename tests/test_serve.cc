#include "serve/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "serve/request.h"
#include "serve/tcp_server.h"

namespace easytime::serve {
namespace {

core::EasyTime::Options SmallSystemOptions() {
  core::EasyTime::Options opt;
  opt.suite.univariate_per_domain = 1;
  opt.suite.multivariate_total = 1;
  opt.suite.min_length = 180;
  opt.suite.max_length = 220;
  opt.seed_eval.horizon = 12;
  opt.seed_eval.metrics = {"mae", "rmse"};
  opt.seed_methods = {"naive", "seasonal_naive", "theta", "ses", "drift"};
  opt.ensemble.top_k = 2;
  opt.ensemble.ts2vec.epochs = 3;
  opt.ensemble.ts2vec.repr_dim = 8;
  opt.ensemble.ts2vec.hidden_dim = 10;
  opt.ensemble.ts2vec.depth = 2;
  opt.ensemble.classifier.epochs = 80;
  return opt;
}

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto system = core::EasyTime::Create(SmallSystemOptions());
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    system_ = system->release();
    server_ = new ForecastServer(system_);
    server_->Start();
  }
  static void TearDownTestSuite() {
    delete server_;
    server_ = nullptr;
    delete system_;
    system_ = nullptr;
  }

  static std::string FirstDataset() {
    return system_->repository()->names()[0];
  }

  static core::EasyTime* system_;
  static ForecastServer* server_;
};

core::EasyTime* ServeTest::system_ = nullptr;
ForecastServer* ServeTest::server_ = nullptr;

Json MustParse(const std::string& s) {
  auto j = Json::Parse(s);
  EXPECT_TRUE(j.ok()) << j.status().ToString() << " in " << s;
  return std::move(*j);
}

// ---------------------------------------------------------------------------
// Protocol / envelope behaviour
// ---------------------------------------------------------------------------

TEST_F(ServeTest, MalformedJsonIsAnErrorResponseNotACrash) {
  Json resp = MustParse(server_->HandleLine("this is not json{{{"));
  EXPECT_FALSE(resp.GetBool("ok", true));
  EXPECT_EQ(resp.Get("error").GetString("code", ""), "ParseError");
}

TEST_F(ServeTest, NonObjectAndMissingEndpointAreRejected) {
  Json arr = MustParse(server_->HandleLine("[1,2,3]"));
  EXPECT_FALSE(arr.GetBool("ok", true));

  Json no_ep = MustParse(server_->HandleLine(R"({"id": 7, "params": {}})"));
  EXPECT_FALSE(no_ep.GetBool("ok", true));
  // A parsable id is still echoed so the client can correlate the error.
  EXPECT_EQ(no_ep.GetInt("id", -1), 7);
}

TEST_F(ServeTest, UnknownEndpointIsNotFound) {
  Json resp = MustParse(
      server_->HandleLine(R"({"id": 1, "endpoint": "teleport"})"));
  EXPECT_FALSE(resp.GetBool("ok", true));
  EXPECT_EQ(resp.Get("error").GetString("code", ""), "NotFound");
}

TEST_F(ServeTest, OversizedRequestIsRejected) {
  std::string big(server_->options().max_request_bytes + 1, 'x');
  std::string line = R"({"endpoint": "ask", "params": {"question": ")" + big +
                     R"("}})";
  Json resp = MustParse(server_->HandleLine(line));
  EXPECT_FALSE(resp.GetBool("ok", true));
  EXPECT_EQ(resp.Get("error").GetString("code", ""), "InvalidArgument");
}

TEST_F(ServeTest, PingAndStatsAlwaysAnswer) {
  Json pong = MustParse(server_->HandleLine(R"({"endpoint": "ping"})"));
  EXPECT_TRUE(pong.GetBool("ok", false));
  EXPECT_TRUE(pong.Get("result").GetBool("pong", false));

  Json stats = MustParse(server_->HandleLine(R"({"endpoint": "stats"})"));
  ASSERT_TRUE(stats.GetBool("ok", false));
  EXPECT_TRUE(stats.Get("result").Has("endpoints"));
  EXPECT_TRUE(stats.Get("result").Has("cache"));
  EXPECT_TRUE(stats.Get("result").Has("jobs"));
}

// ---------------------------------------------------------------------------
// Fast lane
// ---------------------------------------------------------------------------

TEST_F(ServeTest, ForecastOnRepositoryDataset) {
  Json params = Json::Object();
  params.Set("dataset", FirstDataset());
  params.Set("method", "theta");
  params.Set("horizon", static_cast<int64_t>(8));
  auto result = server_->Call("forecast", params);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->Get("values").size(), 8u);
  EXPECT_EQ(result->GetString("method", ""), "theta");
  EXPECT_EQ(result->GetString("source", ""), FirstDataset());
}

TEST_F(ServeTest, ForecastOnInlineValues) {
  Json params = Json::Object();
  Json values = Json::Array();
  for (int t = 0; t < 64; ++t) values.Append(10.0 + 0.5 * t);
  params.Set("values", std::move(values));
  params.Set("method", "drift");
  params.Set("horizon", static_cast<int64_t>(4));
  auto result = server_->Call("forecast", params);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->Get("values").size(), 4u);
  // Drift on a rising line keeps rising.
  EXPECT_GT(result->Get("values").items()[3].AsDouble(), 40.0);
}

TEST_F(ServeTest, ForecastValidation) {
  Json params = Json::Object();
  params.Set("dataset", FirstDataset());
  EXPECT_TRUE(server_->Call("forecast", params).status().IsInvalidArgument());

  params.Set("method", "no_such_method");
  EXPECT_FALSE(server_->Call("forecast", params).ok());

  params.Set("method", "naive");
  params.Set("horizon", static_cast<int64_t>(100000));
  EXPECT_EQ(server_->Call("forecast", params).status().code(),
            StatusCode::kOutOfRange);

  Json bad = Json::Object();
  bad.Set("method", "naive");
  bad.Set("dataset", "ghost_dataset");
  EXPECT_FALSE(server_->Call("forecast", bad).ok());
}

TEST_F(ServeTest, RecommendAndAskAndSql) {
  Json rp = Json::Object();
  rp.Set("dataset", FirstDataset());
  rp.Set("k", static_cast<int64_t>(2));
  auto rec = server_->Call("recommend", rp);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->Get("recommendations").size(), 2u);

  Json ap = Json::Object();
  ap.Set("question", "What is the average mae of theta?");
  auto ask = server_->Call("ask", ap);
  ASSERT_TRUE(ask.ok()) << ask.status().ToString();

  Json sp = Json::Object();
  sp.Set("query", "SELECT method FROM results LIMIT 1");
  auto sql = server_->Call("sql", sp);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();

  EXPECT_TRUE(server_->Call("ask", Json::Object())
                  .status().IsInvalidArgument());
}

TEST_F(ServeTest, SqlEndpointRunsForecastTableFunctions) {
  // The sql endpoint accepts DDL/DML too, so a client can stage its own
  // series and forecast them without leaving the wire protocol.
  Json ddl = Json::Object();
  ddl.Set("query", "CREATE TABLE serve_demo_ts (t INTEGER, v REAL)");
  ASSERT_TRUE(server_->Call("sql", ddl).ok());
  std::string insert = "INSERT INTO serve_demo_ts VALUES ";
  for (int i = 0; i < 48; ++i) {
    if (i) insert += ", ";
    insert += "(" + std::to_string(i) + ", " +
              std::to_string(10.0 + 0.5 * i) + ")";
  }
  Json dml = Json::Object();
  dml.Set("query", insert);
  ASSERT_TRUE(server_->Call("sql", dml).ok());

  Json fc = Json::Object();
  fc.Set("query",
         "SELECT * FROM TS_FORECAST(serve_demo_ts, t, v, model := 'drift', "
         "horizon := 4)");
  auto resp = server_->Call("sql", fc);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->Get("rows").size(), 4u);
}

TEST_F(ServeTest, SqlEndpointHonorsDeadlineUnderSlowFits) {
  Json ddl = Json::Object();
  ddl.Set("query", "CREATE TABLE serve_slow_ts (g INTEGER, t INTEGER, v REAL)");
  ASSERT_TRUE(server_->Call("sql", ddl).ok());
  std::string insert = "INSERT INTO serve_slow_ts VALUES ";
  for (int g = 0; g < 20; ++g) {
    for (int i = 0; i < 24; ++i) {
      if (g || i) insert += ", ";
      insert += "(" + std::to_string(g) + ", " + std::to_string(i) + ", " +
                std::to_string(5.0 + i + g) + ")";
    }
  }
  Json dml = Json::Object();
  dml.Set("query", insert);
  ASSERT_TRUE(server_->Call("sql", dml).ok());

  // Each of the 20 group fits sleeps 20ms under the injected fault; a 40ms
  // request deadline must surface DeadlineExceeded instead of ~400ms of
  // forced work.
  FaultSpec spec;
  spec.kind = FaultKind::kDelay;
  spec.delay_ms = 20.0;
  ASSERT_TRUE(FaultRegistry::Global().Arm("sql.forecast", spec).ok());
  Json fc = Json::Object();
  fc.Set("query",
         "SELECT * FROM TS_FORECAST_BY(serve_slow_ts, g, t, v, "
         "model := 'naive', horizon := 2)");
  fc.Set("deadline_ms", 40.0);
  auto resp = server_->Call("sql", fc);
  FaultRegistry::Global().DisarmAll();
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status().IsDeadlineExceeded()) << resp.status().ToString();

  // With the fault disarmed and no deadline, the same query completes.
  fc = Json::Object();
  fc.Set("query",
         "SELECT * FROM TS_FORECAST_BY(serve_slow_ts, g, t, v, "
         "model := 'naive', horizon := 2)");
  auto ok = server_->Call("sql", fc);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->Get("rows").size(), 40u);
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

std::string ForecastLine(const std::string& dataset, const std::string& method,
                         int id, int horizon = 6) {
  Json req = Json::Object();
  req.Set("id", static_cast<int64_t>(id));
  req.Set("endpoint", "forecast");
  Json params = Json::Object();
  params.Set("dataset", dataset);
  params.Set("method", method);
  params.Set("horizon", static_cast<int64_t>(horizon));
  req.Set("params", std::move(params));
  return req.Dump();
}

TEST_F(ServeTest, CacheHitOnRepeatAndKeyOrderInsensitive) {
  Json miss = MustParse(
      server_->HandleLine(ForecastLine(FirstDataset(), "ses", 100)));
  ASSERT_TRUE(miss.GetBool("ok", false));
  EXPECT_FALSE(miss.GetBool("cached", true));

  Json hit = MustParse(
      server_->HandleLine(ForecastLine(FirstDataset(), "ses", 101)));
  ASSERT_TRUE(hit.GetBool("ok", false));
  EXPECT_TRUE(hit.GetBool("cached", false));
  EXPECT_EQ(hit.GetInt("id", -1), 101);  // fresh id on a cached payload
  EXPECT_EQ(hit.Get("result").Dump(), miss.Get("result").Dump());

  // Same request with keys in a different order canonicalizes to the same
  // cache entry.
  std::string reordered = R"({"id": 102, "endpoint": "forecast", "params": )"
                          R"({"horizon": 6, "method": "ses", "dataset": ")" +
                          FirstDataset() + R"("}})";
  Json hit2 = MustParse(server_->HandleLine(reordered));
  ASSERT_TRUE(hit2.GetBool("ok", false));
  EXPECT_TRUE(hit2.GetBool("cached", false));
}

TEST_F(ServeTest, CacheSurvivesEvaluationAndIsInvalidatedByAppend) {
  Json first = MustParse(
      server_->HandleLine(ForecastLine(FirstDataset(), "holt", 200)));
  ASSERT_TRUE(first.GetBool("ok", false));
  Json warm = MustParse(
      server_->HandleLine(ForecastLine(FirstDataset(), "holt", 201)));
  EXPECT_TRUE(warm.GetBool("cached", false));

  // An evaluation appends results to the knowledge base (its version moves)
  // but changes no series data — under tag-based invalidation the cached
  // forecast stays valid. This is exactly the over-invalidation the old
  // version-counter scheme suffered from.
  uint64_t before = system_->knowledge().version();
  auto cfg = Json::Parse(R"({
    "methods": ["window_average"],
    "evaluation": {"strategy": "fixed", "horizon": 6, "metrics": ["mae"]}
  })");
  ASSERT_TRUE(cfg.ok());
  auto report = system_->OneClickEvaluate(*cfg);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(system_->knowledge().version(), before);

  Json still_warm = MustParse(
      server_->HandleLine(ForecastLine(FirstDataset(), "holt", 202)));
  ASSERT_TRUE(still_warm.GetBool("ok", false));
  EXPECT_TRUE(still_warm.GetBool("cached", false));

  // A streaming append to the dataset the entry was computed from DOES
  // invalidate it.
  Json append = Json::Object();
  append.Set("dataset", FirstDataset());
  Json values = Json::Array();
  for (int i = 0; i < 4; ++i) values.Append(1.0 + 0.1 * i);
  append.Set("values", std::move(values));
  auto appended = server_->Call("append", append);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  EXPECT_GE(appended->GetInt("cache_invalidated", 0), 1);

  Json cold = MustParse(
      server_->HandleLine(ForecastLine(FirstDataset(), "holt", 203)));
  ASSERT_TRUE(cold.GetBool("ok", false));
  EXPECT_FALSE(cold.GetBool("cached", true));
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST_F(ServeTest, FastLaneQueueFullIsRejectedNotDropped) {
  // A dedicated tiny server: 1 worker, admission capacity of 2, no
  // batching. The forecast class reserves one slot and may borrow the
  // shared headroom for a second pending request; a third while both are
  // still pending bounces with Unavailable instead of queueing unboundedly.
  ForecastServer::Options opt;
  opt.num_worker_threads = 1;
  opt.fast_queue_capacity = 2;
  opt.enable_batching = false;
  opt.cache_capacity = 0;  // keep every request on the slow path
  ForecastServer small(system_, opt);
  small.Start();

  Json slow = Json::Object();
  slow.Set("dataset", FirstDataset());
  slow.Set("method", "naive");
  slow.Set("horizon", static_cast<int64_t>(2));
  slow.Set("sleep_ms", 600.0);

  // Two staggered slow requests fill both admission slots (pending counts
  // running and queued work alike).
  std::vector<std::thread> occupants;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < 2; ++i) {
    occupants.emplace_back([&small, slow, &ok_count]() {
      auto r = small.Call("forecast", slow);
      if (r.ok()) ok_count.fetch_add(1);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  Json quick = Json::Object();
  quick.Set("dataset", FirstDataset());
  quick.Set("method", "naive");
  quick.Set("horizon", static_cast<int64_t>(2));
  auto rejected = small.Call("forecast", quick);
  EXPECT_TRUE(rejected.status().IsUnavailable())
      << rejected.status().ToString();

  for (auto& t : occupants) t.join();
  EXPECT_EQ(ok_count.load(), 2);  // the admitted requests still completed
  small.Stop();

  Json stats = small.StatsJson();
  EXPECT_GE(stats.Get("endpoints").Get("forecast").GetInt("rejected", 0), 1);
}

// ---------------------------------------------------------------------------
// Async evaluation lane
// ---------------------------------------------------------------------------

TEST_F(ServeTest, EvaluateJobRunsToCompletionAndLeavesCacheWarm) {
  Json warmup = MustParse(
      server_->HandleLine(ForecastLine(FirstDataset(), "theta", 300)));
  ASSERT_TRUE(warmup.GetBool("ok", false));

  Json params = MustParse(R"({
    "methods": ["drift"],
    "evaluation": {"strategy": "fixed", "horizon": 6, "metrics": ["mae"]}
  })");
  auto submitted = server_->Call("evaluate", params);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  int64_t job = submitted->GetInt("job", -1);
  ASSERT_GE(job, 0);

  Json poll = Json::Object();
  poll.Set("job", job);
  std::string state;
  for (int i = 0; i < 600; ++i) {
    auto status = server_->Call("job_status", poll);
    ASSERT_TRUE(status.ok()) << status.status().ToString();
    state = status->GetString("state", "");
    if (state == "done" || state == "failed" || state == "cancelled") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(state, "done");

  auto final_status = server_->Call("job_status", poll);
  ASSERT_TRUE(final_status.ok());
  EXPECT_GT(final_status->Get("result").GetInt("records", 0), 0);

  // The job committed benchmark results but touched no series data, so the
  // pre-job forecast entry is still valid under tag-based invalidation.
  Json after = MustParse(
      server_->HandleLine(ForecastLine(FirstDataset(), "theta", 301)));
  ASSERT_TRUE(after.GetBool("ok", false));
  EXPECT_TRUE(after.GetBool("cached", false));
}

TEST_F(ServeTest, QueuedJobCanBeCancelledAndJobQueueIsBounded) {
  ForecastServer::Options opt;
  opt.evaluate_queue_capacity = 1;
  ForecastServer small(system_, opt);
  small.Start();

  // Long job holds the single job worker; epochs make it slow enough that
  // the queued job behind it stays queued while we cancel it.
  Json heavy = MustParse(R"({
    "datasets": [")" + FirstDataset() + R"("],
    "methods": [{"name": "gru", "config": {"epochs": 60}}],
    "evaluation": {"strategy": "fixed", "horizon": 6, "metrics": ["mae"]}
  })");
  auto first = small.Call("evaluate", heavy);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  Json light = MustParse(R"({
    "methods": ["naive"],
    "evaluation": {"strategy": "fixed", "horizon": 6, "metrics": ["mae"]}
  })");
  // The queue slot behind the running job is eventually taken by this one.
  Result<Json> second = Status::Internal("unset");
  for (int i = 0; i < 200; ++i) {
    second = small.Call("evaluate", light);
    if (second.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  // With the worker busy and the queue slot taken, the lane is full.
  auto third = small.Call("evaluate", light);
  EXPECT_TRUE(third.status().IsUnavailable()) << third.status().ToString();

  // Cancel the queued job: it must finish as "cancelled", never run.
  Json cancel_params = Json::Object();
  cancel_params.Set("job", second->GetInt("job", -1));
  auto cancelled = small.Call("cancel", cancel_params);
  ASSERT_TRUE(cancelled.ok()) << cancelled.status().ToString();
  EXPECT_EQ(cancelled->GetString("state", ""), "cancelled");

  // Cancel the running job too; it either reacts to the flag (cancelled) or
  // had already finished (done) — both are clean terminal states.
  Json cancel_first = Json::Object();
  cancel_first.Set("job", first->GetInt("job", -1));
  ASSERT_TRUE(small.Call("cancel", cancel_first).ok());
  std::string state;
  // Generous budget: one in-flight pair can take tens of seconds under
  // TSan's ~20x slowdown, and the loop exits as soon as the job lands.
  for (int i = 0; i < 6000; ++i) {
    auto status = small.Call("job_status", cancel_first);
    ASSERT_TRUE(status.ok());
    state = status->GetString("state", "");
    if (state != "queued" && state != "running") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(state == "cancelled" || state == "done") << state;

  EXPECT_TRUE(small.Call("cancel", MustParse(R"({"job": 999})"))
                  .status().IsNotFound());
  small.Stop();
}

// ---------------------------------------------------------------------------
// Loopback TCP front-end
// ---------------------------------------------------------------------------

class LoopbackClient {
 public:
  explicit LoopbackClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ = fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                                       sizeof(addr)) == 0;
  }
  ~LoopbackClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  bool SendLine(const std::string& line) {
    std::string data = line + "\n";
    return ::send(fd_, data.data(), data.size(), 0) ==
           static_cast<ssize_t>(data.size());
  }
  std::string ReadLine() {
    std::string line;
    char c;
    while (::recv(fd_, &c, 1, 0) == 1) {
      if (c == '\n') return line;
      line.push_back(c);
    }
    return line;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

TEST_F(ServeTest, TcpLoopbackServesPipelinedRequests) {
  TcpServer tcp(server_);
  auto started = tcp.Start();
  ASSERT_TRUE(started.ok()) << started.ToString();
  ASSERT_GT(tcp.port(), 0);

  LoopbackClient client(tcp.port());
  ASSERT_TRUE(client.connected());

  // Pipeline: two valid requests and a malformed one on a single connection.
  ASSERT_TRUE(client.SendLine(R"({"id": 1, "endpoint": "ping"})"));
  ASSERT_TRUE(client.SendLine("not json"));
  ASSERT_TRUE(client.SendLine(ForecastLine(FirstDataset(), "naive", 2)));

  Json r1 = MustParse(client.ReadLine());
  EXPECT_EQ(r1.GetInt("id", -1), 1);
  EXPECT_TRUE(r1.GetBool("ok", false));

  Json r2 = MustParse(client.ReadLine());
  EXPECT_FALSE(r2.GetBool("ok", true));

  Json r3 = MustParse(client.ReadLine());
  EXPECT_EQ(r3.GetInt("id", -1), 2);
  EXPECT_TRUE(r3.GetBool("ok", false));
  EXPECT_EQ(r3.Get("result").Get("values").size(), 6u);

  tcp.Stop();
  EXPECT_FALSE(tcp.running());
}

}  // namespace
}  // namespace easytime::serve
