#include "nn/gru.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace easytime::nn {
namespace {

using ::easytime::testing::GradCheck;

double WeightedSum(const Matrix& out, const Matrix& g) {
  double s = 0.0;
  for (size_t i = 0; i < out.raw().size(); ++i) {
    s += out.raw()[i] * g.raw()[i];
  }
  return s;
}

TEST(Gru, OutputShape) {
  Rng rng(1);
  Gru gru(2, 4, &rng);
  Matrix x = Matrix::Gaussian(7, 2, 1.0, &rng);
  Matrix h = gru.Forward(x);
  EXPECT_EQ(h.rows(), 7u);
  EXPECT_EQ(h.cols(), 4u);
  EXPECT_EQ(gru.Params().size(), 10u);
}

TEST(Gru, HiddenStateBounded) {
  Rng rng(2);
  Gru gru(1, 8, &rng);
  Matrix x = Matrix::Gaussian(50, 1, 3.0, &rng);
  Matrix h = gru.Forward(x);
  // GRU hidden values are convex mixes of tanh outputs: |h| <= 1.
  for (double v : h.raw()) {
    EXPECT_LE(std::fabs(v), 1.0 + 1e-9);
  }
}

TEST(Gru, DeterministicForSeed) {
  Rng rng1(3), rng2(3);
  Gru a(1, 4, &rng1), b(1, 4, &rng2);
  Matrix x = Matrix::Gaussian(10, 1, 1.0, &rng1);
  Matrix ha = a.Forward(x);
  Matrix hb = b.Forward(x);
  for (size_t i = 0; i < ha.raw().size(); ++i) {
    EXPECT_DOUBLE_EQ(ha.raw()[i], hb.raw()[i]);
  }
}

TEST(Gru, ParameterGradientsMatchFiniteDifferences) {
  Rng rng(4);
  Gru gru(2, 3, &rng);
  Matrix x = Matrix::Gaussian(5, 2, 0.8, &rng);
  Matrix g = Matrix::Gaussian(5, 3, 1.0, &rng);

  auto loss = [&]() { return WeightedSum(gru.Forward(x), g); };
  for (Param* p : gru.Params()) {
    auto grad = [&]() {
      for (Param* q : gru.Params()) q->ZeroGrad();
      gru.Forward(x);
      gru.Backward(g);
      return p->grad;
    };
    EXPECT_LT(GradCheck(&p->value, loss, grad, 1e-5), 5e-4);
  }
}

TEST(Gru, InputGradientsMatchFiniteDifferences) {
  Rng rng(5);
  Gru gru(2, 3, &rng);
  Matrix x = Matrix::Gaussian(6, 2, 0.8, &rng);
  Matrix g = Matrix::Gaussian(6, 3, 1.0, &rng);
  auto loss = [&]() { return WeightedSum(gru.Forward(x), g); };
  auto grad_x = [&]() {
    for (Param* q : gru.Params()) q->ZeroGrad();
    gru.Forward(x);
    return gru.Backward(g);
  };
  EXPECT_LT(GradCheck(&x, loss, grad_x, 1e-5), 5e-4);
}

TEST(Gru, GradientFlowsThroughTime) {
  // Gradient injected only at the last step must reach early inputs.
  Rng rng(6);
  Gru gru(1, 4, &rng);
  Matrix x = Matrix::Gaussian(8, 1, 1.0, &rng);
  gru.Forward(x);
  Matrix g(8, 4);
  for (size_t c = 0; c < 4; ++c) g.at(7, c) = 1.0;
  Matrix dx = gru.Backward(g);
  double early = 0.0;
  for (size_t t = 0; t < 4; ++t) early += std::fabs(dx.at(t, 0));
  EXPECT_GT(early, 1e-8);
}

}  // namespace
}  // namespace easytime::nn
