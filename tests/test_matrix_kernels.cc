/// \file test_matrix_kernels.cc
/// \brief Randomized equivalence tests: the blocked GEMM path and the fused
/// transpose variants must match the naive reference kernel. The blocked
/// kernel accumulates each output element in the same ascending-k order as
/// the reference, so agreement is expected to be bit-exact; the assertions
/// use the 1e-9 contract from the issue to stay robust across toolchains.

#include "nn/matrix.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace easytime::nn {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m.at(i, j) = rng->Gaussian(0.0, 1.0);
  }
  return m;
}

void ExpectNear(const Matrix& got, const Matrix& want, double tol = 1e-9) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (size_t i = 0; i < got.rows(); ++i) {
    for (size_t j = 0; j < got.cols(); ++j) {
      ASSERT_NEAR(got.at(i, j), want.at(i, j), tol)
          << "mismatch at (" << i << ", " << j << ")";
    }
  }
}

struct Shape {
  size_t m, k, n;
};

// Covers degenerate 1xn / nx1, odd non-tile-aligned sizes, sizes around the
// micro-tile and panel boundaries, and one shape large enough to cross the
// parallel-dispatch threshold.
const Shape kShapes[] = {
    {1, 1, 1},   {1, 7, 1},    {1, 13, 97},  {64, 3, 1},    {5, 4, 3},
    {4, 8, 8},   {8, 64, 16},  {17, 29, 31}, {33, 65, 129}, {70, 64, 256},
    {96, 80, 72}, {256, 256, 256},
};

TEST(MatrixKernels, BlockedMatchesNaiveAcrossShapes) {
  Rng rng(1234);
  for (const Shape& s : kShapes) {
    Matrix a = RandomMatrix(s.m, s.k, &rng);
    Matrix b = RandomMatrix(s.k, s.n, &rng);
    ExpectNear(a.MatMul(b), a.MatMulNaive(b));
  }
}

TEST(MatrixKernels, MatMulIntoReusesOutput) {
  Rng rng(99);
  Matrix out;
  for (const Shape& s : {Shape{8, 16, 24}, Shape{24, 16, 8}, Shape{3, 5, 7}}) {
    Matrix a = RandomMatrix(s.m, s.k, &rng);
    Matrix b = RandomMatrix(s.k, s.n, &rng);
    MatMulInto(a, b, &out);  // reused across iterations with changing shapes
    ExpectNear(out, a.MatMulNaive(b));
  }
}

TEST(MatrixKernels, TransAMatchesExplicitTranspose) {
  Rng rng(77);
  for (const Shape& s : kShapes) {
    // a is (k x m): MatMulTransA computes a^T * b without materializing a^T.
    Matrix a = RandomMatrix(s.k, s.m, &rng);
    Matrix b = RandomMatrix(s.k, s.n, &rng);
    ExpectNear(MatMulTransA(a, b), a.Transposed().MatMulNaive(b));
  }
}

TEST(MatrixKernels, TransBMatchesExplicitTranspose) {
  Rng rng(78);
  for (const Shape& s : kShapes) {
    // b is (n x k): MatMulTransB computes a * b^T without materializing b^T.
    Matrix a = RandomMatrix(s.m, s.k, &rng);
    Matrix b = RandomMatrix(s.n, s.k, &rng);
    ExpectNear(MatMulTransB(a, b), a.MatMulNaive(b.Transposed()));
  }
}

TEST(MatrixKernels, TransAAccumulateAddsToExisting) {
  Rng rng(5);
  Matrix a = RandomMatrix(13, 9, &rng);   // (k x m)
  Matrix b = RandomMatrix(13, 11, &rng);  // (k x n)
  Matrix base = RandomMatrix(9, 11, &rng);
  Matrix got = base;
  MatMulTransAInto(a, b, &got, /*accumulate=*/true);
  Matrix want = base;
  want.Add(a.Transposed().MatMulNaive(b));
  ExpectNear(got, want);
}

TEST(MatrixKernels, TransBAccumulateAddsToExisting) {
  Rng rng(6);
  Matrix a = RandomMatrix(9, 13, &rng);   // (m x k)
  Matrix b = RandomMatrix(11, 13, &rng);  // (n x k)
  Matrix base = RandomMatrix(9, 11, &rng);
  Matrix got = base;
  MatMulTransBInto(a, b, &got, /*accumulate=*/true);
  Matrix want = base;
  want.Add(a.MatMulNaive(b.Transposed()));
  ExpectNear(got, want);
}

TEST(MatrixKernels, AddIntoAndHadamardInto) {
  Rng rng(7);
  Matrix a = RandomMatrix(6, 10, &rng);
  Matrix b = RandomMatrix(6, 10, &rng);
  Matrix sum, prod;
  AddInto(a, b, &sum);
  HadamardInto(a, b, &prod);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_DOUBLE_EQ(sum.at(i, j), a.at(i, j) + b.at(i, j));
      EXPECT_DOUBLE_EQ(prod.at(i, j), a.at(i, j) * b.at(i, j));
    }
  }
}

TEST(MatrixKernels, BlockedIsBitIdenticalToNaiveOnThisToolchain) {
  // Stronger than the 1e-9 contract: with contraction disabled in the kernel
  // TU, the ascending-k accumulation makes blocked == naive bit-for-bit.
  Rng rng(4321);
  Matrix a = RandomMatrix(96, 80, &rng);
  Matrix b = RandomMatrix(80, 72, &rng);
  Matrix blocked = a.MatMul(b);
  Matrix naive = a.MatMulNaive(b);
  for (size_t i = 0; i < blocked.rows() * blocked.cols(); ++i) {
    EXPECT_EQ(blocked.data()[i], naive.data()[i]);
  }
}

}  // namespace
}  // namespace easytime::nn
