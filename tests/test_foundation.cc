#include "ensemble/foundation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "eval/evaluator.h"
#include "methods/baselines.h"
#include "methods/registry.h"
#include "test_util.h"

namespace easytime::ensemble {
namespace {

using ::easytime::testing::MakeSeasonalSeries;

Ts2VecOptions TinyEncoder() {
  Ts2VecOptions o;
  o.repr_dim = 8;
  o.hidden_dim = 12;
  o.depth = 2;
  o.epochs = 4;
  o.crop_length = 48;
  return o;
}

FoundationOptions TinyFoundation() {
  FoundationOptions o;
  o.lookback = 24;
  o.horizon = 8;
  o.max_windows_per_series = 16;
  return o;
}

std::vector<std::vector<double>> Corpus(size_t n) {
  std::vector<std::vector<double>> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(MakeSeasonalSeries(160, 8 + 4 * (i % 3), 5.0, 0.02, 0.3,
                                     100 + i));
  }
  return out;
}

TEST(Foundation, PretrainValidatesInput) {
  EXPECT_FALSE(PretrainFoundation({}, TinyFoundation(), TinyEncoder()).ok());
  FoundationOptions bad = TinyFoundation();
  bad.lookback = 1;
  EXPECT_FALSE(PretrainFoundation(Corpus(4), bad, TinyEncoder()).ok());
  // Corpus of too-short series yields too few windows.
  std::vector<std::vector<double>> tiny = {{1, 2, 3}, {4, 5, 6}};
  EXPECT_FALSE(
      PretrainFoundation(tiny, TinyFoundation(), TinyEncoder()).ok());
}

TEST(Foundation, ZeroShotForecastShapes) {
  auto model = PretrainFoundation(Corpus(6), TinyFoundation(), TinyEncoder());
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  FoundationForecaster f(*model);
  auto series = MakeSeasonalSeries(140, 12, 4.0, 0.0, 0.3, 777);
  methods::FitContext ctx;
  ctx.horizon = 8;
  ASSERT_TRUE(f.Fit(series, ctx).ok());
  auto fc = f.Forecast(8).ValueOrDie();
  EXPECT_EQ(fc.size(), 8u);
  for (double v : fc) EXPECT_TRUE(std::isfinite(v));
  // Longer-than-pretrained horizons extend recursively.
  EXPECT_EQ(f.Forecast(20).ValueOrDie().size(), 20u);
  // Zero-shot on a brand-new history without refitting.
  auto other = MakeSeasonalSeries(90, 8, 3.0, 0.0, 0.2, 778);
  EXPECT_EQ(f.ForecastFrom(other, 8).ValueOrDie().size(), 8u);
}

TEST(Foundation, FitIsZeroShotNotTraining) {
  auto model = PretrainFoundation(Corpus(6), TinyFoundation(), TinyEncoder());
  ASSERT_TRUE(model.ok());
  // Two instances sharing the model produce identical forecasts for the
  // same history — nothing is trained per-instance.
  FoundationForecaster a(*model), b(*model);
  auto series = MakeSeasonalSeries(120, 12, 4.0, 0.0, 0.3, 5);
  methods::FitContext ctx;
  ctx.horizon = 6;
  ASSERT_TRUE(a.Fit(series, ctx).ok());
  ASSERT_TRUE(b.Fit(series, ctx).ok());
  auto fa = a.Forecast(6).ValueOrDie();
  auto fb = b.Forecast(6).ValueOrDie();
  for (size_t i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(fa[i], fb[i]);
}

TEST(Foundation, BeatsMeanBaselineOnFamiliarPatterns) {
  // Pretrained on period-8/12/16 sines; tested zero-shot on a fresh
  // period-12 sine it has never seen.
  auto model = PretrainFoundation(Corpus(10), TinyFoundation(), TinyEncoder());
  ASSERT_TRUE(model.ok());

  auto series = MakeSeasonalSeries(200, 12, 6.0, 0.0, 0.2, 4242);
  eval::EvalConfig cfg;
  cfg.horizon = 8;
  cfg.metrics = {"mae"};
  eval::Evaluator evaluator(cfg);

  FoundationForecaster foundation(*model);
  methods::MeanForecaster mean;
  double fm = evaluator.EvaluateValues(&foundation, series)
                  .ValueOrDie()
                  .metrics.at("mae");
  double mm =
      evaluator.EvaluateValues(&mean, series).ValueOrDie().metrics.at("mae");
  EXPECT_LT(fm, mm);
}

TEST(Foundation, RegistersIntoTheGlobalMethodRegistry) {
  auto model = PretrainFoundation(Corpus(6), TinyFoundation(), TinyEncoder());
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(RegisterFoundationMethod(*model).ok());
  auto& registry = methods::MethodRegistry::Global();
  ASSERT_TRUE(registry.Contains("ts2vec_foundation"));

  // Participates like any method: create -> fit -> forecast.
  auto m = registry.Create("ts2vec_foundation").ValueOrDie();
  auto series = MakeSeasonalSeries(120, 12, 4.0, 0.0, 0.3, 9);
  methods::FitContext ctx;
  ctx.horizon = 6;
  ASSERT_TRUE(m->Fit(series, ctx).ok());
  EXPECT_EQ(m->Forecast(6).ValueOrDie().size(), 6u);

  // Re-registering swaps the backing model without erroring.
  EXPECT_TRUE(RegisterFoundationMethod(*model).ok());
  EXPECT_FALSE(RegisterFoundationMethod(nullptr).ok());
}

TEST(Foundation, FitRejectsBadInput) {
  auto model = PretrainFoundation(Corpus(6), TinyFoundation(), TinyEncoder());
  ASSERT_TRUE(model.ok());
  FoundationForecaster f(*model);
  EXPECT_FALSE(f.Fit({1.0, 2.0}, {}).ok());
  EXPECT_FALSE(f.Forecast(4).ok());  // before Fit
  EXPECT_FALSE(f.ForecastFrom({}, 4).ok());
}

}  // namespace
}  // namespace easytime::ensemble
