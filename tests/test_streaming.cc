// Streaming-ingestion tests (ISSUE 9 tentpole): the "append" serve endpoint
// and the facade's AppendObservations underneath it — validation and
// at-most-once semantics, per-dataset data versions, amortized
// characteristics refresh, fine-grained cache invalidation (append to A
// must not evict B), durability across restarts and a fork+SIGKILL mid-
// append, a TSan-able append/forecast race, a malformed-append fuzz sweep,
// and the "backtest" async job built on top of the appended data
// (completion, endpoint/type conflicts, checkpoint resume).

#include "serve/server.h"

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/easytime.h"
#include "eval/backtest.h"
#include "serve/job_manager.h"
#include "store/record_store.h"
#include "tsdata/append_log.h"
#include "tsdata/generator.h"
#include "tsdata/repository.h"

namespace easytime::serve {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

std::string TestDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() /
                 ("easytime_streaming_" + name + "_" +
                  std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir.string();
}

core::EasyTime::Options SmallSystemOptions() {
  core::EasyTime::Options opt;
  opt.suite.univariate_per_domain = 1;
  opt.suite.multivariate_total = 1;
  opt.suite.min_length = 180;
  opt.suite.max_length = 220;
  opt.seed_eval.horizon = 12;
  opt.seed_eval.metrics = {"mae", "rmse"};
  opt.seed_methods = {"naive", "seasonal_naive", "theta", "ses", "drift"};
  opt.ensemble.top_k = 2;
  opt.ensemble.ts2vec.epochs = 3;
  opt.ensemble.ts2vec.repr_dim = 8;
  opt.ensemble.ts2vec.hidden_dim = 10;
  opt.ensemble.ts2vec.depth = 2;
  opt.ensemble.classifier.epochs = 80;
  return opt;
}

/// Shared system + server for the in-memory streaming tests. Each TEST runs
/// in its own process (gtest_discover_tests), so every test sees a freshly
/// seeded suite — append side effects never leak between tests.
class StreamingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto system = core::EasyTime::Create(SmallSystemOptions());
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    system_ = system->release();
    server_ = new ForecastServer(system_);
    server_->Start();
  }
  static void TearDownTestSuite() {
    delete server_;
    server_ = nullptr;
    delete system_;
    system_ = nullptr;
  }

  static std::string FirstDataset() {
    return system_->repository()->names()[0];
  }
  static std::string SecondDataset() {
    return system_->repository()->names()[1];
  }

  static size_t Length(const std::string& dataset) {
    auto snap = system_->SeriesSnapshot(dataset);
    EXPECT_TRUE(snap.ok()) << snap.status().ToString();
    return snap.ok() ? snap->length() : 0;
  }

  /// One append batch as the serve endpoint sees it.
  static Json AppendParams(const std::string& dataset,
                           const std::vector<double>& values) {
    Json params = Json::Object();
    params.Set("dataset", dataset);
    Json arr = Json::Array();
    for (double v : values) arr.Append(v);
    params.Set("values", std::move(arr));
    return params;
  }

  static Json ForecastParams(const std::string& dataset) {
    Json params = Json::Object();
    params.Set("dataset", dataset);
    params.Set("method", "ses");
    params.Set("horizon", static_cast<int64_t>(6));
    return params;
  }

  /// Forecasts via HandleLine so the envelope's "cached" flag is visible.
  static Json ForecastEnvelope(const std::string& dataset, int64_t id) {
    Json req = Json::Object();
    req.Set("id", id);
    req.Set("endpoint", "forecast");
    req.Set("params", ForecastParams(dataset));
    auto resp = Json::Parse(server_->HandleLine(req.Dump()));
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
    return resp.ok() ? std::move(*resp) : Json::Object();
  }

  static core::EasyTime* system_;
  static ForecastServer* server_;
};

core::EasyTime* StreamingTest::system_ = nullptr;
ForecastServer* StreamingTest::server_ = nullptr;

// ---------------------------------------------------------------------------
// Facade append: outcomes, validation, at-most-once
// ---------------------------------------------------------------------------

using StreamingAppendTest = StreamingTest;

TEST_F(StreamingAppendTest, AppendGrowsSeriesAndReportsOutcome) {
  const std::string name = FirstDataset();
  const size_t before = Length(name);

  auto outcome =
      system_->AppendObservations(name, {{1.5, 2.5, 3.5, 4.5, 5.5}});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->appended, 5u);
  EXPECT_EQ(outcome->length, before + 5);
  EXPECT_GE(outcome->data_version, 1u);

  auto snap = system_->SeriesSnapshot(name);
  ASSERT_TRUE(snap.ok());
  ASSERT_EQ(snap->length(), before + 5);
  EXPECT_DOUBLE_EQ(snap->values()[before + 0], 1.5);
  EXPECT_DOUBLE_EQ(snap->values()[before + 4], 5.5);
}

TEST_F(StreamingAppendTest, AppendRejectsMalformedBatches) {
  const std::string name = FirstDataset();
  const size_t before = Length(name);

  auto empty = system_->AppendObservations(name, {});
  EXPECT_TRUE(empty.status().IsInvalidArgument());

  auto empty_channel = system_->AppendObservations(name, {{}});
  EXPECT_TRUE(empty_channel.status().IsInvalidArgument());

  auto ragged = system_->AppendObservations(name, {{1.0, 2.0}, {3.0}});
  EXPECT_TRUE(ragged.status().IsInvalidArgument());
  EXPECT_NE(ragged.status().message().find("unequal"), std::string::npos);

  auto non_finite = system_->AppendObservations(
      name, {{1.0, std::numeric_limits<double>::quiet_NaN()}});
  EXPECT_TRUE(non_finite.status().IsInvalidArgument());
  EXPECT_NE(non_finite.status().message().find("finite"), std::string::npos);

  auto unknown = system_->AppendObservations("no_such_series", {{1.0}});
  EXPECT_TRUE(unknown.status().IsNotFound());

  // Nothing above may have touched the series.
  EXPECT_EQ(Length(name), before);
}

TEST_F(StreamingAppendTest, ExpectedStartGivesAtMostOnceSemantics) {
  const std::string name = FirstDataset();
  const size_t n = Length(name);

  // A retry carrying an already-ingested offset is a duplicate.
  auto dup = system_->AppendObservations(name, {{9.0}}, n - 1);
  EXPECT_TRUE(dup.status().IsInvalidArgument());
  EXPECT_NE(dup.status().message().find("duplicate append"),
            std::string::npos);

  // An offset beyond the end would leave a gap.
  auto gap = system_->AppendObservations(name, {{9.0}}, n + 3);
  EXPECT_TRUE(gap.status().IsInvalidArgument());
  EXPECT_NE(gap.status().message().find("out-of-order append"),
            std::string::npos);

  EXPECT_EQ(Length(name), n);

  // The exact next offset is accepted, exactly once.
  auto ok = system_->AppendObservations(name, {{9.0, 10.0}}, n);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->length, n + 2);
  auto replay = system_->AppendObservations(name, {{9.0, 10.0}}, n);
  EXPECT_TRUE(replay.status().IsInvalidArgument());
  EXPECT_EQ(Length(name), n + 2);
}

TEST_F(StreamingAppendTest, DataVersionsArePerDataset) {
  const std::string a = FirstDataset();
  const std::string b = SecondDataset();
  const auto& kb = system_->knowledge();
  const uint64_t b_before = kb.DataVersion(b);

  auto first = system_->AppendObservations(a, {{1.0, 2.0}});
  ASSERT_TRUE(first.ok());
  auto second = system_->AppendObservations(a, {{3.0}});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->data_version, first->data_version + 1);
  EXPECT_EQ(kb.DataVersion(a), second->data_version);

  // B's version never moved: append isolation is per dataset.
  EXPECT_EQ(kb.DataVersion(b), b_before);
}

TEST_F(StreamingAppendTest, CharacteristicsRefreshIsAmortized) {
  const std::string name = FirstDataset();

  // A batch that clears the max(32, 10%) margin must re-profile...
  std::vector<double> big(Length(name) / 10 + 33, 1.0);
  auto refresh = system_->AppendObservations(name, {big});
  ASSERT_TRUE(refresh.ok()) << refresh.status().ToString();
  EXPECT_TRUE(refresh->characteristics_refreshed);

  // ...and a small follow-up right after must not (O(n) work stays
  // amortized to O(1) per appended point).
  auto small = system_->AppendObservations(name, {{1.0, 2.0, 3.0}});
  ASSERT_TRUE(small.ok());
  EXPECT_FALSE(small->characteristics_refreshed);
}

TEST_F(StreamingAppendTest, ReadsDoNotBumpKnowledgeVersion) {
  const std::string name = FirstDataset();
  const uint64_t before = system_->knowledge().version();

  ASSERT_TRUE(system_->Recommend(name, 2).ok());
  ASSERT_TRUE(system_->SeriesSnapshot(name).ok());
  ASSERT_TRUE(server_->Call("forecast", ForecastParams(name)).ok());

  // The version counter is observational: reads leave it untouched, so it
  // can no longer be (ab)used to invalidate caches on every query.
  EXPECT_EQ(system_->knowledge().version(), before);

  auto outcome = system_->AppendObservations(name, {{4.0, 5.0}});
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(system_->knowledge().version(), before)
      << "a data mutation is a real KB change and must bump the version";
}

// ---------------------------------------------------------------------------
// Serve endpoint + fine-grained cache invalidation
// ---------------------------------------------------------------------------

using StreamingCacheTest = StreamingTest;

TEST_F(StreamingCacheTest, AppendInvalidatesOnlyTheTouchedDataset) {
  ASSERT_GE(system_->repository()->names().size(), 2u);
  const std::string a = FirstDataset();
  const std::string b = SecondDataset();

  // Warm both datasets' forecast entries.
  ASSERT_TRUE(ForecastEnvelope(a, 10).GetBool("ok", false));
  ASSERT_TRUE(ForecastEnvelope(b, 11).GetBool("ok", false));
  EXPECT_TRUE(ForecastEnvelope(a, 12).GetBool("cached", false));
  EXPECT_TRUE(ForecastEnvelope(b, 13).GetBool("cached", false));

  const size_t before = Length(a);
  auto appended = server_->Call("append", AppendParams(a, {7.0, 8.0, 9.0}));
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  EXPECT_EQ(appended->GetInt("appended", 0), 3);
  EXPECT_EQ(static_cast<size_t>(appended->GetInt("length", 0)), before + 3);
  EXPECT_GE(appended->GetInt("cache_invalidated", -1), 1);

  // A's entry fell out (it was computed on stale data)...
  Json a_after = ForecastEnvelope(a, 14);
  ASSERT_TRUE(a_after.GetBool("ok", false));
  EXPECT_FALSE(a_after.GetBool("cached", false));
  // ...while B — untouched by the append — still serves from cache.
  Json b_after = ForecastEnvelope(b, 15);
  ASSERT_TRUE(b_after.GetBool("ok", false));
  EXPECT_TRUE(b_after.GetBool("cached", false));

  Json cache = server_->StatsJson().Get("cache");
  EXPECT_GE(cache.GetInt("tag_invalidations", 0), 1);
}

TEST_F(StreamingCacheTest, FlushCacheIsTheEscapeHatch) {
  const std::string a = FirstDataset();
  ASSERT_TRUE(ForecastEnvelope(a, 20).GetBool("ok", false));
  EXPECT_TRUE(ForecastEnvelope(a, 21).GetBool("cached", false));

  auto flushed = server_->Call("flush_cache", Json::Object());
  ASSERT_TRUE(flushed.ok()) << flushed.status().ToString();
  EXPECT_GE(flushed->GetInt("flushed", 0), 1);

  Json after = ForecastEnvelope(a, 22);
  ASSERT_TRUE(after.GetBool("ok", false));
  EXPECT_FALSE(after.GetBool("cached", false));
  EXPECT_GE(server_->StatsJson().Get("cache").GetInt("flushes", 0), 1);
}

TEST_F(StreamingCacheTest, AppendEndpointValidatesItsEnvelope) {
  const std::string a = FirstDataset();
  const size_t before = Length(a);

  // No dataset.
  Json no_ds = Json::Object();
  Json vals = Json::Array();
  vals.Append(1.0);
  no_ds.Set("values", std::move(vals));
  EXPECT_TRUE(
      server_->Call("append", no_ds).status().IsInvalidArgument());

  // Type-confused values.
  Json bad_type = Json::Object();
  bad_type.Set("dataset", a);
  Json mixed = Json::Array();
  mixed.Append(1.0);
  mixed.Append("two");
  bad_type.Set("values", std::move(mixed));
  EXPECT_FALSE(server_->Call("append", bad_type).ok());

  // Fractional / negative start offsets.
  Json frac = AppendParams(a, {1.0});
  frac.Set("start", 1.5);
  EXPECT_TRUE(server_->Call("append", frac).status().IsInvalidArgument());
  Json neg = AppendParams(a, {1.0});
  neg.Set("start", static_cast<int64_t>(-4));
  EXPECT_TRUE(server_->Call("append", neg).status().IsInvalidArgument());

  EXPECT_EQ(Length(a), before);
}

// ---------------------------------------------------------------------------
// Concurrency: appends racing forecasts (exercised under TSan in CI)
// ---------------------------------------------------------------------------

using StreamingRaceTest = StreamingTest;

TEST_F(StreamingRaceTest, ConcurrentAppendsAndForecastsStayConsistent) {
  const std::string name = FirstDataset();
  const size_t initial = Length(name);
  constexpr int kAppenders = 2;
  constexpr int kBatches = 12;
  constexpr int kBatchSize = 3;

  std::atomic<size_t> appended_total{0};
  std::atomic<bool> readers_run{true};

  std::vector<std::thread> threads;
  for (int t = 0; t < kAppenders; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kBatches; ++i) {
        std::vector<double> batch(kBatchSize, 100.0 + t * 1000 + i);
        auto result =
            server_->CallWithRetry("append", AppendParams(name, batch));
        if (result.ok()) {
          appended_total.fetch_add(kBatchSize);
        }
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&]() {
      while (readers_run.load()) {
        // Concurrent readers must always see an internally consistent
        // series — never a torn length or mid-append values.
        auto fc =
            server_->CallWithRetry("forecast", ForecastParams(name));
        EXPECT_TRUE(fc.ok() || fc.status().code() != StatusCode::kInternal)
            << fc.status().ToString();
        auto snap = system_->SeriesSnapshot(name);
        ASSERT_TRUE(snap.ok());
        ASSERT_GE(snap->length(), initial);
      }
    });
  }
  for (auto& t : threads) t.join();
  readers_run.store(false);
  for (auto& t : readers) t.join();

  EXPECT_GT(appended_total.load(), 0u);
  EXPECT_EQ(Length(name), initial + appended_total.load());
}

// ---------------------------------------------------------------------------
// Fuzz: malformed append requests never corrupt state
// ---------------------------------------------------------------------------

using StreamingFuzzTest = StreamingTest;

TEST_F(StreamingFuzzTest, MalformedAppendsAreRejectedWithoutSideEffects) {
  const std::string a = FirstDataset();
  const size_t before = Length(a);
  std::mt19937_64 rng(20260808);
  auto pick = [&rng](int n) { return static_cast<int>(rng() % n); };

  for (int iter = 0; iter < 200; ++iter) {
    Json req = Json::Object();
    req.Set("id", static_cast<int64_t>(iter));
    req.Set("endpoint", "append");
    Json params = Json::Object();
    switch (pick(8)) {
      case 0:  // missing dataset
        params = AppendParams(a, {1.0});
        params.Set("dataset", "");
        break;
      case 1:  // unknown dataset
        params = AppendParams("fuzz_no_such_" + std::to_string(iter), {1.0});
        break;
      case 2: {  // values is not an array
        params.Set("dataset", a);
        params.Set("values", "not-an-array");
        break;
      }
      case 3: {  // empty values
        params.Set("dataset", a);
        params.Set("values", Json::Array());
        break;
      }
      case 4: {  // string smuggled into the numbers
        params = AppendParams(a, {1.0, 2.0});
        Json arr = Json::Array();
        arr.Append(1.0);
        arr.Append("NaN");
        params.Set("values", std::move(arr));
        break;
      }
      case 5: {  // ragged multivariate nesting
        params.Set("dataset", a);
        Json outer = Json::Array();
        Json c0 = Json::Array();
        c0.Append(1.0);
        c0.Append(2.0);
        Json c1 = Json::Array();
        c1.Append(3.0);
        outer.Append(std::move(c0));
        outer.Append(std::move(c1));
        params.Set("values", std::move(outer));
        break;
      }
      case 6: {  // start far beyond the series end (gap)
        params = AppendParams(a, {1.0});
        params.Set("start", static_cast<int64_t>(before + 100000 + iter));
        break;
      }
      default: {  // negative / fractional start
        params = AppendParams(a, {1.0});
        if (pick(2) == 0) {
          params.Set("start", static_cast<int64_t>(-1 - iter));
        } else {
          params.Set("start", 0.25 + iter);
        }
        break;
      }
    }
    req.Set("params", std::move(params));

    auto resp = Json::Parse(server_->HandleLine(req.Dump()));
    ASSERT_TRUE(resp.ok()) << "response must stay a well-formed envelope";
    ASSERT_TRUE(resp->is_object());
    EXPECT_FALSE(resp->GetBool("ok", true)) << "iter " << iter;
    EXPECT_FALSE(resp->Get("error").GetString("code", "").empty());
  }

  EXPECT_EQ(Length(a), before)
      << "no malformed request may have appended anything";
}

// ---------------------------------------------------------------------------
// Durability: restart recovery and fork+SIGKILL mid-append
// ---------------------------------------------------------------------------

TEST(StreamingDurabilityTest, AppendsSurviveFacadeRestart) {
  const std::string dir = TestDir("restart");
  core::EasyTime::Options opt = SmallSystemOptions();
  opt.pretrain_ensemble = false;
  opt.store_dir = dir;

  std::string name;
  size_t grown = 0;
  {
    auto system = core::EasyTime::Create(opt);
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    name = (*system)->repository()->names()[0];
    const size_t base = (*system)->SeriesSnapshot(name)->length();
    auto outcome = (*system)->AppendObservations(
        name, {{41.0, 42.0, 43.0, 44.0, 45.0, 46.0, 47.0}});
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    grown = base + 7;
    ASSERT_EQ(outcome->length, grown);
  }

  // Same directory, fresh process-equivalent: the appended tail must come
  // back, and the knowledge base's per-series metadata must match it.
  auto reopened = core::EasyTime::Create(opt);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE((*reopened)->restored_from_store());
  auto snap = (*reopened)->SeriesSnapshot(name);
  ASSERT_TRUE(snap.ok());
  ASSERT_EQ(snap->length(), grown);
  EXPECT_DOUBLE_EQ(snap->values()[grown - 1], 47.0);
  EXPECT_DOUBLE_EQ(snap->values()[grown - 7], 41.0);

  auto meta = (*reopened)->knowledge().GetDataset(name);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ((*meta)->length, grown)
      << "restart must re-sync KB metadata with the replayed series";

  fs::remove_all(dir);
}

TEST(StreamingDurabilityTest, KillMidAppendKeepsAcknowledgedBatchesOnly) {
  const std::string dir = TestDir("kill");
  constexpr size_t kBase = 64;
  constexpr size_t kBatch = 3;

  auto make_repo = [] {
    tsdata::Repository repo;
    tsdata::Dataset ds("stream");
    std::vector<double> base(kBase);
    for (size_t i = 0; i < kBase; ++i) base[i] = static_cast<double>(i);
    EXPECT_TRUE(ds.AddChannel(tsdata::Series("stream", base)).ok());
    EXPECT_TRUE(repo.Add(std::move(ds)).ok());
    return repo;
  };

  pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: fsync-per-append writer; every acknowledged batch is durable
    // before the next starts. Killed mid-stream by the parent.
    tsdata::Repository repo = make_repo();
    tsdata::AppendLogOptions opt;
    opt.dir = dir;
    opt.sync_every_append = true;
    opt.compact_every = 8;  // exercise compaction under fire too
    auto log = tsdata::AppendLog::Open(opt, &repo, nullptr);
    if (!log.ok()) _exit(1);
    auto* ds = *repo.GetMutable("stream");
    for (size_t start = kBase;; start += kBatch) {
      tsdata::AppendRecord rec;
      rec.dataset = "stream";
      rec.start = start;
      rec.channels.push_back({static_cast<double>(start),
                              static_cast<double>(start + 1),
                              static_cast<double>(start + 2)});
      if (!(*log)->Append(rec).ok()) _exit(2);
      if (!ds->AppendObservations(rec.channels).ok()) _exit(3);
    }
  }
  std::this_thread::sleep_for(250ms);
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  // Recovery: replay onto a fresh base repository. The series must be a
  // contiguous prefix of whole batches — a torn tail record truncates to
  // the last acknowledged append, never to a torn series.
  tsdata::Repository repo = make_repo();
  tsdata::AppendLog::ReplayStats stats;
  tsdata::AppendLogOptions opt;
  opt.dir = dir;
  auto log = tsdata::AppendLog::Open(opt, &repo, &stats);
  ASSERT_TRUE(log.ok()) << log.status().ToString();

  const auto* ds = *repo.Get("stream");
  const size_t len = ds->length();
  ASSERT_GT(len, kBase) << "250ms of fsynced appends must survive";
  ASSERT_EQ((len - kBase) % kBatch, 0u)
      << "recovery must never surface a torn (partial) batch";
  const auto& values = ds->channel(0).values();
  for (size_t i = kBase; i < len; ++i) {
    ASSERT_DOUBLE_EQ(values[i], static_cast<double>(i))
        << "replayed batch values must be intact and in order";
  }

  // The log keeps working after crash recovery.
  tsdata::AppendRecord rec;
  rec.dataset = "stream";
  rec.start = len;
  rec.channels.push_back({static_cast<double>(len)});
  EXPECT_TRUE((*log)->Append(rec).ok());
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// The "backtest" async job
// ---------------------------------------------------------------------------

using BacktestJobTest = StreamingTest;

Json BacktestParams(const std::string& dataset) {
  Json params = Json::Object();
  params.Set("dataset", dataset);
  params.Set("method", "theta");
  params.Set("origins", static_cast<int64_t>(4));
  params.Set("horizon", static_cast<int64_t>(8));
  return params;
}

/// Polls job_status until a terminal state (or ~12s), returning the final
/// status payload.
Json AwaitJob(ForecastServer* server, int64_t job) {
  Json poll = Json::Object();
  poll.Set("job", job);
  for (int i = 0; i < 600; ++i) {
    auto status = server->Call("job_status", poll);
    EXPECT_TRUE(status.ok()) << status.status().ToString();
    if (!status.ok()) return Json::Object();
    std::string state = status->GetString("state", "");
    if (state == "done" || state == "failed" || state == "cancelled") {
      return std::move(*status);
    }
    std::this_thread::sleep_for(20ms);
  }
  ADD_FAILURE() << "job " << job << " never reached a terminal state";
  return Json::Object();
}

TEST_F(BacktestJobTest, BacktestJobRunsToCompletion) {
  const std::string name = FirstDataset();
  auto submitted = server_->Call("backtest", BacktestParams(name));
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  int64_t job = submitted->GetInt("job", -1);
  ASSERT_GE(job, 0);

  Json status = AwaitJob(server_, job);
  ASSERT_EQ(status.GetString("state", ""), "done");
  EXPECT_EQ(status.GetInt("done", -1), 4);
  EXPECT_EQ(status.GetInt("total", -1), 4);

  Json result = status.Get("result");
  EXPECT_EQ(result.GetString("dataset", ""), name);
  ASSERT_EQ(result.Get("origins").size(), 4u);
  Json agg = result.Get("aggregate");
  EXPECT_TRUE(agg.Has("mase"));
  EXPECT_TRUE(agg.Has("smape"));
  EXPECT_GT(agg.GetDouble("mae", -1.0), 0.0);
  EXPECT_GE(result.GetDouble("coverage", -1.0), 0.0);
  EXPECT_LE(result.GetDouble("coverage", 2.0), 1.0);
}

TEST_F(BacktestJobTest, EndpointAndExplicitTypeMustAgree) {
  Json cross = BacktestParams(FirstDataset());
  cross.Set("type", "evaluate");
  auto conflicted = server_->Call("backtest", cross);
  EXPECT_TRUE(conflicted.status().IsInvalidArgument())
      << conflicted.status().ToString();

  Json cross2 = Json::Object();
  cross2.Set("type", "backtest");
  Json methods = Json::Array();
  methods.Append("drift");
  cross2.Set("methods", std::move(methods));
  EXPECT_TRUE(
      server_->Call("evaluate", cross2).status().IsInvalidArgument());
}

TEST_F(BacktestJobTest, UnknownDatasetFailsTheJob) {
  auto submitted =
      server_->Call("backtest", BacktestParams("no_such_dataset"));
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  Json status = AwaitJob(server_, submitted->GetInt("job", -1));
  EXPECT_EQ(status.GetString("state", ""), "failed");
  EXPECT_FALSE(status.GetString("error", "").empty());
}

TEST_F(BacktestJobTest, ResumesFromCheckpointedOrigins) {
  const std::string ckpt_dir = TestDir("bt_resume");
  const std::string name = FirstDataset();

  Json config = BacktestParams(name);
  config.Set("type", "backtest");
  config.Set("job_key", "bt-resume");

  // Reference run, strictly sequential, straight through the engine.
  auto bt_config = eval::BacktestConfig::FromJson(config);
  ASSERT_TRUE(bt_config.ok()) << bt_config.status().ToString();
  auto snap = system_->SeriesSnapshot(name);
  ASSERT_TRUE(snap.ok());
  eval::BacktestHooks seq;
  seq.max_threads = 1;
  auto reference =
      eval::RunBacktest(snap->values(), snap->period_hint(), *bt_config, seq);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_EQ(reference->origins.size(), 4u);

  JobManager::Options jm_opt;
  jm_opt.checkpoint_dir = ckpt_dir;
  JobManager jobs(system_, jm_opt);

  // Seed the checkpoint store with two finished origins, exactly as a
  // killed run would have left them (WAL records of OriginEval JSON).
  const std::string ckpt_path = jobs.CheckpointPath("bt-resume");
  ASSERT_FALSE(ckpt_path.empty());
  {
    auto store = store::RecordStore::Open(
        ckpt_path, store::RecordStoreOptions{}, nullptr);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE((*store)->Append(reference->origins[0].ToJson().Dump()).ok());
    ASSERT_TRUE((*store)->Append(reference->origins[2].ToJson().Dump()).ok());
    ASSERT_TRUE((*store)->Sync().ok());
  }

  jobs.Start();
  auto job_id = jobs.Submit(config);
  ASSERT_TRUE(job_id.ok()) << job_id.status().ToString();
  Json status = Json::Object();
  for (int i = 0; i < 600; ++i) {
    auto s = jobs.StatusJson(*job_id);
    ASSERT_TRUE(s.ok());
    status = std::move(*s);
    std::string state = status.GetString("state", "");
    if (state == "done" || state == "failed" || state == "cancelled") break;
    std::this_thread::sleep_for(20ms);
  }
  ASSERT_EQ(status.GetString("state", ""), "done") << status.Dump();

  Json result = status.Get("result");
  EXPECT_EQ(result.GetInt("resumed", -1), 2)
      << "origins 0 and 2 must be spliced in, not re-run";
  EXPECT_EQ(jobs.stats().resumed_records, 2u);

  // The spliced report must agree with the straight-through run (resumed
  // origins round-trip through JSON, so compare to near-exact tolerance).
  EXPECT_NEAR(result.Get("aggregate").GetDouble("mase", -1.0),
              reference->aggregate.at("mase"), 1e-9);
  EXPECT_NEAR(result.GetDouble("coverage", -1.0), reference->coverage, 1e-9);

  // A completed job removes its checkpoint; nothing to resume next time.
  EXPECT_FALSE(fs::exists(ckpt_path));

  jobs.Shutdown();
  fs::remove_all(ckpt_dir);
}

}  // namespace
}  // namespace easytime::serve
