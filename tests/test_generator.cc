#include "tsdata/generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tsdata/characteristics.h"

namespace easytime::tsdata {
namespace {

TEST(GenerateSeries, DeterministicForSeed) {
  GeneratorConfig cfg;
  cfg.name = "det";
  cfg.length = 128;
  cfg.period = 12;
  cfg.season_amp = 3.0;
  cfg.seed = 5;
  Series a = GenerateSeries(cfg);
  Series b = GenerateSeries(cfg);
  ASSERT_EQ(a.length(), b.length());
  for (size_t i = 0; i < a.length(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  cfg.seed = 6;
  Series c = GenerateSeries(cfg);
  bool all_same = true;
  for (size_t i = 0; i < a.length(); ++i) {
    if (a[i] != c[i]) all_same = false;
  }
  EXPECT_FALSE(all_same);
}

TEST(GenerateSeries, MetadataPropagates) {
  GeneratorConfig cfg;
  cfg.name = "meta";
  cfg.domain = Domain::kTraffic;
  cfg.length = 64;
  cfg.period = 24;
  Series s = GenerateSeries(cfg);
  EXPECT_EQ(s.name(), "meta");
  EXPECT_EQ(s.domain(), Domain::kTraffic);
  EXPECT_EQ(s.period_hint(), 24u);
  EXPECT_EQ(s.length(), 64u);
}

TEST(GenerateSeries, SeasonalAmplitudeVisible) {
  GeneratorConfig cfg;
  cfg.length = 480;
  cfg.period = 24;
  cfg.season_amp = 8.0;
  cfg.noise_std = 0.2;
  cfg.seed = 9;
  Series s = GenerateSeries(cfg);
  EXPECT_GT(SeasonalStrength(s.values(), 24), 0.8);
}

TEST(GenerateSeries, TrendSlopeVisible) {
  GeneratorConfig cfg;
  cfg.length = 300;
  cfg.trend_slope = 0.5;
  cfg.noise_std = 0.5;
  cfg.seed = 10;
  Series s = GenerateSeries(cfg);
  EXPECT_GT(TrendStrength(s.values(), 0), 0.9);
}

TEST(GenerateSeries, LevelShiftChangesHalves) {
  GeneratorConfig cfg;
  cfg.length = 400;
  cfg.level_shift = 10.0;
  cfg.noise_std = 0.5;
  cfg.seed = 11;
  Series s = GenerateSeries(cfg);
  EXPECT_GT(ShiftingScore(s.values()), 0.5);
}

TEST(GenerateDataset, MultichannelShapes) {
  GeneratorConfig cfg;
  cfg.name = "mv";
  cfg.length = 200;
  cfg.num_channels = 5;
  cfg.seed = 12;
  Dataset ds = GenerateDataset(cfg);
  EXPECT_EQ(ds.num_channels(), 5u);
  EXPECT_EQ(ds.length(), 200u);
  EXPECT_TRUE(ds.multivariate());
  EXPECT_EQ(ds.channel(2).name(), "mv_ch2");
}

class DomainProfileTest : public ::testing::TestWithParam<int> {};

TEST_P(DomainProfileTest, ProfileIsGenerableAndInRange) {
  Domain domain = static_cast<Domain>(GetParam());
  Rng rng(31 + static_cast<uint64_t>(GetParam()));
  GeneratorConfig cfg = DomainProfile(domain, &rng);
  cfg.length = 300;
  cfg.seed = 77;
  cfg.name = std::string(DomainName(domain)) + "_test";
  Series s = GenerateSeries(cfg);
  EXPECT_EQ(s.length(), 300u);
  for (double v : s.values()) EXPECT_TRUE(std::isfinite(v));
  EXPECT_EQ(cfg.domain, domain);
}

INSTANTIATE_TEST_SUITE_P(AllDomains, DomainProfileTest,
                         ::testing::Range(0, kNumDomains));

TEST(DomainProfiles, StockIsRandomWalkHeavyTail) {
  Rng rng(41);
  GeneratorConfig cfg = DomainProfile(Domain::kStock, &rng);
  EXPECT_TRUE(cfg.random_walk);
  EXPECT_TRUE(cfg.heavy_tail);
  EXPECT_EQ(cfg.period, 0u);
}

TEST(DomainProfiles, TrafficIsDailySeasonal) {
  Rng rng(43);
  GeneratorConfig cfg = DomainProfile(Domain::kTraffic, &rng);
  EXPECT_EQ(cfg.period, 24u);
  EXPECT_GT(cfg.season_amp, 0.0);
}

TEST(GenerateSuite, CountsAndNaming) {
  SuiteSpec spec;
  spec.univariate_per_domain = 2;
  spec.multivariate_total = 3;
  spec.min_length = 100;
  spec.max_length = 150;
  spec.multivariate_channels = 3;
  auto suite = GenerateSuite(spec);
  EXPECT_EQ(suite.size(), 2u * kNumDomains + 3u);
  size_t mv = 0;
  for (const auto& ds : suite) {
    EXPECT_GE(ds.length(), 100u);
    EXPECT_LE(ds.length(), 150u);
    if (ds.multivariate()) {
      ++mv;
      EXPECT_EQ(ds.num_channels(), 3u);
    }
  }
  EXPECT_EQ(mv, 3u);
  // Deterministic regeneration.
  auto again = GenerateSuite(spec);
  ASSERT_EQ(again.size(), suite.size());
  for (size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(again[i].name(), suite[i].name());
    EXPECT_DOUBLE_EQ(again[i].primary()[0], suite[i].primary()[0]);
  }
}

TEST(GenerateSuite, CoversCharacteristicSpace) {
  SuiteSpec spec;
  spec.univariate_per_domain = 3;
  spec.multivariate_total = 2;
  auto suite = GenerateSuite(spec);
  size_t seasonal = 0, trending = 0, nonstationary = 0;
  for (const auto& ds : suite) {
    auto ch = tsdata::ExtractCharacteristics(ds.primary().values());
    if (ch.has_seasonality()) ++seasonal;
    if (ch.has_trend()) ++trending;
    if (!ch.is_stationary()) ++nonstationary;
  }
  // The suite must span the axes TFB curates for: some of each class.
  EXPECT_GT(seasonal, 3u);
  EXPECT_GT(trending, 3u);
  EXPECT_GT(nonstationary, 2u);
}

}  // namespace
}  // namespace easytime::tsdata
