// Protocol fuzz: a deterministic, seeded fuzzer fires >10k malformed frames
// at the epoll front-end — random garbage, binary noise, truncated JSON,
// type-confused envelopes, oversized unterminated lines, blank/CRLF frames,
// and partial writes split at random byte boundaries — interleaved with
// valid requests. The contract: every line the server sends back is a
// well-formed response envelope, no connection ever hangs (all IO is
// poll-bounded with explicit deadlines), and the server is still fully
// alive afterwards. The client socket is non-blocking so write backpressure
// turns into interleaved reads, never a deadlock.

#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <signal.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "cluster/router.h"
#include "serve/event_loop.h"
#include "serve/server.h"
#include "socket_test_util.h"

namespace easytime::serve {
namespace {

using testutil::ConnectLoopback;
using testutil::LineReader;
using testutil::SendAll;
using testutil::SetNonBlocking;

core::EasyTime* MakeSystem() {
  core::EasyTime::Options opt;
  opt.suite.univariate_per_domain = 1;
  opt.suite.multivariate_total = 1;
  opt.suite.min_length = 180;
  opt.suite.max_length = 220;
  opt.seed_eval.horizon = 12;
  opt.seed_eval.metrics = {"mae", "rmse"};
  opt.seed_methods = {"naive", "seasonal_naive", "theta", "ses", "drift"};
  opt.ensemble.top_k = 2;
  opt.ensemble.ts2vec.epochs = 3;
  opt.ensemble.ts2vec.repr_dim = 8;
  opt.ensemble.ts2vec.hidden_dim = 10;
  opt.ensemble.ts2vec.depth = 2;
  opt.ensemble.classifier.epochs = 80;
  auto system = core::EasyTime::Create(opt);
  EXPECT_TRUE(system.ok()) << system.status().ToString();
  return system.ok() ? system->release() : nullptr;
}

/// One generated frame plus whether it counts toward the malformed quota
/// and whether it ends the connection (oversized protocol violation).
struct Frame {
  std::string bytes;
  bool malformed = false;
  bool kills_connection = false;
};

class FrameGen {
 public:
  explicit FrameGen(uint64_t seed) : rng_(seed) {}

  Frame Next() {
    switch (Pick(11)) {
      case 0: return AsciiGarbage();
      case 1: return BinaryNoise();
      case 2: return TruncatedJson();
      case 3: return TypeConfusedEnvelope();
      case 4: return UnknownEndpoint();
      case 5: return BlankAndCrlf();
      case 6: return DeepNesting();
      case 7: return HugeTerminatedLine();
      case 8: return Oversized();
      case 9: return MalformedAppend();
      default: return ValidPing();
    }
  }

  size_t Pick(size_t n) { return static_cast<size_t>(rng_() % n); }

 private:
  Frame AsciiGarbage() {
    std::string s;
    size_t len = 1 + Pick(120);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(' ' + Pick(95)));
    }
    // Garbage that happens to contain a newline splits into several
    // malformed lines — all the better.
    return {s + "\n", true, false};
  }

  Frame BinaryNoise() {
    std::string s;
    size_t len = 1 + Pick(200);
    for (size_t i = 0; i < len; ++i) {
      char c = static_cast<char>(rng_() & 0xff);
      if (c == '\n') c = '\0';  // keep it one frame
      s.push_back(c);
    }
    return {s + "\n", true, false};
  }

  Frame TruncatedJson() {
    std::string full = R"({"id": 1, "endpoint": "ping", "params": {}})";
    size_t cut = 1 + Pick(full.size() - 1);
    return {full.substr(0, cut) + "\n", true, false};
  }

  Frame TypeConfusedEnvelope() {
    static const char* kShapes[] = {
        R"({"id": "not-a-number", "endpoint": "ping"})",
        R"({"id": 1, "endpoint": 42})",
        R"({"id": 1})",
        R"({"endpoint": "forecast", "params": "not-an-object"})",
        R"([1, 2, 3])",
        R"("just a string")",
        R"({"id": 1, "endpoint": "forecast", "params": {"horizon": "x"}})",
        R"({"id": -9223372036854775808, "endpoint": "ping", "params": null})",
    };
    return {std::string(kShapes[Pick(8)]) + "\n", true, false};
  }

  Frame UnknownEndpoint() {
    return {R"({"id": 2, "endpoint": "no_such_endpoint", "params": {}})"
            "\n",
            true, false};
  }

  Frame BlankAndCrlf() {
    static const char* kBlanks[] = {"\n", "\r\n", "\n\r\n\n", "   \n"};
    // Whitespace-only frames are protocol chaff, not requests; blank lines
    // are skipped outright, so no response is owed. "   \n" is malformed.
    std::string s = kBlanks[Pick(4)];
    return {s, s.find_first_not_of("\r\n") != std::string::npos, false};
  }

  Frame DeepNesting() {
    std::string s = R"({"id": 3, "endpoint": "ping", "params": )";
    size_t depth = 8 + Pick(60);
    for (size_t i = 0; i < depth; ++i) s += R"({"a":)";
    s += "1";
    for (size_t i = 0; i < depth; ++i) s += "}";
    s += "}";
    return {s + "\n", true, false};
  }

  Frame HugeTerminatedLine() {
    // Large but under the line cap and newline-terminated: framed normally,
    // fails JSON parsing, gets an error envelope; the connection survives.
    return {std::string(3000, 'y') + "\n", true, false};
  }

  Frame Oversized() {
    // Past the event loop's line cap with no newline: one error response,
    // then close.
    return {std::string(5000, 'z'), true, true};
  }

  Frame MalformedAppend() {
    // Well-formed envelopes carrying broken append params: unknown dataset,
    // type-confused/empty/ragged values, negative or gap-leaving starts.
    // Every one must come back as a well-formed error envelope and leave
    // stored series untouched.
    static const char* kShapes[] = {
        R"({"id": 7, "endpoint": "append", "params": {}})",
        R"({"id": 7, "endpoint": "append", "params": {"dataset": "no_such_ds", "values": [1.0]}})",
        R"({"id": 7, "endpoint": "append", "params": {"dataset": 42, "values": [1.0]}})",
        R"({"id": 7, "endpoint": "append", "params": {"dataset": "no_such_ds"}})",
        R"({"id": 7, "endpoint": "append", "params": {"dataset": "no_such_ds", "values": []}})",
        R"({"id": 7, "endpoint": "append", "params": {"dataset": "no_such_ds", "values": "nope"}})",
        R"({"id": 7, "endpoint": "append", "params": {"dataset": "no_such_ds", "values": [[1.0], []]}})",
        R"({"id": 7, "endpoint": "append", "params": {"dataset": "no_such_ds", "values": [1.0, "x"]}})",
        R"({"id": 7, "endpoint": "append", "params": {"dataset": "no_such_ds", "values": [1.0], "start": -3}})",
        R"({"id": 7, "endpoint": "append", "params": {"dataset": "no_such_ds", "values": [1.0], "start": 1.5}})",
        R"({"id": 7, "endpoint": "append", "params": {"dataset": "no_such_ds", "values": [1.0], "start": 999999}})",
    };
    return {std::string(kShapes[Pick(11)]) + "\n", true, false};
  }

  Frame ValidPing() {
    Json req = Json::Object();
    req.Set("id", static_cast<int64_t>(Pick(1000)));
    req.Set("endpoint", "ping");
    req.Set("params", Json::Object());
    return {req.Dump() + "\n", false, false};
  }

  std::mt19937_64 rng_;
};

class ProtocolFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { system_ = MakeSystem(); }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  void SetUp() override { ASSERT_NE(system_, nullptr); }
  static core::EasyTime* system_;
};

core::EasyTime* ProtocolFuzzTest::system_ = nullptr;

/// Drains every response currently readable (poll-bounded); each line must
/// be a well-formed envelope. Returns false only on malformed output.
bool DrainResponses(LineReader& reader, int timeout_ms, size_t* bad_lines) {
  for (;;) {
    auto line = reader.Next(timeout_ms);
    if (!line.has_value()) return true;
    timeout_ms = 0;  // only the first wait blocks
    auto resp = Json::Parse(*line);
    if (!resp.ok() || !resp->is_object() || !resp->Has("ok")) {
      ++*bad_lines;
      ADD_FAILURE() << "malformed response line: " << *line;
      if (*bad_lines > 5) return false;
    }
  }
}

/// Non-blocking send with a hard deadline; drains responses whenever the
/// socket back-pressures. Returns false when the server closed the
/// connection (expected after an oversized frame), fails the test on hang.
bool SendChunk(int fd, LineReader& reader, const std::string& data,
               size_t* bad_lines) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  size_t sent = 0;
  while (sent < data.size()) {
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "send stalled >10s: backpressure deadlock";
      return false;
    }
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Socket buffer full: the server wants us to read our responses.
      if (!DrainResponses(reader, 50, bad_lines)) return false;
      continue;
    }
    return false;  // EPIPE/ECONNRESET: server closed (oversized frame)
  }
  return true;
}

// The acceptance gate: >= 10000 seeded malformed frames, every response a
// well-formed envelope, no hang, and the server alive at the end.
TEST_F(ProtocolFuzzTest, TenThousandMalformedFramesNeverWedgeTheServer) {
  ForecastServer::Options sopt;
  sopt.num_worker_threads = 2;
  sopt.cache_capacity = 0;
  ForecastServer server(system_, sopt);
  server.Start();

  EventLoopServer::Options lopt;
  lopt.max_line_bytes = 4096;  // cheap oversized trigger
  lopt.num_handler_threads = 2;
  EventLoopServer loop(&server, lopt);
  ASSERT_TRUE(loop.Start().ok());

  constexpr size_t kMalformedTarget = 10000;
  FrameGen gen(0x20260805ULL);  // fixed seed: fully deterministic run
  size_t malformed = 0;
  size_t connections = 0;
  size_t bad_lines = 0;

  while (malformed < kMalformedTarget) {
    int fd = ConnectLoopback(loop.port());
    ASSERT_GE(fd, 0) << "connect failed after " << connections << " conns";
    ASSERT_TRUE(SetNonBlocking(fd));
    ++connections;
    LineReader reader{fd};
    bool alive = true;

    const size_t frames = 40 + gen.Pick(40);
    for (size_t f = 0; f < frames && alive; ++f) {
      Frame frame = gen.Next();
      // Partial writes: split the frame at 1-3 random byte boundaries so
      // the server reassembles across reads.
      size_t cuts = gen.Pick(3);
      size_t off = 0;
      for (size_t c = 0; c < cuts && alive; ++c) {
        if (off >= frame.bytes.size()) break;
        size_t cut = off + 1 + gen.Pick(frame.bytes.size() - off);
        alive = SendChunk(fd, reader,
                          frame.bytes.substr(off, cut - off), &bad_lines);
        off = cut;
      }
      if (alive && off < frame.bytes.size()) {
        alive = SendChunk(fd, reader, frame.bytes.substr(off), &bad_lines);
      }
      if (frame.malformed) ++malformed;
      if (frame.kills_connection && alive) {
        // One error response, then EOF — bounded wait, never a hang.
        DrainResponses(reader, 200, &bad_lines);
        alive = false;
      }
      ASSERT_LE(bad_lines, 5u) << "server is emitting malformed responses";
    }
    if (alive) DrainResponses(reader, 100, &bad_lines);
    ::close(fd);
  }

  EXPECT_GE(malformed, kMalformedTarget);
  EXPECT_EQ(bad_lines, 0u);

  // The server survived the ordeal: a fresh, well-formed request round-trips.
  int fd = ConnectLoopback(loop.port());
  ASSERT_GE(fd, 0);
  Json req = Json::Object();
  req.Set("id", static_cast<int64_t>(424242));
  req.Set("endpoint", "ping");
  req.Set("params", Json::Object());
  ASSERT_TRUE(SendAll(fd, req.Dump() + "\n"));
  LineReader reader{fd};
  auto line = reader.Next(5000);
  ASSERT_TRUE(line.has_value()) << "server unresponsive after fuzzing";
  auto resp = Json::Parse(*line);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->GetInt("id", -1), 424242);
  EXPECT_TRUE(resp->GetBool("ok", false));
  ::close(fd);

  auto stats = loop.stats();
  EXPECT_GE(stats.accepted, connections);
  EXPECT_GT(stats.protocol_errors, 0u) << "oversized frames never fired";
  EXPECT_GT(stats.responses_written, 0u);

  loop.Stop();
  server.Stop();
}

// A second, interleaving-focused pass: several sockets take turns sending
// fragments of different frames, so the per-connection framing state is
// exercised while neighbours make progress. Seeded and deterministic.
TEST_F(ProtocolFuzzTest, InterleavedFragmentsAcrossConnectionsStayIsolated) {
  ForecastServer server(system_);
  server.Start();
  EventLoopServer::Options lopt;
  lopt.max_line_bytes = 4096;
  EventLoopServer loop(&server, lopt);
  ASSERT_TRUE(loop.Start().ok());

  constexpr size_t kConns = 6;
  struct Peer {
    int fd = -1;
    LineReader reader;
    std::string pending;  // frame bytes not yet written
    size_t expected_ok = 0;
  };
  std::vector<Peer> peers(kConns);
  for (size_t i = 0; i < kConns; ++i) {
    peers[i].fd = ConnectLoopback(loop.port());
    ASSERT_GE(peers[i].fd, 0);
    ASSERT_TRUE(SetNonBlocking(peers[i].fd));
    peers[i].reader.fd = peers[i].fd;
  }

  std::mt19937_64 rng(777);
  size_t bad_lines = 0;
  // Each peer sends 60 valid pings with its own id-space; fragments from
  // different peers interleave arbitrarily on the server's event thread.
  constexpr size_t kPerPeer = 60;
  for (size_t round = 0; round < kPerPeer; ++round) {
    for (size_t i = 0; i < kConns; ++i) {
      Json req = Json::Object();
      req.Set("id", static_cast<int64_t>(i * 1000 + round));
      req.Set("endpoint", "ping");
      req.Set("params", Json::Object());
      peers[i].pending += req.Dump() + "\n";
      ++peers[i].expected_ok;
    }
    // Drip the pending bytes out in small randomized slices, round-robin.
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto& p : peers) {
        if (p.pending.empty()) continue;
        size_t slice = 1 + static_cast<size_t>(rng() % 7);
        slice = std::min(slice, p.pending.size());
        ASSERT_TRUE(
            SendChunk(p.fd, p.reader, p.pending.substr(0, slice), &bad_lines));
        p.pending.erase(0, slice);
        progress = true;
      }
    }
  }

  // Every peer gets exactly its own responses, in its own order.
  for (size_t i = 0; i < kConns; ++i) {
    for (size_t r = 0; r < peers[i].expected_ok; ++r) {
      auto line = peers[i].reader.Next(5000);
      ASSERT_TRUE(line.has_value()) << "peer " << i << " response " << r;
      auto resp = Json::Parse(*line);
      ASSERT_TRUE(resp.ok());
      EXPECT_EQ(resp->GetInt("id", -1), static_cast<int64_t>(i * 1000 + r));
      EXPECT_TRUE(resp->GetBool("ok", false));
    }
    ::close(peers[i].fd);
  }
  EXPECT_EQ(bad_lines, 0u);
  loop.Stop();
  server.Stop();
}

// ---------------------------------------------------------------------------
// Router-directed edges: the cluster front-end must uphold the same
// well-formed-envelope contract while fanning out, forwarding, and failing
// over — malformed frames, unknown datasets, a shard primary SIGKILLed
// mid-pipeline, and the multi-kilobyte merged fan-out reply.
// ---------------------------------------------------------------------------

TEST(RouterProtocolFuzz, RouterEdgesAlwaysAnswerWellFormedEnvelopes) {
  const std::string work_dir =
      (std::filesystem::path(::testing::TempDir()) / "easytime_router_fuzz")
          .string();
  std::filesystem::remove_all(work_dir);
  cluster::ClusterRouter::Options opt;
  opt.worker_binary = EASYTIME_WORKER_BIN;
  opt.work_dir = work_dir;
  opt.shards = 1;
  opt.replicate = true;           // shard death degrades instead of erroring
  opt.health_interval_ms = 0.0;   // failover driven explicitly below
  opt.ship_interval_ms = 0.0;
  opt.retry.max_attempts = 2;
  opt.retry.base_delay_ms = 2.0;
  cluster::ClusterRouter router(opt);
  ASSERT_TRUE(router.Start().ok());

  int fd = ConnectLoopback(router.port());
  ASSERT_GE(fd, 0);
  LineReader reader;
  reader.fd = fd;

  auto expect_envelope = [&](const std::string& frame) -> Json {
    EXPECT_TRUE(SendAll(fd, frame));
    auto line = reader.Next(10000);
    EXPECT_TRUE(line.has_value()) << "no response for: " << frame;
    if (!line.has_value()) return Json::Object();
    auto resp = Json::Parse(*line);
    EXPECT_TRUE(resp.ok()) << "unparseable response: " << *line;
    EXPECT_TRUE(resp.ok() && resp->Has("ok")) << *line;
    return resp.ok() ? std::move(*resp) : Json::Object();
  };

  // Malformed frames: garbage, truncated JSON, type-confused envelopes.
  for (const char* frame :
       {"@@@@ not json @@@@\n", "{\"id\": 3, \"endpoint\": \"forec\n",
        "{\"id\": \"x\", \"endpoint\": 17, \"params\": []}\n",
        "{\"endpoint\": \"append\", \"params\": {\"dataset\": 42}}\n"}) {
    Json resp = expect_envelope(frame);
    EXPECT_FALSE(resp.GetBool("ok", true)) << frame;
    EXPECT_NE(resp.Get("error").GetString("code", ""), "") << frame;
  }

  // Unknown dataset routes to its owner and surfaces the owner's NotFound.
  Json missing = expect_envelope(
      R"({"id": 5, "endpoint": "forecast", "params": )"
      R"({"dataset": "phantom_ds", "method": "ses", "horizon": 4}})"
      "\n");
  EXPECT_FALSE(missing.GetBool("ok", true));
  EXPECT_EQ(missing.Get("error").GetString("code", ""), "NotFound");

  // The merged stats fan-out is the largest reply the router builds; it
  // must come back as one well-formed line.
  Json stats = expect_envelope(R"({"id": 6, "endpoint": "stats"})" "\n");
  EXPECT_TRUE(stats.GetBool("ok", false));
  EXPECT_EQ(stats.Get("result").GetString("scope", ""), "cluster");

  // Mid-pipeline shard death: queue several dataset reads, SIGKILL the
  // primary under them, and require every response to still be a valid
  // envelope — ok (possibly degraded via the replica) or a clean error,
  // never silence or garbage.
  std::string burst;
  for (int i = 0; i < 8; ++i) {
    burst += R"({"id": )" + std::to_string(100 + i) +
             R"(, "endpoint": "forecast", "params": )"
             R"({"dataset": "traffic_u0", "method": "ses", "horizon": 4}})"
             "\n";
  }
  ASSERT_TRUE(SendAll(fd, burst.substr(0, burst.size() / 2)));
  ASSERT_TRUE(router.KillShardPrimary("shard-0", SIGKILL).ok());
  ASSERT_TRUE(SendAll(fd, burst.substr(burst.size() / 2)));
  size_t degraded = 0;
  for (int i = 0; i < 8; ++i) {
    auto line = reader.Next(15000);
    ASSERT_TRUE(line.has_value()) << "response " << i << " never arrived";
    auto resp = Json::Parse(*line);
    ASSERT_TRUE(resp.ok()) << *line;
    ASSERT_TRUE(resp->Has("ok")) << *line;
    if (resp->GetBool("ok", false) &&
        resp->Get("result").GetBool("degraded", false)) {
      ++degraded;
    }
    if (!resp->GetBool("ok", false)) {
      EXPECT_EQ(resp->Get("error").GetString("code", ""), "Unavailable")
          << *line;
    }
  }
  EXPECT_GT(degraded, 0u) << "replica never served a degraded read";

  // The router itself is still fully alive.
  Json pong = expect_envelope(R"({"id": 7, "endpoint": "ping"})" "\n");
  EXPECT_TRUE(pong.GetBool("ok", false));

  ::close(fd);
  router.Stop();
}

}  // namespace
}  // namespace easytime::serve
