#include "common/string_util.h"

#include <gtest/gtest.h>

namespace easytime {
namespace {

TEST(Split, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitWhitespace, DropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a\t b \n c  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(Join, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(Trim, RemovesBothEnds) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\t\na b\r\n"), "a b");
}

TEST(CaseFolding, LowerUpper) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("SeLeCt"), "SELECT");
}

TEST(StartsEndsWith, Basic) {
  EXPECT_TRUE(StartsWith("holt_winters", "holt"));
  EXPECT_FALSE(StartsWith("holt", "holt_winters"));
  EXPECT_TRUE(EndsWith("data.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "data.csv"));
}

TEST(ContainsIgnoreCase, Basic) {
  EXPECT_TRUE(ContainsIgnoreCase("The TOP methods", "top"));
  EXPECT_FALSE(ContainsIgnoreCase("abc", "abd"));
}

TEST(ParseDouble, StrictWholeString) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").ValueOrDie(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble(" -2e3 ").ValueOrDie(), -2000.0);
  EXPECT_FALSE(ParseDouble("3.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(ParseInt, StrictWholeString) {
  EXPECT_EQ(ParseInt("42").ValueOrDie(), 42);
  EXPECT_EQ(ParseInt("-7").ValueOrDie(), -7);
  EXPECT_FALSE(ParseInt("4.2").ok());
  EXPECT_FALSE(ParseInt("").ok());
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-1.0, 1), "-1.0");
}

TEST(FormatTable, AlignsColumns) {
  std::string t = FormatTable({"name", "v"}, {{"alpha", "1"}, {"b", "22"}});
  // Header, rule, two rows.
  EXPECT_EQ(4, std::count(t.begin(), t.end(), '\n'));
  EXPECT_NE(t.find("| name  | v  |"), std::string::npos);
  EXPECT_NE(t.find("| alpha | 1  |"), std::string::npos);
}

TEST(LikeMatch, Wildcards) {
  EXPECT_TRUE(LikeMatch("traffic_u0", "traffic%"));
  EXPECT_TRUE(LikeMatch("traffic_u0", "%u0"));
  EXPECT_TRUE(LikeMatch("traffic_u0", "%affic%"));
  EXPECT_TRUE(LikeMatch("abc", "a_c"));
  EXPECT_FALSE(LikeMatch("abc", "a_d"));
  EXPECT_TRUE(LikeMatch("abc", "%"));
  EXPECT_FALSE(LikeMatch("abc", ""));
  EXPECT_TRUE(LikeMatch("", ""));
  EXPECT_TRUE(LikeMatch("", "%"));
  // Case-insensitive.
  EXPECT_TRUE(LikeMatch("ABC", "a%"));
  // Backtracking case.
  EXPECT_TRUE(LikeMatch("aXbXc", "a%c"));
  EXPECT_TRUE(LikeMatch("mississippi", "%iss%ppi"));
}

}  // namespace
}  // namespace easytime
