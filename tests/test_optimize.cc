#include "common/optimize.h"

#include <gtest/gtest.h>

#include <cmath>

namespace easytime {
namespace {

TEST(NelderMead, MinimizesQuadratic) {
  auto f = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] + 1.0) * (x[1] + 1.0);
  };
  auto res = NelderMead(f, {0.0, 0.0});
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0], 3.0, 1e-3);
  EXPECT_NEAR(res.x[1], -1.0, 1e-3);
  EXPECT_NEAR(res.fx, 0.0, 1e-5);
}

TEST(NelderMead, Rosenbrock2d) {
  auto f = [](const std::vector<double>& x) {
    double a = 1.0 - x[0];
    double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opts;
  opts.max_iterations = 5000;
  opts.tolerance = 1e-12;
  auto res = NelderMead(f, {-1.2, 1.0}, opts);
  EXPECT_NEAR(res.x[0], 1.0, 1e-2);
  EXPECT_NEAR(res.x[1], 1.0, 1e-2);
}

TEST(NelderMead, OneDimensional) {
  auto f = [](const std::vector<double>& x) {
    return std::fabs(x[0] - 0.25);
  };
  auto res = NelderMead(f, {0.9});
  EXPECT_NEAR(res.x[0], 0.25, 1e-3);
}

TEST(NelderMead, EmptyInputTrivial) {
  auto res = NelderMead([](const std::vector<double>&) { return 1.0; }, {});
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(res.x.empty());
}

TEST(LearnSimplexWeights, RecoversDominantMember) {
  // Member 0 equals the target exactly; member 1 is garbage.
  std::vector<double> target = {1, 2, 3, 4, 5, 6};
  std::vector<std::vector<double>> preds = {
      target, {6, 5, 4, 3, 2, 1}};
  auto w = LearnSimplexWeights(preds, target);
  ASSERT_TRUE(w.ok());
  EXPECT_GT((*w)[0], 0.9);
  EXPECT_NEAR((*w)[0] + (*w)[1], 1.0, 1e-9);
  EXPECT_GE((*w)[1], 0.0);
}

TEST(LearnSimplexWeights, MixtureRecovered) {
  // target = 0.7*p0 + 0.3*p1.
  std::vector<double> p0 = {1, 0, 2, 1, 3, 0, 1, 2};
  std::vector<double> p1 = {0, 2, 1, 3, 0, 2, 2, 0};
  std::vector<double> target(p0.size());
  for (size_t i = 0; i < p0.size(); ++i) target[i] = 0.7 * p0[i] + 0.3 * p1[i];
  auto w = LearnSimplexWeights({p0, p1}, target, 2000, 0.5);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR((*w)[0], 0.7, 0.05);
  EXPECT_NEAR((*w)[1], 0.3, 0.05);
}

TEST(LearnSimplexWeights, ErrorsOnBadInput) {
  EXPECT_FALSE(LearnSimplexWeights({}, {1.0}).ok());
  EXPECT_FALSE(LearnSimplexWeights({{1.0, 2.0}}, {1.0}).ok());
  EXPECT_FALSE(LearnSimplexWeights({{}}, {}).ok());
}

TEST(LearnSimplexWeights, StaysOnSimplex) {
  std::vector<std::vector<double>> preds = {{1, 2, 3}, {3, 2, 1}, {2, 2, 2}};
  auto w = LearnSimplexWeights(preds, {2, 2, 2});
  ASSERT_TRUE(w.ok());
  double sum = 0.0;
  for (double wi : *w) {
    EXPECT_GE(wi, 0.0);
    sum += wi;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace easytime
