#include "eval/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace easytime::eval {
namespace {

const std::vector<double> kActual = {2.0, 4.0, 6.0};
const std::vector<double> kPred = {1.0, 4.0, 8.0};

TEST(Metrics, MaeKnown) { EXPECT_DOUBLE_EQ(Mae(kActual, kPred), 1.0); }

TEST(Metrics, MseRmseKnown) {
  EXPECT_DOUBLE_EQ(Mse(kActual, kPred), (1.0 + 0.0 + 4.0) / 3.0);
  EXPECT_DOUBLE_EQ(Rmse(kActual, kPred), std::sqrt(5.0 / 3.0));
}

TEST(Metrics, MapeKnownAndSkipsZeros) {
  // |1/2| + |0/4| + |2/6| over 3 -> *100
  EXPECT_NEAR(Mape(kActual, kPred), 100.0 * (0.5 + 0.0 + 1.0 / 3.0) / 3.0,
              1e-9);
  EXPECT_NEAR(Mape({0.0, 2.0}, {5.0, 1.0}), 100.0 * 0.5, 1e-9);
}

TEST(Metrics, SmapeSymmetric) {
  double a = Smape({2.0}, {4.0});
  double b = Smape({4.0}, {2.0});
  EXPECT_NEAR(a, b, 1e-12);
  EXPECT_NEAR(a, 100.0 * 2.0 / 3.0, 1e-9);
}

TEST(Metrics, WapeKnown) {
  EXPECT_NEAR(Wape(kActual, kPred), 100.0 * 3.0 / 12.0, 1e-9);
}

TEST(Metrics, MaseScalesBySeasonalNaive) {
  MetricContext ctx;
  ctx.train = {1, 2, 3, 4, 5, 6};
  ctx.period = 1;  // naive scale = mean |diff| = 1
  EXPECT_NEAR(Mase(kActual, kPred, ctx), 1.0, 1e-9);
  ctx.period = 2;  // |3-1|,|4-2|... = 2
  EXPECT_NEAR(Mase(kActual, kPred, ctx), 0.5, 1e-9);
  // Insufficient train -> NaN.
  ctx.train = {1.0};
  EXPECT_TRUE(std::isnan(Mase(kActual, kPred, ctx)));
}

TEST(Metrics, R2PerfectAndMeanPredictor) {
  EXPECT_DOUBLE_EQ(R2(kActual, kActual), 1.0);
  std::vector<double> mean_pred(3, 4.0);
  EXPECT_NEAR(R2(kActual, mean_pred), 0.0, 1e-12);
}

TEST(Metrics, MaxAndMedianErrors) {
  EXPECT_DOUBLE_EQ(MaxError(kActual, kPred), 2.0);
  EXPECT_DOUBLE_EQ(MedianAe(kActual, kPred), 1.0);
}

TEST(Metrics, MismatchedLengthsReturnNan) {
  EXPECT_TRUE(std::isnan(Mae({1.0}, {1.0, 2.0})));
  EXPECT_TRUE(std::isnan(Mse({}, {})));
}

TEST(MetricRegistry, BuiltinsPresent) {
  auto& r = MetricRegistry::Global();
  for (const char* name : {"mae", "mse", "rmse", "mape", "smape", "wape",
                           "mase", "r2", "max_error", "median_ae"}) {
    EXPECT_TRUE(r.Contains(name)) << name;
  }
  EXPECT_TRUE(r.HigherIsBetter("r2"));
  EXPECT_FALSE(r.HigherIsBetter("mae"));
}

TEST(MetricRegistry, ComputeAndComputeAll) {
  auto& r = MetricRegistry::Global();
  EXPECT_DOUBLE_EQ(r.Compute("mae", kActual, kPred).ValueOrDie(), 1.0);
  auto all = r.ComputeAll({"mae", "rmse"}, kActual, kPred).ValueOrDie();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all["mae"], 1.0);
}

TEST(MetricRegistry, ErrorsOnBadInput) {
  auto& r = MetricRegistry::Global();
  EXPECT_FALSE(r.Compute("unknown_metric", kActual, kPred).ok());
  EXPECT_FALSE(r.Compute("mae", {1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(r.Compute("mae", {}, {}).ok());
}

TEST(MetricRegistry, CustomMetricRegistration) {
  auto& r = MetricRegistry::Global();
  if (!r.Contains("always_seven")) {
    ASSERT_TRUE(r.Register("always_seven",
                           [](const std::vector<double>&,
                              const std::vector<double>&,
                              const MetricContext&) { return 7.0; })
                    .ok());
  }
  EXPECT_DOUBLE_EQ(r.Compute("always_seven", kActual, kPred).ValueOrDie(),
                   7.0);
  // Duplicate registration rejected.
  EXPECT_FALSE(r.Register("always_seven",
                          [](const std::vector<double>&,
                             const std::vector<double>&,
                             const MetricContext&) { return 0.0; })
                   .ok());
}

}  // namespace
}  // namespace easytime::eval
