/// \file test_determinism.cc
/// \brief Pins fixed-seed training outputs of the TS2Vec encoder, the method
/// classifier, and the deep forecasters against golden values captured from
/// the seed (pre-kernel-refactor) implementation. The blocked GEMM path,
/// workspace reuse, and parallel batch encoding were all designed to
/// preserve the exact floating-point accumulation order, so training results
/// must match the seed within 1e-9 (in practice bit-exactly on this
/// toolchain) and be reproducible across runs regardless of thread schedule.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ensemble/classifier.h"
#include "ensemble/ts2vec.h"
#include "methods/deep.h"

namespace easytime {
namespace {

constexpr double kTol = 1e-9;

// Golden values captured from the seed implementation (commit 8e090fa) with
// the same seeds and workloads as below.
const std::vector<double> kTs2VecLosses = {1.1823826282629848,
                                           1.0988222541279189};
const std::vector<double> kTs2VecRepr = {
    0.52812211075605742, 1.7140462592116927, 0.45211124789332535,
    0.50456363112069269, 0.88782486802409555, 2.9423047588747409,
    0.52277788348998488, 1.2067864707195803};
const std::vector<double> kClassifierProbs = {
    0.0065335593765341402, 0.98342623669991913, 0.010040203923546605};
const std::vector<double> kMlpForecast = {16.85191046391677, 14.080642584301694,
                                          14.579986518325395, 13.97066671708518,
                                          15.138485879710574,
                                          16.811054639097108};
const std::vector<double> kGruForecast = {
    15.389905044074723, 15.500476237137269, 15.823146607397437,
    16.091595072116572, 16.627246544958535, 17.100782498253512};
const std::vector<double> kTcnForecast = {
    15.182544591443971, 14.565807736583226, 15.134314318215976,
    15.279458674894817, 15.181565314176998, 15.391054423647011};

std::vector<double> SynthSeries(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<double> v(n);
  double level = 10.0;
  for (size_t i = 0; i < n; ++i) {
    level += 0.05;
    v[i] = level + 3.0 * std::sin(2.0 * 3.141592653589793 * i / 24.0) +
           rng.Gaussian(0.0, 0.4);
  }
  return v;
}

void ExpectNearVec(const std::vector<double>& got,
                   const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], kTol) << "index " << i;
  }
}

struct Ts2VecRun {
  std::vector<double> losses;
  std::vector<double> repr;
};

Ts2VecRun RunTs2Vec() {
  ensemble::Ts2VecOptions opt;
  opt.repr_dim = 8;
  opt.hidden_dim = 12;
  opt.depth = 2;
  opt.crop_length = 32;
  opt.batch_size = 4;
  opt.epochs = 2;
  opt.seed = 7;
  ensemble::Ts2VecEncoder enc(opt);
  std::vector<std::vector<double>> corpus;
  for (uint64_t s = 0; s < 6; ++s) corpus.push_back(SynthSeries(s + 1, 80));
  auto stats = ensemble::PretrainTs2Vec(&enc, corpus);
  EXPECT_TRUE(stats.ok());
  return {stats->epoch_losses, enc.Represent(SynthSeries(42, 96))};
}

TEST(Determinism, Ts2VecTrainingMatchesSeedGoldens) {
  Ts2VecRun run = RunTs2Vec();
  ExpectNearVec(run.losses, kTs2VecLosses);
  ExpectNearVec(run.repr, kTs2VecRepr);
}

TEST(Determinism, Ts2VecTrainingIsRunToRunIdentical) {
  // The parallel batch encode must not introduce schedule dependence: two
  // full pretraining runs produce bit-identical losses and representations.
  Ts2VecRun a = RunTs2Vec();
  Ts2VecRun b = RunTs2Vec();
  ASSERT_EQ(a.losses.size(), b.losses.size());
  for (size_t i = 0; i < a.losses.size(); ++i) {
    EXPECT_EQ(a.losses[i], b.losses[i]);
  }
  ASSERT_EQ(a.repr.size(), b.repr.size());
  for (size_t i = 0; i < a.repr.size(); ++i) EXPECT_EQ(a.repr[i], b.repr[i]);
}

std::vector<double> RunClassifier() {
  ensemble::ClassifierOptions copt;
  copt.hidden = 16;
  copt.epochs = 60;
  copt.seed = 99;
  std::vector<std::string> names = {"a", "b", "c"};
  ensemble::MethodClassifier clf(names, 4, copt);
  std::vector<ensemble::ClassifierExample> examples;
  Rng rng(5);
  for (int i = 0; i < 24; ++i) {
    ensemble::ClassifierExample ex;
    ex.features = {rng.Uniform(), rng.Uniform(), rng.Uniform(), rng.Uniform()};
    ex.method_errors["a"] = 1.0 + ex.features[0];
    ex.method_errors["b"] = 1.0 + ex.features[1];
    ex.method_errors["c"] = 1.0 + ex.features[2];
    examples.push_back(std::move(ex));
  }
  EXPECT_TRUE(clf.Train(examples).ok());
  auto probs = clf.Predict({0.9, 0.1, 0.5, 0.3});
  EXPECT_TRUE(probs.ok());
  return *probs;
}

TEST(Determinism, ClassifierTrainingMatchesSeedGoldens) {
  ExpectNearVec(RunClassifier(), kClassifierProbs);
}

TEST(Determinism, ClassifierTrainingIsRunToRunIdentical) {
  std::vector<double> a = RunClassifier();
  std::vector<double> b = RunClassifier();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Determinism, DeepForecastersMatchSeedGoldens) {
  std::vector<double> train = SynthSeries(11, 160);
  methods::FitContext ctx;
  ctx.horizon = 6;
  ctx.period_hint = 24;
  ctx.seed = 17;
  methods::DeepOptions dopt;
  dopt.hidden = 16;
  dopt.epochs = 16;
  dopt.max_windows = 64;

  methods::MlpForecaster mlp(dopt);
  ASSERT_TRUE(mlp.Fit(train, ctx).ok());
  ExpectNearVec(*mlp.Forecast(6), kMlpForecast);

  methods::GruForecaster gru(dopt);
  ASSERT_TRUE(gru.Fit(train, ctx).ok());
  ExpectNearVec(*gru.Forecast(6), kGruForecast);

  methods::TcnForecaster tcn(dopt);
  ASSERT_TRUE(tcn.Fit(train, ctx).ok());
  ExpectNearVec(*tcn.Forecast(6), kTcnForecast);
}

}  // namespace
}  // namespace easytime
