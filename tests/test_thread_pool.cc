#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace easytime {
namespace {

TEST(ThreadPool, SubmitReturnsFutureValues) {
  ThreadPool pool(4);
  auto f1 = pool.Submit([]() { return 21 * 2; });
  auto f2 = pool.Submit([]() { return std::string("hello"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "hello");
}

TEST(ThreadPool, ManyTasksAllExecute) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter]() { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.Submit([&counter]() { counter.fetch_add(1); });
    }
  }  // destructor drains queue before joining
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace easytime
