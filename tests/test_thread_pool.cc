#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace easytime {
namespace {

TEST(ThreadPool, SubmitReturnsFutureValues) {
  ThreadPool pool(4);
  auto f1 = pool.Submit([]() { return 21 * 2; });
  auto f2 = pool.Submit([]() { return std::string("hello"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "hello");
}

TEST(ThreadPool, ManyTasksAllExecute) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter]() { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.Submit([&counter]() { counter.fetch_add(1); });
    }
  }  // destructor drains queue before joining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForManyMoreIndicesThanWorkers) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForFewerIndicesThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Regression: the seed's one-future-per-index ParallelFor deadlocked when
// called from a task already running on a pool worker (the inner wait
// occupied the only thread that could run the inner tasks). The chunked
// version executes inline on workers of the same pool.
TEST(ThreadPool, NestedParallelForFromSubmitDoesNotDeadlock) {
  ThreadPool pool(1);  // single worker: any blocking wait would deadlock
  std::atomic<int> counter{0};
  auto f = pool.Submit([&]() {
    pool.ParallelFor(16, [&](size_t) { counter.fetch_add(1); });
  });
  f.get();
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPool, NestedParallelForFromParallelForBody) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(8, [&](size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(100,
                                [&](size_t i) {
                                  if (i == 57) throw std::runtime_error("x");
                                }),
               std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> counter{0};
  pool.ParallelFor(10, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, GlobalPoolIsSingletonAndUsable) {
  ThreadPool& a = GlobalThreadPool();
  ThreadPool& b = GlobalThreadPool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
  std::atomic<int> counter{0};
  a.ParallelFor(32, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 32);
}

// ------------------------------------------------------- Guided scheduling

TEST(ThreadPool, GuidedParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.ParallelFor(
      visits.size(), [&](size_t i) { visits[i].fetch_add(1); },
      Schedule::kGuided);
  for (size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, GuidedParallelForZeroAndSingleIndex) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.ParallelFor(0, [&](size_t) { count.fetch_add(1); }, Schedule::kGuided);
  EXPECT_EQ(count.load(), 0);
  pool.ParallelFor(1, [&](size_t) { count.fetch_add(1); }, Schedule::kGuided);
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, GuidedParallelForFewerIndicesThanWorkers) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(3);
  pool.ParallelFor(
      visits.size(), [&](size_t i) { visits[i].fetch_add(1); },
      Schedule::kGuided);
  for (auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, GuidedParallelForSkewedWorkFinishesCompletely) {
  // Heavily skewed per-index cost — the case guided scheduling exists for.
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  constexpr size_t kN = 256;
  pool.ParallelFor(
      kN,
      [&](size_t i) {
        int64_t acc = 0;  // index 0 does ~256x the work of index 255
        for (size_t j = 0; j < (kN - i) * 200; ++j) acc += static_cast<int64_t>(j % 7);
        sum.fetch_add(acc % 1000 + 1);
      },
      Schedule::kGuided);
  EXPECT_GE(sum.load(), static_cast<int64_t>(kN));
}

TEST(ThreadPool, GuidedParallelForFromWorkerThreadRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  auto f = pool.Submit([&]() {
    // Nested call from a pool worker: must not deadlock, still covers all.
    pool.ParallelFor(50, [&](size_t) { count.fetch_add(1); },
                     Schedule::kGuided);
  });
  f.get();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, GuidedParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(
          100,
          [](size_t i) {
            if (i == 57) throw std::runtime_error("boom");
          },
          Schedule::kGuided),
      std::runtime_error);
}

}  // namespace
}  // namespace easytime
