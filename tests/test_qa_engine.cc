#include "qa/qa_engine.h"

#include <gtest/gtest.h>

#include <cmath>

namespace easytime::qa {
namespace {

class QaEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tsdata::SuiteSpec suite;
    suite.univariate_per_domain = 1;
    suite.multivariate_total = 2;
    suite.min_length = 160;
    suite.max_length = 200;
    eval::EvalConfig cfg;
    cfg.horizon = 24;  // "long-term" per the NL2SQL boundary
    cfg.metrics = {"mae", "rmse"};
    auto seeded = knowledge::SeedKnowledge(suite, cfg,
                                           {"naive", "theta", "ses", "drift"});
    ASSERT_TRUE(seeded.ok());
    seeded_ = new knowledge::SeededKnowledge(std::move(*seeded));
    auto engine = QaEngine::Create(seeded_->kb);
    ASSERT_TRUE(engine.ok());
    engine_ = engine->release();
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete seeded_;
    engine_ = nullptr;
    seeded_ = nullptr;
  }

  static knowledge::SeededKnowledge* seeded_;
  static QaEngine* engine_;
};

knowledge::SeededKnowledge* QaEngineTest::seeded_ = nullptr;
QaEngine* QaEngineTest::engine_ = nullptr;

TEST_F(QaEngineTest, TopKQuestionEndToEnd) {
  auto resp = engine_->Ask(
      "What are the top-3 methods (ordered by MAE) for long term "
      "forecasting?");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_TRUE(resp->verified);
  EXPECT_EQ(resp->table.rows.size(), 3u);
  EXPECT_NE(resp->answer.find("Top 3 methods by MAE"), std::string::npos);
  EXPECT_EQ(resp->chart.type, ChartType::kBar);
  EXPECT_EQ(resp->chart.labels.size(), 3u);
  EXPECT_NE(resp->sql.find("LIMIT 3"), std::string::npos);
  EXPECT_GE(resp->seconds, 0.0);
}

TEST_F(QaEngineTest, BestMethodPhrasing) {
  auto resp = engine_->Ask("Which method is best by mae?");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->table.rows.size(), 1u);
  EXPECT_NE(resp->answer.find("The best method by MAE"), std::string::npos);
}

TEST_F(QaEngineTest, ComparisonAnswerNamesWinner) {
  auto resp = engine_->Ask("Is theta or naive better by mae?");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->table.rows.size(), 2u);
  EXPECT_NE(resp->answer.find("beats"), std::string::npos);
}

TEST_F(QaEngineTest, DomainBreakdownUsesChart) {
  auto resp = engine_->Ask("How many datasets per domain?");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->table.rows.size(), 10u);
  EXPECT_EQ(resp->chart.type, ChartType::kPie);
}

TEST_F(QaEngineTest, CountQuestion) {
  auto resp = engine_->Ask("How many datasets have strong seasonality?");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->table.rows.size(), 1u);
  EXPECT_NE(resp->answer.find("datasets match"), std::string::npos);
}

TEST_F(QaEngineTest, FamilyRankingEndToEnd) {
  auto resp = engine_->Ask(
      "Is the statistical or deep family better for long term forecasting?");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  // Only statistical methods were seeded here, so one family row returns —
  // the point is the three-table join executes and phrases an answer.
  EXPECT_FALSE(resp->table.rows.empty());
  EXPECT_EQ(resp->table.columns[0], "family");
  EXPECT_NE(resp->answer.find("Ranking method families"), std::string::npos);
}

TEST_F(QaEngineTest, ListMethodsTable) {
  auto resp = engine_->Ask("Which methods are available?");
  ASSERT_TRUE(resp.ok());
  EXPECT_GE(resp->table.rows.size(), 20u);
}

TEST_F(QaEngineTest, UnsupportedQuestionRejectedBeforeExecution) {
  auto resp = engine_->Ask("Will the sales in Shanghai increase next month?");
  EXPECT_FALSE(resp.ok());
  // The failed question still lands in history with no SQL run.
  bool found = false;
  for (const auto& h : engine_->history()) {
    if (h.question.find("Shanghai") != std::string::npos) {
      found = true;
      EXPECT_FALSE(h.ok);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(QaEngineTest, RawSqlPathVerifies) {
  auto ok = engine_->AskSql(
      "SELECT name, domain FROM datasets ORDER BY name LIMIT 5");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->table.rows.size(), 5u);

  EXPECT_FALSE(engine_->AskSql("SELECT ghost FROM datasets").ok());
  EXPECT_FALSE(engine_->AskSql("DROP TABLE datasets").ok());
}

TEST_F(QaEngineTest, ResponseRendersAndSerializes) {
  auto resp = engine_->Ask("top-3 methods by mae").ValueOrDie();
  std::string text = resp.Render();
  EXPECT_NE(text.find("Q: "), std::string::npos);
  EXPECT_NE(text.find("SQL: "), std::string::npos);

  Json j = resp.ToJson();
  EXPECT_TRUE(j.Has("answer"));
  EXPECT_TRUE(j.Has("sql"));
  EXPECT_TRUE(j.Has("chart"));
  EXPECT_EQ(j.Get("rows").size(), resp.table.rows.size());
  // Serialized JSON is itself parseable.
  EXPECT_TRUE(Json::Parse(j.Dump(2)).ok());
}

TEST_F(QaEngineTest, HistoryAccumulates) {
  size_t before = engine_->history().size();
  (void)engine_->Ask("top-2 methods by rmse");
  EXPECT_EQ(engine_->history().size(), before + 1);
  EXPECT_TRUE(engine_->history().back().ok);
}

TEST_F(QaEngineTest, SchemaDescriptionExposed) {
  std::string schema = engine_->SchemaDescription();
  EXPECT_NE(schema.find("results("), std::string::npos);
  EXPECT_NE(schema.find("datasets("), std::string::npos);
}

TEST(ChartSpec, AsciiRenderingShapes) {
  ChartSpec bar;
  bar.type = ChartType::kBar;
  bar.title = "demo";
  bar.labels = {"a", "bb"};
  bar.values = {1.0, 3.0};
  std::string text = bar.RenderAscii(10);
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);

  ChartSpec pie;
  pie.type = ChartType::kPie;
  pie.labels = {"x", "y"};
  pie.values = {1.0, 1.0};
  EXPECT_NE(pie.RenderAscii(10).find("50.0%"), std::string::npos);

  ChartSpec none;
  EXPECT_TRUE(none.RenderAscii().empty());
}

TEST(SelectChart, ShapeDrivenSelection) {
  sql::ResultSet ranking;
  ranking.columns = {"method", "avg_mae"};
  ranking.rows = {{sql::Value::Text("a"), sql::Value::Real(1.0)},
                  {sql::Value::Text("b"), sql::Value::Real(2.0)}};
  EXPECT_EQ(SelectChart(ranking, "t").type, ChartType::kBar);

  sql::ResultSet counts;
  counts.columns = {"domain", "dataset_count"};
  counts.rows = {{sql::Value::Text("a"), sql::Value::Integer(3)},
                 {sql::Value::Text("b"), sql::Value::Integer(5)}};
  EXPECT_EQ(SelectChart(counts, "t").type, ChartType::kPie);

  sql::ResultSet series;
  series.columns = {"horizon", "value"};
  series.rows = {{sql::Value::Integer(6), sql::Value::Real(1.0)},
                 {sql::Value::Integer(12), sql::Value::Real(2.0)}};
  EXPECT_EQ(SelectChart(series, "t").type, ChartType::kLine);

  sql::ResultSet scalar;
  scalar.columns = {"count"};
  scalar.rows = {{sql::Value::Integer(7)}};
  EXPECT_EQ(SelectChart(scalar, "t").type, ChartType::kNone);

  sql::ResultSet empty;
  empty.columns = {"a", "b"};
  EXPECT_EQ(SelectChart(empty, "t").type, ChartType::kNone);
}

}  // namespace
}  // namespace easytime::qa
