#include "knowledge/knowledge_base.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/runner.h"

namespace easytime::knowledge {
namespace {

pipeline::BenchmarkReport MakeReport(const std::string& method, int round,
                                     size_t records) {
  pipeline::BenchmarkReport report;
  for (size_t i = 0; i < records; ++i) {
    pipeline::RunRecord rec;
    rec.dataset = "ds_" + std::to_string(i);
    rec.method = method + "_" + std::to_string(round);
    rec.strategy = "fixed";
    rec.horizon = 8;
    rec.metrics["mae"] = 1.0 + static_cast<double>(i);
    report.records.push_back(std::move(rec));
  }
  return report;
}

// Writers append reports while readers snapshot, query scores, and watch
// the version counter. TSan-clean and crash-free is the main assertion;
// the counts pin down that nothing was lost or double-committed.
TEST(KnowledgeBaseConcurrent, ParallelWritersAndReaders) {
  KnowledgeBase kb;
  constexpr int kWriters = 4;
  constexpr int kRounds = 25;
  constexpr size_t kRecordsPerReport = 3;

  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&kb, &stop, &reader_errors]() {
      uint64_t last_version = 0;
      size_t last_count = 0;
      while (!stop.load()) {
        uint64_t v = kb.version();
        size_t n = kb.NumResults();
        auto snapshot = kb.ResultsSnapshot();
        auto scores = kb.MethodScores("ds_0", "mae");
        // Monotonicity: neither the version nor the result count may ever
        // move backwards, and a snapshot is never larger than a later count.
        if (v < last_version || n < last_count || snapshot.size() > kb.NumResults()) {
          reader_errors.fetch_add(1);
        }
        for (const auto& [method, score] : scores) {
          if (score <= 0.0) reader_errors.fetch_add(1);
        }
        last_version = v;
        last_count = n;
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&kb, w]() {
      for (int round = 0; round < kRounds; ++round) {
        kb.AddReport(MakeReport("m" + std::to_string(w), round,
                                kRecordsPerReport));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(reader_errors.load(), 0);
  EXPECT_EQ(kb.NumResults(),
            static_cast<size_t>(kWriters) * kRounds * kRecordsPerReport);
  // One version bump per successful append batch.
  EXPECT_EQ(kb.version(), static_cast<uint64_t>(kWriters) * kRounds);
}

// References handed out by GetDataset stay valid while other threads
// append — the deque storage guarantee the serving layer relies on.
TEST(KnowledgeBaseConcurrent, ReferencesSurviveConcurrentAppends) {
  KnowledgeBase kb;
  kb.AddReport(MakeReport("anchor", 0, 5));
  auto before = kb.ResultsSnapshot();
  ASSERT_EQ(before.size(), 5u);
  const std::string anchor_method = before[0].method;

  std::thread writer([&kb]() {
    for (int round = 0; round < 50; ++round) {
      kb.AddReport(MakeReport("late", round, 4));
    }
  });

  // Re-query the anchor rows repeatedly while the writer grows the store.
  for (int i = 0; i < 200; ++i) {
    auto scores = kb.MethodScores("ds_0", "mae");
    ASSERT_FALSE(scores.empty());
    EXPECT_EQ(scores.count(anchor_method), 1u);
  }
  writer.join();
  EXPECT_EQ(kb.NumResults(), 5u + 50u * 4u);
}

TEST(KnowledgeBaseConcurrent, VersionOnlyBumpsOnRealMutation) {
  KnowledgeBase kb;
  EXPECT_EQ(kb.version(), 0u);
  kb.AddReport(pipeline::BenchmarkReport{});  // nothing to ingest
  EXPECT_EQ(kb.version(), 0u);
  kb.AddReport(MakeReport("m", 0, 2));
  EXPECT_EQ(kb.version(), 1u);
}

}  // namespace
}  // namespace easytime::knowledge
