#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace easytime {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad horizon");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad horizon");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad horizon");
}

TEST(Status, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "Not found");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "Parse error");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kTypeError), "Type error");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IO error");
}

TEST(Status, WithContextPrependsMessage) {
  Status s = Status::NotFound("no such dataset");
  Status wrapped = s.WithContext("loading config");
  EXPECT_EQ(wrapped.message(), "loading config: no such dataset");
  EXPECT_EQ(wrapped.code(), StatusCode::kNotFound);
  // OK statuses pass through untouched.
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(Status, CopyIsCheapAndShared) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(b.message(), "boom");
  EXPECT_EQ(a, b);
}

Status FailingFunction() { return Status::IOError("disk gone"); }

Status PropagatesError() {
  EASYTIME_RETURN_IF_ERROR(FailingFunction());
  return Status::Internal("should not reach");
}

TEST(StatusMacros, ReturnIfErrorPropagates) {
  Status s = PropagatesError();
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

Result<int> GiveValue() { return 42; }
Result<int> GiveError() { return Status::NotFound("nope"); }

Result<int> UseAssignOrReturn(bool fail) {
  EASYTIME_ASSIGN_OR_RETURN(int v, fail ? GiveError() : GiveValue());
  return v + 1;
}

TEST(Result, HoldsValue) {
  Result<int> r = GiveValue();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = GiveError();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(Result, ValueOrReturnsValueWhenOk) {
  EXPECT_EQ(GiveValue().ValueOr(-1), 42);
}

TEST(Result, AssignOrReturnMacro) {
  EXPECT_EQ(UseAssignOrReturn(false).ValueOrDie(), 43);
  EXPECT_EQ(UseAssignOrReturn(true).status().code(), StatusCode::kNotFound);
}

TEST(Result, ConstructingFromOkStatusBecomesInternalError) {
  Result<int> r(Status::OK());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(Result, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace easytime
