#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "serve/request.h"

namespace easytime::serve {
namespace {

core::EasyTime* MakeSystem() {
  core::EasyTime::Options opt;
  opt.suite.univariate_per_domain = 1;
  opt.suite.multivariate_total = 1;
  opt.suite.min_length = 180;
  opt.suite.max_length = 220;
  opt.seed_eval.horizon = 12;
  opt.seed_eval.metrics = {"mae", "rmse"};
  opt.seed_methods = {"naive", "seasonal_naive", "theta", "ses", "drift"};
  opt.ensemble.top_k = 2;
  opt.ensemble.ts2vec.epochs = 3;
  opt.ensemble.ts2vec.repr_dim = 8;
  opt.ensemble.ts2vec.hidden_dim = 10;
  opt.ensemble.ts2vec.depth = 2;
  opt.ensemble.classifier.epochs = 80;
  auto system = core::EasyTime::Create(opt);
  EXPECT_TRUE(system.ok()) << system.status().ToString();
  return system.ok() ? system->release() : nullptr;
}

class ServeStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { system_ = MakeSystem(); }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  static core::EasyTime* system_;
};

core::EasyTime* ServeStressTest::system_ = nullptr;

// The acceptance scenario: >= 8 concurrent in-process clients firing mixed
// requests. Every client must get a correct response for every request —
// nothing wrong, nothing dropped, no deadlock.
TEST_F(ServeStressTest, EightConcurrentClientsZeroWrongOrDroppedResponses) {
  ASSERT_NE(system_, nullptr);
  ForecastServer::Options opt;
  opt.num_worker_threads = 4;
  opt.fast_queue_capacity = 1024;  // admission control is tested elsewhere
  ForecastServer server(system_, opt);
  server.Start();

  const std::vector<std::string> datasets = system_->repository()->names();
  const std::vector<std::string> methods = {"naive", "drift", "ses", "theta"};
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 25;

  std::atomic<int> correct{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const int64_t id = c * 1000 + r;
        Json req = Json::Object();
        req.Set("id", id);
        Json params = Json::Object();
        const int kind = r % 4;
        int64_t horizon = 0;
        if (kind == 3) {
          req.Set("endpoint", "recommend");
          params.Set("dataset", datasets[r % datasets.size()]);
          params.Set("k", static_cast<int64_t>(2));
        } else {
          req.Set("endpoint", "forecast");
          // A mix of shared requests (cache + dedup paths) and per-client
          // ones (distinct computations batched together).
          params.Set("dataset", datasets[(kind == 0 ? r : c + r) %
                                         datasets.size()]);
          params.Set("method", methods[r % methods.size()]);
          horizon = 3 + (r % 5);
          params.Set("horizon", horizon);
        }
        req.Set("params", std::move(params));

        auto resp = Json::Parse(server.HandleLine(req.Dump()));
        bool ok = resp.ok() && resp->GetBool("ok", false) &&
                  resp->GetInt("id", -1) == id;
        if (ok && kind != 3) {
          ok = resp->Get("result").Get("values").size() ==
               static_cast<size_t>(horizon);
        }
        if (ok && kind == 3) {
          ok = resp->Get("result").Get("recommendations").size() == 2u;
        }
        if (ok) {
          correct.fetch_add(1);
        } else {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(correct.load(), kClients * kRequestsPerClient);
  EXPECT_EQ(wrong.load(), 0);

  Json stats = server.StatsJson();
  int64_t served = stats.Get("endpoints").Get("forecast").GetInt("requests", 0) +
                   stats.Get("endpoints").Get("recommend").GetInt("requests", 0);
  EXPECT_EQ(served, kClients * kRequestsPerClient);
  server.Stop();
}

// Micro-batching correctness: identical and same-method requests coalesce,
// but every client still receives its own id and the right payload.
TEST_F(ServeStressTest, BatchedIdenticalRequestsFanOutCorrectly) {
  ASSERT_NE(system_, nullptr);
  ForecastServer::Options opt;
  opt.num_worker_threads = 2;
  opt.enable_batching = true;
  opt.batch_max = 4;
  opt.batch_wait_ms = 5.0;
  opt.cache_capacity = 0;  // force every request through the batcher
  ForecastServer server(system_, opt);
  server.Start();

  const std::string dataset = system_->repository()->names()[0];
  constexpr int kClients = 12;
  std::vector<std::thread> clients;
  std::atomic<int> good{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      Json req = Json::Object();
      req.Set("id", static_cast<int64_t>(c));
      req.Set("endpoint", "forecast");
      Json params = Json::Object();
      params.Set("dataset", dataset);
      params.Set("method", "seasonal_naive");
      params.Set("horizon", static_cast<int64_t>(6));
      req.Set("params", std::move(params));
      auto resp = Json::Parse(server.HandleLine(req.Dump()));
      if (resp.ok() && resp->GetBool("ok", false) &&
          resp->GetInt("id", -1) == c &&
          resp->Get("result").Get("values").size() == 6u) {
        good.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(good.load(), kClients);

  Json stats = server.StatsJson();
  // Batching actually happened (not 1 flush per request) whenever requests
  // overlapped; with 12 concurrent identical requests at a 5 ms window at
  // least one multi-item batch is effectively guaranteed.
  EXPECT_GE(stats.Get("batching").GetInt("items", 0), kClients);
  EXPECT_LE(stats.Get("batching").GetInt("batches", 0),
            stats.Get("batching").GetInt("items", 0));
  server.Stop();
}

// Graceful shutdown drain: Stop() while slow requests are queued must
// answer every admitted request — the contract is "reject at the door or
// serve to completion", never hang or drop.
TEST_F(ServeStressTest, StopDrainsInFlightAndQueuedRequests) {
  ASSERT_NE(system_, nullptr);
  ForecastServer::Options opt;
  opt.num_worker_threads = 2;
  opt.fast_queue_capacity = 64;
  opt.enable_batching = false;
  opt.cache_capacity = 0;
  auto server = std::make_unique<ForecastServer>(system_, opt);
  server->Start();

  const std::string dataset = system_->repository()->names()[0];
  constexpr int kClients = 10;
  std::atomic<int> answered{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&]() {
      Json params = Json::Object();
      params.Set("dataset", dataset);
      params.Set("method", "naive");
      params.Set("horizon", static_cast<int64_t>(2));
      params.Set("sleep_ms", 100.0);
      auto r = server->Call("forecast", params);
      if (r.ok()) {
        answered.fetch_add(1);
      } else if (r.status().IsUnavailable()) {
        rejected.fetch_add(1);
      }
    });
  }
  // Let the requests reach the queue, then pull the plug mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  server->Stop();
  for (auto& t : clients) t.join();

  // Every client got a definitive answer.
  EXPECT_EQ(answered.load() + rejected.load(), kClients);
  // And the drain actually served what it admitted (at least the two that
  // were on workers when Stop() hit).
  EXPECT_GE(answered.load(), 2);

  server.reset();  // double-stop via destructor must be safe
}

// Readers keep getting consistent answers while an evaluation job commits
// new knowledge in the background.
TEST_F(ServeStressTest, ReadsStayConsistentDuringBackgroundEvaluation) {
  ASSERT_NE(system_, nullptr);
  ForecastServer server(system_);
  server.Start();

  auto cfg = Json::Parse(R"({
    "methods": ["window_average"],
    "evaluation": {"strategy": "fixed", "horizon": 6, "metrics": ["mae"]}
  })");
  ASSERT_TRUE(cfg.ok());
  auto submitted = server.Call("evaluate", *cfg);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  int64_t job = submitted->GetInt("job", -1);

  const std::string dataset = system_->repository()->names()[0];
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int c = 0; c < 4; ++c) {
    readers.emplace_back([&]() {
      while (!done.load()) {
        Json params = Json::Object();
        params.Set("dataset", dataset);
        params.Set("method", "theta");
        params.Set("horizon", static_cast<int64_t>(4));
        auto r = server.Call("forecast", params);
        if (!r.ok() || r->Get("values").size() != 4u) failures.fetch_add(1);
      }
    });
  }

  Json poll = Json::Object();
  poll.Set("job", job);
  std::string state = "queued";
  for (int i = 0; i < 600 && (state == "queued" || state == "running"); ++i) {
    auto s = server.Call("job_status", poll);
    ASSERT_TRUE(s.ok());
    state = s->GetString("state", "");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  done.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(state, "done");
  EXPECT_EQ(failures.load(), 0);
  server.Stop();
}

}  // namespace
}  // namespace easytime::serve
