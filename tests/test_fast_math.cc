// Relaxed-tolerance suite for the fast numeric tiers (DESIGN.md §10). The
// reference tier's bit-exactness is pinned by test_determinism /
// test_matrix_kernels; here the contract is only a rel-err envelope of the
// FMA-contracted (kFast) and float32 (kFastF32) kernels against the
// reference results, plus mode plumbing. The whole file must pass under any
// EASYTIME_FAST_MATH setting — every test pins the modes it compares
// explicitly via ScopedMatrixMode.

#include <cmath>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ensemble/ts2vec.h"
#include "nn/gru.h"
#include "nn/matrix.h"

namespace easytime::nn {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  return Matrix::Gaussian(rows, cols, 1.0, rng);
}

/// max_i |a_i - b_i| / max(1, max_i |a_i|): relative to the magnitude of the
/// reference result so tiny absolute entries do not dominate.
double MaxRelErr(const Matrix& ref, const Matrix& got) {
  EXPECT_EQ(ref.rows(), got.rows());
  EXPECT_EQ(ref.cols(), got.cols());
  double scale = 1.0;
  for (size_t i = 0; i < ref.size(); ++i) {
    scale = std::max(scale, std::fabs(ref.data()[i]));
  }
  double err = 0.0;
  for (size_t i = 0; i < ref.size(); ++i) {
    err = std::max(err, std::fabs(ref.data()[i] - got.data()[i]) / scale);
  }
  return err;
}

struct GemmShape {
  size_t m, n, k;
};

// Spans the shapes the encoder stack actually issues: single recurrent rows,
// narrow conv panels, and blocked-path sizes with ragged tails.
const GemmShape kShapes[] = {
    {1, 24, 24},  {1, 96, 32},   {3, 5, 7},      {8, 16, 64},
    {60, 24, 24}, {64, 64, 64},  {61, 67, 130},  {128, 96, 200},
    {200, 16, 8}, {256, 256, 256},
};

TEST(FastMathMode, ScopedOverrideSetsAndRestores) {
  const MatrixMode ambient = GetMatrixMode();
  {
    ScopedMatrixMode fast(MatrixMode::kFast);
    EXPECT_EQ(GetMatrixMode(), MatrixMode::kFast);
    {
      ScopedMatrixMode f32(MatrixMode::kFastF32);
      EXPECT_EQ(GetMatrixMode(), MatrixMode::kFastF32);
    }
    EXPECT_EQ(GetMatrixMode(), MatrixMode::kFast);
  }
  EXPECT_EQ(GetMatrixMode(), ambient);
}

class FastMathGemm : public ::testing::TestWithParam<GemmShape> {};

TEST_P(FastMathGemm, FastTiersMatchReferenceWithinTolerance) {
  const GemmShape s = GetParam();
  Rng rng(7 + s.m * 131 + s.n * 17 + s.k);
  const Matrix a = RandomMatrix(s.m, s.k, &rng);
  const Matrix b = RandomMatrix(s.k, s.n, &rng);
  const Matrix at = RandomMatrix(s.k, s.m, &rng);  // A^T operand
  const Matrix bt = RandomMatrix(s.n, s.k, &rng);  // B^T operand

  Matrix ref, ref_ta, ref_tb;
  {
    ScopedMatrixMode mode(MatrixMode::kReference);
    ref = a.MatMul(b);
    ref_ta = MatMulTransA(at, b);
    ref_tb = MatMulTransB(a, bt);
  }
  {
    ScopedMatrixMode mode(MatrixMode::kFast);
    // fp64 with FMA: only contraction rounding differs from the reference.
    EXPECT_LT(MaxRelErr(ref, a.MatMul(b)), 1e-12);
    EXPECT_LT(MaxRelErr(ref_ta, MatMulTransA(at, b)), 1e-12);
    EXPECT_LT(MaxRelErr(ref_tb, MatMulTransB(a, bt)), 1e-12);
  }
  {
    ScopedMatrixMode mode(MatrixMode::kFastF32);
    // float32 multiply-accumulate, fp64 fold-in per k-block.
    EXPECT_LT(MaxRelErr(ref, a.MatMul(b)), 2e-4);
    EXPECT_LT(MaxRelErr(ref_ta, MatMulTransA(at, b)), 2e-4);
    EXPECT_LT(MaxRelErr(ref_tb, MatMulTransB(a, bt)), 2e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, FastMathGemm, ::testing::ValuesIn(kShapes));

TEST(FastMathGru, ForwardAndBackwardTrackReference) {
  const size_t T = 48, input = 6, H = 32;
  Rng data_rng(11);
  const Matrix x = RandomMatrix(T, input, &data_rng);
  Matrix grad_out(T, H);
  for (size_t i = 0; i < grad_out.size(); ++i) {
    grad_out.data()[i] = data_rng.Gaussian() * 0.1;
  }

  auto run = [&](MatrixMode mode, Matrix* out, Matrix* grad_in) {
    ScopedMatrixMode scoped(mode);
    Rng rng(42);  // identical weights across modes
    Gru gru(input, H, &rng);
    gru.ForwardInto(x, out);
    gru.BackwardInto(grad_out, grad_in);
  };

  Matrix out_ref, gin_ref, out_fast, gin_fast, out_f32, gin_f32;
  run(MatrixMode::kReference, &out_ref, &gin_ref);
  run(MatrixMode::kFast, &out_fast, &gin_fast);
  run(MatrixMode::kFastF32, &out_f32, &gin_f32);

  EXPECT_LT(MaxRelErr(out_ref, out_fast), 1e-10);
  EXPECT_LT(MaxRelErr(gin_ref, gin_fast), 1e-8);
  // float32 forward activations feed the (scalar fp64) BPTT, so gradient
  // error tracks the forward error amplified through the gate derivatives.
  EXPECT_LT(MaxRelErr(out_ref, out_f32), 1e-3);
  EXPECT_LT(MaxRelErr(gin_ref, gin_f32), 1e-2);
}

TEST(FastMathGru, ForwardConstAgreesWithForwardInto) {
  ScopedMatrixMode scoped(MatrixMode::kFastF32);
  Rng rng(5);
  Gru gru(4, 24, &rng);
  const Matrix x = RandomMatrix(40, 4, &rng);
  Matrix a, b;
  gru.ForwardInto(x, &a);
  gru.ForwardConst(x, &b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(FastMathTs2Vec, PretrainLossesTrackReferenceTier) {
  ensemble::Ts2VecOptions options;
  options.repr_dim = 8;
  options.hidden_dim = 12;
  options.depth = 2;
  options.crop_length = 48;
  options.batch_size = 4;
  options.epochs = 2;
  options.seed = 33;

  std::vector<std::vector<double>> corpus;
  Rng rng(77);
  for (int s = 0; s < 6; ++s) {
    std::vector<double> series(120);
    for (size_t t = 0; t < series.size(); ++t) {
      series[t] = std::sin(0.08 * static_cast<double>(t) + s) +
                  0.2 * rng.Gaussian();
    }
    corpus.push_back(std::move(series));
  }

  auto pretrain = [&](MatrixMode mode) {
    ScopedMatrixMode scoped(mode);
    ensemble::Ts2VecEncoder encoder(options);
    auto stats_or = ensemble::PretrainTs2Vec(&encoder, corpus);
    EXPECT_TRUE(stats_or.ok()) << stats_or.status().ToString();
    return stats_or.ok() ? stats_or->epoch_losses : std::vector<double>();
  };

  const std::vector<double> ref = pretrain(MatrixMode::kReference);
  const std::vector<double> f32 = pretrain(MatrixMode::kFastF32);
  ASSERT_EQ(ref.size(), f32.size());
  for (size_t e = 0; e < ref.size(); ++e) {
    ASSERT_TRUE(std::isfinite(f32[e]));
    // The contrastive loss is O(1); 5% covers the float32 drift through two
    // epochs of divergent optimization trajectories.
    EXPECT_NEAR(ref[e], f32[e], 0.05 * std::max(1.0, std::fabs(ref[e])))
        << "epoch " << e;
  }
}

}  // namespace
}  // namespace easytime::nn
