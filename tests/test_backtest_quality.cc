// Forecast-quality regression harness (ISSUE 9 satellite): golden-pinned
// rolling-origin backtest metrics for the smoothing/naive/theta family on a
// fixed seeded series, plus distribution-level bounds (interval coverage on
// Gaussian random walks). The family under test is scalar arithmetic only —
// no matrix kernels — so the pinned values must reproduce bit-for-bit on
// the reference AND fast-math kernel tiers (EASYTIME_FAST_MATH), making
// this suite the tripwire for silent forecast-quality regressions.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "eval/backtest.h"
#include "tsdata/generator.h"

namespace easytime::eval {
namespace {

/// The fixed quality-suite series: trending + seasonal + AR noise, one
/// canonical seed. Changing the generator is a quality-suite event and must
/// re-pin the goldens below.
std::vector<double> GoldenSeries() {
  tsdata::GeneratorConfig cfg;
  cfg.name = "quality";
  cfg.length = 320;
  cfg.level = 20.0;
  cfg.period = 12;
  cfg.season_amp = 4.0;
  cfg.trend_slope = 0.03;
  cfg.noise_std = 0.6;
  cfg.ar_coef = 0.4;
  cfg.seed = 20260808;
  return tsdata::GenerateSeries(cfg).values();
}

BacktestConfig GoldenConfig(const std::string& method) {
  BacktestConfig cfg;
  cfg.method = method;
  cfg.origins = 5;
  cfg.horizon = 12;
  cfg.metrics = {"mase", "smape", "mae"};
  cfg.confidence = 0.95;
  return cfg;
}

struct GoldenRow {
  const char* method;
  double mase;
  double smape;
  double mae;
  double coverage;
};

// ---------------------------------------------------------------------------
// Golden pins
// ---------------------------------------------------------------------------

TEST(BacktestQualityTest, GoldenMetricsForSmoothingNaiveThetaFamily) {
  const std::vector<double> values = GoldenSeries();
  // Pinned from the reference run; the tolerance absorbs libm ULP drift,
  // nothing more. A change here is a forecast-quality change — investigate,
  // don't re-pin blindly.
  const GoldenRow kGolden[] = {
      {"naive", 3.1911698336060557, 9.0122300806153657, 2.5826590100073030,
       0.98333333333333317},
      {"seasonal_naive", 1.0836589656549602, 3.1324201596080870,
       0.87680243408966374, 0.94999999999999996},
      {"drift", 3.1107200648469862, 8.7891902133523878, 2.5174835891191853,
       1.0},
      {"ses", 3.1923034743175149, 9.0151907709636365, 2.5835626370904827,
       0.98333333333333317},
      {"holt", 11.747742609175972, 45.294302130374049, 9.5347135665462339,
       1.0},
      {"theta", 1.0403151977739153, 2.9939965330887608, 0.84145085409854981,
       0.94999999999999996},
  };
  for (const auto& row : kGolden) {
    auto report = RunBacktest(values, 12, GoldenConfig(row.method));
    ASSERT_TRUE(report.ok()) << row.method << ": "
                             << report.status().ToString();
    EXPECT_NEAR(report->aggregate.at("mase"), row.mase, 1e-6) << row.method;
    EXPECT_NEAR(report->aggregate.at("smape"), row.smape, 1e-6) << row.method;
    EXPECT_NEAR(report->aggregate.at("mae"), row.mae, 1e-6) << row.method;
    EXPECT_NEAR(report->coverage, row.coverage, 1e-9) << row.method;
  }
}

TEST(BacktestQualityTest, SeasonalAwareMethodsBeatNaiveOnSeasonalData) {
  // Ordering assertions are robust to re-pinning: on strongly seasonal data
  // the seasonal/theta family must beat plain naive by a clear margin.
  const std::vector<double> values = GoldenSeries();
  auto naive = RunBacktest(values, 12, GoldenConfig("naive"));
  auto seasonal = RunBacktest(values, 12, GoldenConfig("seasonal_naive"));
  auto theta = RunBacktest(values, 12, GoldenConfig("theta"));
  ASSERT_TRUE(naive.ok() && seasonal.ok() && theta.ok());
  EXPECT_LT(seasonal->aggregate.at("mase"), naive->aggregate.at("mase"));
  EXPECT_LT(theta->aggregate.at("mase"), naive->aggregate.at("mase"));
}

TEST(BacktestQualityTest, GoldenReportIsStableAcrossRepeatRuns) {
  // Two runs in the same process must agree exactly (no hidden state in the
  // registry, the scaler, or the fan-out).
  const std::vector<double> values = GoldenSeries();
  auto a = RunBacktest(values, 12, GoldenConfig("theta"));
  auto b = RunBacktest(values, 12, GoldenConfig("theta"));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->aggregate.at("mase"), b->aggregate.at("mase"));
  EXPECT_EQ(a->coverage, b->coverage);
  EXPECT_EQ(a->mean_interval_width, b->mean_interval_width);
}

// ---------------------------------------------------------------------------
// Statistical bounds: interval calibration on random walks
// ---------------------------------------------------------------------------

TEST(BacktestQualityTest, NaiveIntervalsCoverRandomWalksAtRoughly95Percent) {
  // Naive's analytic prediction intervals are exact for a Gaussian random
  // walk, so across many independent walks the 95% intervals must cover
  // roughly 95% of future values. 60 walks x 3 origins x 8 steps = 1440
  // Bernoulli(0.95ish) draws; [0.90, 0.99] is a ~6-sigma acceptance band —
  // a miscalibrated interval formula lands far outside it.
  double total_coverage = 0.0;
  size_t runs = 0;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    tsdata::GeneratorConfig cfg;
    cfg.name = "walk";
    cfg.length = 200;
    cfg.level = 50.0;
    cfg.noise_std = 1.0;
    cfg.random_walk = true;
    cfg.seed = seed;
    std::vector<double> values = tsdata::GenerateSeries(cfg).values();

    BacktestConfig bt;
    bt.method = "naive";
    bt.origins = 3;
    bt.horizon = 8;
    bt.confidence = 0.95;
    bt.scaler = "none";
    bt.metrics = {"mae"};
    auto report = RunBacktest(values, 0, bt);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    total_coverage += report->coverage;
    ++runs;
  }
  const double mean_coverage = total_coverage / static_cast<double>(runs);
  EXPECT_GE(mean_coverage, 0.90) << "intervals are too narrow";
  EXPECT_LE(mean_coverage, 0.99) << "intervals are too wide";
}

TEST(BacktestQualityTest, HigherConfidenceWidensIntervalsAndCoverage) {
  const std::vector<double> values = GoldenSeries();
  BacktestConfig narrow = GoldenConfig("ses");
  narrow.confidence = 0.5;
  BacktestConfig wide = GoldenConfig("ses");
  wide.confidence = 0.99;
  auto n = RunBacktest(values, 12, narrow);
  auto w = RunBacktest(values, 12, wide);
  ASSERT_TRUE(n.ok() && w.ok());
  EXPECT_LT(n->mean_interval_width, w->mean_interval_width);
  EXPECT_LE(n->coverage, w->coverage);
}

}  // namespace
}  // namespace easytime::eval
