#pragma once

/// \file test_util.h
/// \brief Shared helpers for the EasyTime test suite: synthetic series and
/// finite-difference gradient checking for the nn/ layers.

#include <cmath>
#include <functional>
#include <numbers>
#include <vector>

#include "nn/matrix.h"

namespace easytime::testing {

/// Deterministic sine + trend + noise series.
inline std::vector<double> MakeSeasonalSeries(size_t n, size_t period,
                                              double amp = 5.0,
                                              double slope = 0.0,
                                              double noise = 0.0,
                                              uint64_t seed = 7) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (size_t t = 0; t < n; ++t) {
    out[t] = 10.0 + slope * static_cast<double>(t) +
             amp * std::sin(2.0 * std::numbers::pi * static_cast<double>(t) /
                            static_cast<double>(period)) +
             (noise > 0.0 ? rng.Gaussian(0.0, noise) : 0.0);
  }
  return out;
}

/// Pure linear series a + b*t.
inline std::vector<double> MakeLinearSeries(size_t n, double a, double b) {
  std::vector<double> out(n);
  for (size_t t = 0; t < n; ++t) out[t] = a + b * static_cast<double>(t);
  return out;
}

/// \brief Central-difference gradient check: compares the analytic gradient
/// of `loss(x)` w.r.t. a parameter matrix against finite differences.
/// \param params the parameter being checked (value mutated and restored)
/// \param compute_loss re-runs the forward+loss with current params
/// \param compute_grad runs forward+backward and returns the analytic grad
/// \returns maximum relative error across entries
inline double GradCheck(nn::Matrix* value,
                        const std::function<double()>& compute_loss,
                        const std::function<nn::Matrix()>& compute_grad,
                        double eps = 1e-5) {
  nn::Matrix analytic = compute_grad();
  double max_rel = 0.0;
  for (size_t i = 0; i < value->raw().size(); ++i) {
    double orig = value->raw()[i];
    value->raw()[i] = orig + eps;
    double lp = compute_loss();
    value->raw()[i] = orig - eps;
    double lm = compute_loss();
    value->raw()[i] = orig;
    double numeric = (lp - lm) / (2.0 * eps);
    double a = analytic.raw()[i];
    double denom = std::max({std::fabs(a), std::fabs(numeric), 1e-8});
    max_rel = std::max(max_rel, std::fabs(a - numeric) / denom);
  }
  return max_rel;
}

}  // namespace easytime::testing
