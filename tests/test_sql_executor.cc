#include "sql/executor.h"

#include <gtest/gtest.h>

namespace easytime::sql {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(ExecuteQuery(&db_,
                             "CREATE TABLE results (dataset TEXT, method "
                             "TEXT, metric TEXT, value REAL, horizon INTEGER)")
                    .ok());
    ASSERT_TRUE(
        ExecuteQuery(&db_,
                     "CREATE TABLE datasets (name TEXT, domain TEXT, "
                     "trend REAL, multivariate INTEGER)")
            .ok());
    ASSERT_TRUE(ExecuteQuery(&db_, R"(
      INSERT INTO results VALUES
        ('t1', 'naive', 'mae', 2.0, 24),
        ('t1', 'theta', 'mae', 1.0, 24),
        ('t1', 'gbdt',  'mae', 1.5, 24),
        ('t2', 'naive', 'mae', 4.0, 24),
        ('t2', 'theta', 'mae', 3.0, 24),
        ('t2', 'gbdt',  'mae', 5.0, 12),
        ('t1', 'naive', 'rmse', 2.5, 24)
    )").ok());
    ASSERT_TRUE(ExecuteQuery(&db_, R"(
      INSERT INTO datasets VALUES
        ('t1', 'traffic', 0.8, 0),
        ('t2', 'web', 0.2, 1)
    )").ok());
  }

  ResultSet Q(const std::string& sql) {
    auto r = ExecuteQuery(&db_, sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(*r) : ResultSet{};
  }

  Database db_;
};

TEST_F(ExecutorTest, SelectStarReturnsAllColumnsAndRows) {
  auto rs = Q("SELECT * FROM datasets");
  EXPECT_EQ(rs.columns.size(), 4u);
  EXPECT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.columns[0], "name");
}

TEST_F(ExecutorTest, WhereFiltersRows) {
  auto rs = Q("SELECT method FROM results WHERE value < 2.0 AND metric = 'mae'");
  ASSERT_EQ(rs.rows.size(), 2u);  // theta(1.0), gbdt(1.5)
}

TEST_F(ExecutorTest, ComparisonOperatorsWork) {
  EXPECT_EQ(Q("SELECT method FROM results WHERE value >= 4.0").rows.size(),
            2u);
  EXPECT_EQ(Q("SELECT method FROM results WHERE value != 2.0").rows.size(),
            6u);
  EXPECT_EQ(Q("SELECT method FROM results WHERE horizon <> 24").rows.size(),
            1u);
}

TEST_F(ExecutorTest, LikeInBetween) {
  EXPECT_EQ(Q("SELECT name FROM datasets WHERE name LIKE 't%'").rows.size(),
            2u);
  EXPECT_EQ(
      Q("SELECT method FROM results WHERE method IN ('naive', 'gbdt')")
          .rows.size(),
      5u);
  // Values in [1.5, 3.0]: theta t2 (3.0), gbdt t1 (1.5), naive t1 mae
  // (2.0), naive t1 rmse (2.5).
  EXPECT_EQ(
      Q("SELECT method FROM results WHERE value BETWEEN 1.5 AND 3.0")
          .rows.size(),
      4u);
  EXPECT_EQ(
      Q("SELECT method FROM results WHERE method NOT IN ('naive')")
          .rows.size(),
      4u);
}

TEST_F(ExecutorTest, ArithmeticInProjection) {
  auto rs = Q("SELECT value * 2 + 1 FROM results WHERE method = 'theta' "
              "AND dataset = 't1'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rs.rows[0][0].ToDouble(), 3.0);
  EXPECT_FALSE(ExecuteQuery(&db_, "SELECT 1 / 0 FROM datasets").ok());
}

TEST_F(ExecutorTest, ScalarFunctions) {
  auto rs = Q("SELECT UPPER(domain), ABS(-trend), ROUND(trend + 0.4) "
              "FROM datasets WHERE name = 't1'");
  EXPECT_EQ(rs.rows[0][0].AsText(), "TRAFFIC");
  EXPECT_DOUBLE_EQ(rs.rows[0][1].ToDouble(), 0.8);
  EXPECT_DOUBLE_EQ(rs.rows[0][2].ToDouble(), 1.0);
}

TEST_F(ExecutorTest, GroupByWithAggregates) {
  auto rs = Q("SELECT method, AVG(value) AS avg_mae, COUNT(*) AS n "
              "FROM results WHERE metric = 'mae' "
              "GROUP BY method ORDER BY avg_mae ASC");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0].AsText(), "theta");   // avg 2.0
  EXPECT_DOUBLE_EQ(rs.rows[0][1].ToDouble(), 2.0);
  EXPECT_EQ(rs.rows[0][2].AsInteger(), 2);
  EXPECT_EQ(rs.rows[2][0].AsText(), "gbdt");    // avg 3.25
}

TEST_F(ExecutorTest, HavingFiltersGroups) {
  auto rs = Q("SELECT dataset, COUNT(*) AS n FROM results "
              "GROUP BY dataset HAVING COUNT(*) > 3");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsText(), "t1");
}

TEST_F(ExecutorTest, AggregatesWithoutGroupBy) {
  auto rs = Q("SELECT COUNT(*), MIN(value), MAX(value), SUM(horizon) "
              "FROM results");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInteger(), 7);
  EXPECT_DOUBLE_EQ(rs.rows[0][1].ToDouble(), 1.0);
  EXPECT_DOUBLE_EQ(rs.rows[0][2].ToDouble(), 5.0);
}

TEST_F(ExecutorTest, CountDistinct) {
  auto rs = Q("SELECT COUNT(DISTINCT method) FROM results");
  EXPECT_EQ(rs.rows[0][0].AsInteger(), 3);
}

TEST_F(ExecutorTest, JoinCombinesTables) {
  auto rs = Q("SELECT r.method, d.domain FROM results r "
              "JOIN datasets d ON r.dataset = d.name "
              "WHERE d.trend > 0.5 AND r.metric = 'mae'");
  ASSERT_EQ(rs.rows.size(), 3u);  // t1 rows only
  for (const auto& row : rs.rows) {
    EXPECT_EQ(row[1].AsText(), "traffic");
  }
}

TEST_F(ExecutorTest, LeftJoinKeepsUnmatchedRowsWithNulls) {
  // Add a result row whose dataset has no datasets entry.
  ASSERT_TRUE(ExecuteQuery(&db_,
                           "INSERT INTO results VALUES "
                           "('orphan', 'naive', 'mae', 9.0, 24)")
                  .ok());
  auto inner = Q("SELECT r.method, d.domain FROM results r "
                 "JOIN datasets d ON r.dataset = d.name "
                 "WHERE r.value = 9.0");
  EXPECT_TRUE(inner.rows.empty());  // inner join drops the orphan

  auto left = Q("SELECT r.method, d.domain FROM results r "
                "LEFT JOIN datasets d ON r.dataset = d.name "
                "WHERE r.value = 9.0");
  ASSERT_EQ(left.rows.size(), 1u);
  EXPECT_EQ(left.rows[0][0].AsText(), "naive");
  EXPECT_TRUE(left.rows[0][1].is_null());  // unmatched right side is NULL

  // Matched rows behave exactly like the inner join.
  auto both = Q("SELECT r.dataset, d.domain FROM results r "
                "LEFT JOIN datasets d ON r.dataset = d.name "
                "WHERE r.dataset = 't1' AND r.metric = 'mae'");
  ASSERT_EQ(both.rows.size(), 3u);
  for (const auto& row : both.rows) {
    EXPECT_EQ(row[1].AsText(), "traffic");
  }
}

TEST_F(ExecutorTest, LeftJoinNullsFilterableWithIsNull) {
  ASSERT_TRUE(ExecuteQuery(&db_,
                           "INSERT INTO results VALUES "
                           "('ghost', 'theta', 'mae', 7.0, 24)")
                  .ok());
  auto rs = Q("SELECT r.dataset FROM results r "
              "LEFT JOIN datasets d ON r.dataset = d.name "
              "WHERE d.name IS NULL");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsText(), "ghost");
}

TEST_F(ExecutorTest, JoinedAggregation) {
  auto rs = Q("SELECT r.method, AVG(r.value) AS avg_mae FROM results r "
              "JOIN datasets d ON r.dataset = d.name "
              "WHERE r.metric = 'mae' AND d.multivariate = 1 "
              "GROUP BY r.method ORDER BY avg_mae ASC LIMIT 2");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].AsText(), "theta");  // 3.0 on t2
}

TEST_F(ExecutorTest, OrderByMultiKeyAndDesc) {
  auto rs = Q("SELECT dataset, method FROM results WHERE metric = 'mae' "
              "ORDER BY dataset ASC, value DESC");
  ASSERT_EQ(rs.rows.size(), 6u);
  EXPECT_EQ(rs.rows[0][0].AsText(), "t1");
  EXPECT_EQ(rs.rows[0][1].AsText(), "naive");  // largest value in t1
}

TEST_F(ExecutorTest, LimitOffset) {
  auto rs = Q("SELECT method FROM results ORDER BY value ASC LIMIT 2 OFFSET 1");
  ASSERT_EQ(rs.rows.size(), 2u);
}

TEST_F(ExecutorTest, Distinct) {
  auto rs = Q("SELECT DISTINCT method FROM results");
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(ExecutorTest, NullSemantics) {
  ASSERT_TRUE(ExecuteQuery(&db_, "CREATE TABLE n (a INTEGER, b TEXT)").ok());
  ASSERT_TRUE(ExecuteQuery(&db_,
                           "INSERT INTO n VALUES (1, 'x'), (NULL, 'y'), "
                           "(3, NULL)")
                  .ok());
  // Comparisons with NULL are unknown -> filtered out.
  EXPECT_EQ(Q("SELECT a FROM n WHERE a > 0").rows.size(), 2u);
  EXPECT_EQ(Q("SELECT a FROM n WHERE a IS NULL").rows.size(), 1u);
  EXPECT_EQ(Q("SELECT a FROM n WHERE a IS NOT NULL").rows.size(), 2u);
  // Aggregates skip NULLs; COUNT(*) does not.
  auto rs = Q("SELECT COUNT(*), COUNT(a), AVG(a) FROM n");
  EXPECT_EQ(rs.rows[0][0].AsInteger(), 3);
  EXPECT_EQ(rs.rows[0][1].AsInteger(), 2);
  EXPECT_DOUBLE_EQ(rs.rows[0][2].ToDouble(), 2.0);
}

TEST_F(ExecutorTest, EmptyGroupAggregatesToNullOrZero) {
  auto rs = Q("SELECT COUNT(*), MAX(value) FROM results WHERE value > 100");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInteger(), 0);
  EXPECT_TRUE(rs.rows[0][1].is_null());
}

TEST_F(ExecutorTest, InsertTypeChecking) {
  EXPECT_FALSE(
      ExecuteQuery(&db_, "INSERT INTO datasets VALUES (1, 'x', 0.5, 0)")
          .ok());  // name must be TEXT
  // INTEGER widens into REAL columns.
  EXPECT_TRUE(
      ExecuteQuery(&db_, "INSERT INTO datasets VALUES ('t3', 'web', 1, 0)")
          .ok());
}

TEST_F(ExecutorTest, InsertWithColumnListFillsNulls) {
  ASSERT_TRUE(
      ExecuteQuery(&db_, "INSERT INTO datasets (name) VALUES ('t9')").ok());
  auto rs = Q("SELECT domain FROM datasets WHERE name = 't9'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_TRUE(rs.rows[0][0].is_null());
}

TEST_F(ExecutorTest, VerificationBlocksBadQueries) {
  // ExecuteQuery runs the analyzer first: these never reach execution.
  EXPECT_FALSE(ExecuteQuery(&db_, "SELECT ghost FROM results").ok());
  EXPECT_FALSE(
      ExecuteQuery(&db_, "SELECT method FROM results WHERE AVG(value) > 1")
          .ok());
}

TEST_F(ExecutorTest, ResultSetFormatsAsAsciiTable) {
  auto rs = Q("SELECT name, domain FROM datasets ORDER BY name LIMIT 1");
  std::string text = rs.Format();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("t1"), std::string::npos);
  EXPECT_NE(text.find("traffic"), std::string::npos);
}

TEST_F(ExecutorTest, OrderByAliasOfAggregate) {
  auto rs = Q("SELECT method, AVG(value) AS score FROM results "
              "GROUP BY method ORDER BY score DESC LIMIT 1");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsText(), "gbdt");  // avg over mae+rmse rows
}

}  // namespace
}  // namespace easytime::sql
