#include "nn/contrastive.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace easytime::nn {
namespace {

std::vector<Matrix> RandomBatch(size_t B, size_t T, size_t D, Rng* rng) {
  std::vector<Matrix> out;
  out.reserve(B);
  for (size_t i = 0; i < B; ++i) {
    out.push_back(Matrix::Gaussian(T, D, 0.8, rng));
  }
  return out;
}

TEST(DualContrastive, LossIsFiniteAndGradsShaped) {
  Rng rng(1);
  auto v1 = RandomBatch(3, 4, 5, &rng);
  auto v2 = RandomBatch(3, 4, 5, &rng);
  std::vector<Matrix> g1, g2;
  double loss = DualContrastiveLoss(v1, v2, 0.5, &g1, &g2);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0);
  ASSERT_EQ(g1.size(), 3u);
  ASSERT_EQ(g2.size(), 3u);
  EXPECT_EQ(g1[0].rows(), 4u);
  EXPECT_EQ(g1[0].cols(), 5u);
}

TEST(DualContrastive, AlignedViewsScoreBetterThanMisaligned) {
  Rng rng(2);
  auto v1 = RandomBatch(4, 6, 8, &rng);
  // Aligned: v2 = v1 (positives identical).
  double aligned = DualContrastiveLoss(v1, v1, 0.5, nullptr, nullptr);
  // Misaligned: v2 is unrelated noise.
  auto noise = RandomBatch(4, 6, 8, &rng);
  double misaligned = DualContrastiveLoss(v1, noise, 0.5, nullptr, nullptr);
  EXPECT_LT(aligned, misaligned);
}

TEST(DualContrastive, GradientMatchesFiniteDifferences) {
  Rng rng(3);
  auto v1 = RandomBatch(2, 3, 4, &rng);
  auto v2 = RandomBatch(2, 3, 4, &rng);

  auto loss_fn = [&]() {
    return DualContrastiveLoss(v1, v2, 0.5, nullptr, nullptr);
  };
  // Check gradients w.r.t. view1[0] and view2[1].
  {
    auto grad_fn = [&]() {
      std::vector<Matrix> g1, g2;
      DualContrastiveLoss(v1, v2, 0.5, &g1, &g2);
      return g1[0];
    };
    EXPECT_LT(easytime::testing::GradCheck(&v1[0], loss_fn, grad_fn), 1e-4);
  }
  {
    auto grad_fn = [&]() {
      std::vector<Matrix> g1, g2;
      DualContrastiveLoss(v1, v2, 0.5, &g1, &g2);
      return g2[1];
    };
    EXPECT_LT(easytime::testing::GradCheck(&v2[1], loss_fn, grad_fn), 1e-4);
  }
}

TEST(DualContrastive, SingleSeriesUsesTemporalOnly) {
  Rng rng(4);
  auto v1 = RandomBatch(1, 6, 4, &rng);
  auto v2 = RandomBatch(1, 6, 4, &rng);
  std::vector<Matrix> g1, g2;
  double loss = DualContrastiveLoss(v1, v2, 0.5, &g1, &g2);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0);  // temporal term still active
}

TEST(HierarchicalContrastive, LossFiniteAndGradShapesMatch) {
  Rng rng(5);
  auto v1 = RandomBatch(3, 8, 4, &rng);
  auto v2 = RandomBatch(3, 8, 4, &rng);
  std::vector<Matrix> g1, g2;
  double loss = HierarchicalContrastiveLoss(v1, v2, &g1, &g2);
  EXPECT_TRUE(std::isfinite(loss));
  ASSERT_EQ(g1.size(), 3u);
  EXPECT_EQ(g1[0].rows(), 8u);
  EXPECT_EQ(g1[0].cols(), 4u);
}

TEST(HierarchicalContrastive, GradientMatchesFiniteDifferences) {
  Rng rng(6);
  auto v1 = RandomBatch(2, 4, 3, &rng);
  auto v2 = RandomBatch(2, 4, 3, &rng);
  auto loss_fn = [&]() {
    return HierarchicalContrastiveLoss(v1, v2, nullptr, nullptr);
  };
  auto grad_fn = [&]() {
    std::vector<Matrix> g1, g2;
    HierarchicalContrastiveLoss(v1, v2, &g1, &g2);
    return g1[0];
  };
  // Max-pool argmax switches make strict FD checks noisy; use a loose bound
  // with a small epsilon so pooling choices stay stable.
  EXPECT_LT(easytime::testing::GradCheck(&v1[0], loss_fn, grad_fn, 1e-6),
            5e-3);
}

TEST(HierarchicalContrastive, EmptyBatchIsZero) {
  std::vector<Matrix> empty;
  EXPECT_DOUBLE_EQ(
      HierarchicalContrastiveLoss(empty, empty, nullptr, nullptr), 0.0);
}

TEST(HierarchicalContrastive, TrainingSignalSeparatesInstances) {
  // Gradient descent on raw representations should pull the two views of
  // the same instance together relative to other instances.
  Rng rng(7);
  auto v1 = RandomBatch(4, 4, 6, &rng);
  auto v2 = RandomBatch(4, 4, 6, &rng);
  double before = HierarchicalContrastiveLoss(v1, v2, nullptr, nullptr);
  for (int it = 0; it < 60; ++it) {
    std::vector<Matrix> g1, g2;
    HierarchicalContrastiveLoss(v1, v2, &g1, &g2);
    for (size_t i = 0; i < v1.size(); ++i) {
      v1[i].Axpy(-0.5, g1[i]);
      v2[i].Axpy(-0.5, g2[i]);
    }
  }
  double after = HierarchicalContrastiveLoss(v1, v2, nullptr, nullptr);
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace easytime::nn
