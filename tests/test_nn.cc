#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/matrix.h"
#include "nn/optimizer.h"
#include "test_util.h"

namespace easytime::nn {
namespace {

using ::easytime::testing::GradCheck;

TEST(Matrix, BasicOps) {
  Matrix m(2, 3, 1.0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.at(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.Sum(), 10.0);
  m.Scale(2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
}

TEST(Matrix, MatMulKnownResult) {
  Matrix a(2, 2);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(1, 0) = 3; a.at(1, 1) = 4;
  Matrix b(2, 2);
  b.at(0, 0) = 5; b.at(0, 1) = 6; b.at(1, 0) = 7; b.at(1, 1) = 8;
  Matrix c = a.MatMul(b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
}

TEST(Matrix, TransposeHadamardAxpy) {
  Matrix a(2, 3);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) a.at(r, c) = static_cast<double>(r * 3 + c);
  }
  Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t.at(2, 1), a.at(1, 2));

  Matrix h = a.Hadamard(a);
  EXPECT_DOUBLE_EQ(h.at(1, 2), 25.0);

  Matrix b = a;
  b.Axpy(2.0, a);
  EXPECT_DOUBLE_EQ(b.at(1, 2), 15.0);
}

TEST(Matrix, XavierBounded) {
  Rng rng(1);
  Matrix m = Matrix::Xavier(10, 10, &rng);
  double limit = std::sqrt(6.0 / 20.0);
  for (double v : m.raw()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
}

// Gradient check helper: loss = sum(out .* G) for fixed random G, so
// dL/dout = G exactly.
double WeightedSum(const Matrix& out, const Matrix& g) {
  double s = 0.0;
  for (size_t i = 0; i < out.raw().size(); ++i) {
    s += out.raw()[i] * g.raw()[i];
  }
  return s;
}

TEST(Linear, GradientsMatchFiniteDifferences) {
  Rng rng(2);
  Linear layer(4, 3, &rng);
  Matrix x = Matrix::Gaussian(5, 4, 1.0, &rng);
  Matrix g = Matrix::Gaussian(5, 3, 1.0, &rng);

  auto loss = [&]() { return WeightedSum(layer.Forward(x), g); };
  for (Param* p : layer.Params()) {
    auto grad = [&]() {
      p->ZeroGrad();
      layer.Forward(x);
      layer.Backward(g);
      return p->grad;
    };
    EXPECT_LT(GradCheck(&p->value, loss, grad), 1e-5);
  }
  // Input gradient.
  auto loss_x = [&]() { return WeightedSum(layer.Forward(x), g); };
  auto grad_x = [&]() {
    layer.Forward(x);
    return layer.Backward(g);
  };
  EXPECT_LT(GradCheck(&x, loss_x, grad_x), 1e-5);
}

TEST(Activations, GradientsMatchFiniteDifferences) {
  Rng rng(3);
  Matrix x = Matrix::Gaussian(4, 6, 1.0, &rng);
  Matrix g = Matrix::Gaussian(4, 6, 1.0, &rng);

  // ReLU at nonzero inputs (avoid the kink).
  for (auto& v : x.raw()) {
    if (std::fabs(v) < 0.1) v = 0.5;
  }
  ReLU relu;
  auto loss_r = [&]() { return WeightedSum(relu.Forward(x), g); };
  auto grad_r = [&]() {
    relu.Forward(x);
    return relu.Backward(g);
  };
  EXPECT_LT(GradCheck(&x, loss_r, grad_r), 1e-5);

  Tanh tanh_layer;
  auto loss_t = [&]() { return WeightedSum(tanh_layer.Forward(x), g); };
  auto grad_t = [&]() {
    tanh_layer.Forward(x);
    return tanh_layer.Backward(g);
  };
  EXPECT_LT(GradCheck(&x, loss_t, grad_t), 1e-5);

  Sigmoid sig;
  auto loss_s = [&]() { return WeightedSum(sig.Forward(x), g); };
  auto grad_s = [&]() {
    sig.Forward(x);
    return sig.Backward(g);
  };
  EXPECT_LT(GradCheck(&x, loss_s, grad_s), 1e-5);
}

TEST(CausalConv1d, OutputShapeAndCausality) {
  Rng rng(4);
  CausalConv1d conv(1, 2, 3, 2, &rng);
  Matrix x(10, 1);
  x.at(9, 0) = 1.0;  // impulse at the last step
  Matrix out = conv.Forward(x);
  EXPECT_EQ(out.rows(), 10u);
  EXPECT_EQ(out.cols(), 2u);
  // Impulse at t=9 must not affect outputs before t=9 beyond the bias.
  Matrix zero_in(10, 1);
  Matrix base = conv.Forward(zero_in);
  Matrix out2 = conv.Forward(x);
  for (size_t t = 0; t < 9; ++t) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_DOUBLE_EQ(out2.at(t, c), base.at(t, c));
    }
  }
}

TEST(CausalConv1d, GradientsMatchFiniteDifferences) {
  Rng rng(5);
  CausalConv1d conv(2, 3, 3, 2, &rng);
  Matrix x = Matrix::Gaussian(8, 2, 1.0, &rng);
  Matrix g = Matrix::Gaussian(8, 3, 1.0, &rng);

  auto loss = [&]() { return WeightedSum(conv.Forward(x), g); };
  for (Param* p : conv.Params()) {
    auto grad = [&]() {
      p->ZeroGrad();
      conv.Forward(x);
      conv.Backward(g);
      return p->grad;
    };
    EXPECT_LT(GradCheck(&p->value, loss, grad), 1e-5);
  }
  auto grad_x = [&]() {
    conv.Forward(x);
    return conv.Backward(g);
  };
  EXPECT_LT(GradCheck(&x, loss, grad_x), 1e-5);
}

TEST(ResidualConvBlock, GradientsMatchFiniteDifferences) {
  Rng rng(6);
  ResidualConvBlock block(2, 4, 3, 1, &rng);  // channel change => 1x1 skip
  Matrix x = Matrix::Gaussian(6, 2, 0.5, &rng);
  Matrix g = Matrix::Gaussian(6, 4, 1.0, &rng);

  auto loss = [&]() { return WeightedSum(block.Forward(x), g); };
  auto params = block.Params();
  ASSERT_GE(params.size(), 6u);
  for (Param* p : params) {
    auto grad = [&]() {
      for (Param* q : block.Params()) q->ZeroGrad();
      block.Forward(x);
      block.Backward(g);
      return p->grad;
    };
    EXPECT_LT(GradCheck(&p->value, loss, grad), 2e-4);
  }
}

TEST(Sequential, ComposesForwardBackward) {
  Rng rng(7);
  Sequential net;
  net.Add(std::make_unique<Linear>(3, 5, &rng));
  net.Add(std::make_unique<Tanh>());
  net.Add(std::make_unique<Linear>(5, 2, &rng));
  EXPECT_EQ(net.size(), 3u);
  EXPECT_EQ(net.Params().size(), 4u);

  Matrix x = Matrix::Gaussian(4, 3, 1.0, &rng);
  Matrix g = Matrix::Gaussian(4, 2, 1.0, &rng);
  auto loss = [&]() { return WeightedSum(net.Forward(x), g); };
  auto grad_x = [&]() {
    net.Forward(x);
    return net.Backward(g);
  };
  EXPECT_LT(GradCheck(&x, loss, grad_x), 1e-5);
}

TEST(Losses, MseKnownValueAndGradient) {
  Matrix pred(1, 2);
  pred.at(0, 0) = 1.0;
  pred.at(0, 1) = 3.0;
  Matrix target(1, 2);
  target.at(0, 0) = 0.0;
  target.at(0, 1) = 1.0;
  auto [loss, grad] = MseLoss(pred, target);
  EXPECT_DOUBLE_EQ(loss, (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(grad.at(0, 0), 2.0 * 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(grad.at(0, 1), 2.0 * 2.0 / 2.0);
}

TEST(Losses, MaeKnownValue) {
  Matrix pred(1, 2);
  pred.at(0, 0) = 1.0;
  pred.at(0, 1) = -1.0;
  Matrix target(1, 2, 0.0);
  auto [loss, grad] = MaeLoss(pred, target);
  EXPECT_DOUBLE_EQ(loss, 1.0);
  EXPECT_DOUBLE_EQ(grad.at(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(grad.at(0, 1), -0.5);
}

TEST(Losses, SoftCrossEntropyGradientMatchesFd) {
  Rng rng(8);
  Matrix logits = Matrix::Gaussian(3, 4, 1.0, &rng);
  Matrix targets(3, 4);
  for (size_t r = 0; r < 3; ++r) {
    std::vector<double> raw = {rng.Uniform(), rng.Uniform(), rng.Uniform(),
                               rng.Uniform()};
    double sum = raw[0] + raw[1] + raw[2] + raw[3];
    for (size_t c = 0; c < 4; ++c) targets.at(r, c) = raw[c] / sum;
  }
  auto loss = [&]() { return SoftCrossEntropyLoss(logits, targets).first; };
  auto grad = [&]() { return SoftCrossEntropyLoss(logits, targets).second; };
  EXPECT_LT(GradCheck(&logits, loss, grad), 1e-5);
}

TEST(RowSoftmax, RowsSumToOne) {
  Matrix logits(2, 3);
  logits.at(0, 0) = 100.0;  // stability check
  logits.at(1, 2) = -100.0;
  Matrix p = RowSoftmax(logits);
  for (size_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < 3; ++c) sum += p.at(r, c);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Optimizers, SgdAndAdamReduceQuadraticLoss) {
  for (int use_adam = 0; use_adam < 2; ++use_adam) {
    Param p(Matrix(1, 2));
    p.value.at(0, 0) = 5.0;
    p.value.at(0, 1) = -3.0;
    std::unique_ptr<Optimizer> opt;
    if (use_adam) {
      opt = std::make_unique<Adam>(std::vector<Param*>{&p}, 0.1);
    } else {
      opt = std::make_unique<Sgd>(std::vector<Param*>{&p}, 0.1, 0.9);
    }
    for (int i = 0; i < 200; ++i) {
      // loss = ||p||^2, grad = 2p.
      p.grad = p.value;
      p.grad.Scale(2.0);
      opt->Step();
      opt->ZeroGrad();
    }
    EXPECT_NEAR(p.value.at(0, 0), 0.0, 1e-2) << "adam=" << use_adam;
    EXPECT_NEAR(p.value.at(0, 1), 0.0, 1e-2) << "adam=" << use_adam;
  }
}

TEST(Optimizers, ClipGradNormScales) {
  Param p(Matrix(1, 2));
  p.grad.at(0, 0) = 3.0;
  p.grad.at(0, 1) = 4.0;  // norm 5
  Sgd opt({&p}, 0.1);
  opt.ClipGradNorm(1.0);
  double norm = std::sqrt(p.grad.SquaredNorm());
  EXPECT_NEAR(norm, 1.0, 1e-9);
  // Below threshold: untouched.
  p.grad.at(0, 0) = 0.3;
  p.grad.at(0, 1) = 0.4;
  opt.ClipGradNorm(1.0);
  EXPECT_NEAR(p.grad.at(0, 0), 0.3, 1e-12);
}

}  // namespace
}  // namespace easytime::nn
