// Property-style invariant tests (TEST_P sweeps): metric identities, scaler
// round-trips, SQL executor algebra, and evaluation-protocol invariants,
// checked across randomized inputs.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "methods/baselines.h"
#include "sql/executor.h"
#include "test_util.h"
#include "tsdata/scaler.h"

namespace easytime {
namespace {

// ---------------------------------------------------------------- metrics

class MetricPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    actual_.resize(64);
    pred_.resize(64);
    for (size_t i = 0; i < actual_.size(); ++i) {
      actual_[i] = rng.Uniform(1.0, 20.0);  // positive for MAPE-family
      pred_[i] = actual_[i] + rng.Gaussian(0.0, 2.0);
    }
  }
  std::vector<double> actual_, pred_;
};

TEST_P(MetricPropertyTest, PerfectForecastIsZeroOrOne) {
  EXPECT_DOUBLE_EQ(eval::Mae(actual_, actual_), 0.0);
  EXPECT_DOUBLE_EQ(eval::Mse(actual_, actual_), 0.0);
  EXPECT_DOUBLE_EQ(eval::Smape(actual_, actual_), 0.0);
  EXPECT_DOUBLE_EQ(eval::Wape(actual_, actual_), 0.0);
  EXPECT_DOUBLE_EQ(eval::R2(actual_, actual_), 1.0);
}

TEST_P(MetricPropertyTest, NonNegativityAndBounds) {
  EXPECT_GE(eval::Mae(actual_, pred_), 0.0);
  EXPECT_GE(eval::Mse(actual_, pred_), 0.0);
  EXPECT_GE(eval::Smape(actual_, pred_), 0.0);
  EXPECT_LE(eval::Smape(actual_, pred_), 200.0);  // sMAPE's hard ceiling
  EXPECT_LE(eval::R2(actual_, pred_), 1.0);
  EXPECT_GE(eval::MaxError(actual_, pred_), eval::Mae(actual_, pred_));
  EXPECT_GE(eval::Rmse(actual_, pred_), eval::Mae(actual_, pred_));  // Jensen
}

TEST_P(MetricPropertyTest, ScaleInvarianceFamilies) {
  // Percentage metrics are invariant to multiplicative rescaling.
  std::vector<double> a2 = actual_, p2 = pred_;
  for (auto& v : a2) v *= 37.0;
  for (auto& v : p2) v *= 37.0;
  EXPECT_NEAR(eval::Smape(actual_, pred_), eval::Smape(a2, p2), 1e-9);
  EXPECT_NEAR(eval::Mape(actual_, pred_), eval::Mape(a2, p2), 1e-9);
  EXPECT_NEAR(eval::Wape(actual_, pred_), eval::Wape(a2, p2), 1e-9);
  // Absolute metrics scale linearly / quadratically.
  EXPECT_NEAR(eval::Mae(a2, p2), 37.0 * eval::Mae(actual_, pred_), 1e-6);
  EXPECT_NEAR(eval::Mse(a2, p2), 37.0 * 37.0 * eval::Mse(actual_, pred_),
              1e-4);
  // MASE is scale-free (train scales identically).
  eval::MetricContext ctx1, ctx2;
  ctx1.train = actual_;
  ctx1.period = 1;
  ctx2.train = a2;
  ctx2.period = 1;
  EXPECT_NEAR(eval::Mase(actual_, pred_, ctx1), eval::Mase(a2, p2, ctx2),
              1e-9);
}

TEST_P(MetricPropertyTest, MaeSymmetry) {
  EXPECT_NEAR(eval::Mae(actual_, pred_), eval::Mae(pred_, actual_), 1e-12);
  EXPECT_NEAR(eval::Mse(actual_, pred_), eval::Mse(pred_, actual_), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------- scalers

class ScalerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScalerPropertyTest, RoundTripIsIdentity) {
  Rng rng(GetParam());
  std::vector<double> train(100), other(50);
  for (auto& v : train) v = rng.Gaussian(10.0, 5.0);
  for (auto& v : other) v = rng.Uniform(-100.0, 100.0);
  for (const char* name : {"zscore", "minmax", "none"}) {
    auto scaler = tsdata::MakeScaler(name).ValueOrDie();
    ASSERT_TRUE(scaler->Fit(train).ok());
    auto round = scaler->Inverse(scaler->Transform(other));
    for (size_t i = 0; i < other.size(); ++i) {
      EXPECT_NEAR(round[i], other[i], 1e-9) << name;
    }
  }
}

TEST_P(ScalerPropertyTest, TransformIsMonotone) {
  Rng rng(GetParam() + 100);
  std::vector<double> train(60);
  for (auto& v : train) v = rng.Gaussian(0.0, 3.0);
  for (const char* name : {"zscore", "minmax"}) {
    auto scaler = tsdata::MakeScaler(name).ValueOrDie();
    ASSERT_TRUE(scaler->Fit(train).ok());
    auto t = scaler->Transform({-5.0, -1.0, 0.0, 2.0, 9.0});
    for (size_t i = 1; i < t.size(); ++i) {
      EXPECT_LT(t[i - 1], t[i]) << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalerPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------- SQL

class SqlPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        sql::ExecuteQuery(&db_, "CREATE TABLE t (k TEXT, v REAL, g INTEGER)")
            .ok());
    Rng rng(GetParam());
    for (int i = 0; i < 60; ++i) {
      std::string stmt = "INSERT INTO t VALUES ('k" +
                         std::to_string(rng.UniformInt(0, 9)) + "', " +
                         FormatDouble(rng.Uniform(0.0, 10.0), 4) + ", " +
                         std::to_string(rng.UniformInt(0, 3)) + ")";
      ASSERT_TRUE(sql::ExecuteQuery(&db_, stmt).ok());
    }
  }
  sql::ResultSet Q(const std::string& q) {
    auto r = sql::ExecuteQuery(&db_, q);
    EXPECT_TRUE(r.ok()) << q;
    return r.ok() ? std::move(*r) : sql::ResultSet{};
  }
  sql::Database db_;
};

TEST_P(SqlPropertyTest, LimitIsPrefixOfUnlimited) {
  auto all = Q("SELECT k, v FROM t ORDER BY v ASC, k ASC");
  auto limited = Q("SELECT k, v FROM t ORDER BY v ASC, k ASC LIMIT 10");
  ASSERT_EQ(limited.rows.size(), 10u);
  for (size_t i = 0; i < limited.rows.size(); ++i) {
    EXPECT_TRUE(limited.rows[i][0].GroupEquals(all.rows[i][0]));
    EXPECT_TRUE(limited.rows[i][1].GroupEquals(all.rows[i][1]));
  }
}

TEST_P(SqlPropertyTest, CountPartitionsUnderGroupBy) {
  auto total = Q("SELECT COUNT(*) FROM t");
  auto grouped = Q("SELECT g, COUNT(*) AS n FROM t GROUP BY g");
  int64_t sum = 0;
  for (const auto& row : grouped.rows) sum += row[1].AsInteger();
  EXPECT_EQ(sum, total.rows[0][0].AsInteger());
}

TEST_P(SqlPropertyTest, WherePartitionsByComplement) {
  auto lt = Q("SELECT COUNT(*) FROM t WHERE v < 5.0");
  auto ge = Q("SELECT COUNT(*) FROM t WHERE v >= 5.0");
  EXPECT_EQ(lt.rows[0][0].AsInteger() + ge.rows[0][0].AsInteger(), 60);
}

TEST_P(SqlPropertyTest, OrderByIsSorted) {
  auto rs = Q("SELECT v FROM t ORDER BY v DESC");
  for (size_t i = 1; i < rs.rows.size(); ++i) {
    EXPECT_GE(rs.rows[i - 1][0].ToDouble(), rs.rows[i][0].ToDouble());
  }
}

TEST_P(SqlPropertyTest, AvgBetweenMinAndMax) {
  auto rs = Q("SELECT MIN(v), AVG(v), MAX(v) FROM t");
  double mn = rs.rows[0][0].ToDouble();
  double av = rs.rows[0][1].ToDouble();
  double mx = rs.rows[0][2].ToDouble();
  EXPECT_LE(mn, av);
  EXPECT_LE(av, mx);
}

TEST_P(SqlPropertyTest, DistinctNeverIncreasesRows) {
  auto all = Q("SELECT k FROM t");
  auto distinct = Q("SELECT DISTINCT k FROM t");
  EXPECT_LE(distinct.rows.size(), all.rows.size());
  EXPECT_GE(distinct.rows.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlPropertyTest,
                         ::testing::Values(7, 17, 27));

// ------------------------------------------------------------- evaluation

TEST(EvaluationProperty, RollingWithOneWindowMatchesFixed) {
  // When the test segment holds exactly one horizon, rolling == fixed for a
  // method whose ForecastFrom(full history) equals Forecast after Fit.
  auto v = testing::MakeSeasonalSeries(120, 12, 4.0, 0.1, 0.3);
  eval::EvalConfig cfg;
  cfg.horizon = 24;  // test segment = 20% of 120 = 24 points exactly
  cfg.split = tsdata::SplitSpec{0.7, 0.1, 0.2};
  cfg.metrics = {"mae"};

  methods::NaiveForecaster naive_fixed, naive_rolling;
  cfg.strategy = eval::Strategy::kFixed;
  auto fixed = eval::Evaluator(cfg).EvaluateValues(&naive_fixed, v)
                   .ValueOrDie();
  cfg.strategy = eval::Strategy::kRolling;
  auto rolling = eval::Evaluator(cfg).EvaluateValues(&naive_rolling, v)
                     .ValueOrDie();
  EXPECT_EQ(rolling.num_windows, 1u);
  EXPECT_NEAR(fixed.metrics.at("mae"), rolling.metrics.at("mae"), 1e-9);
}

TEST(EvaluationProperty, MoreNoiseNeverHelpsNaive) {
  // Adding observation noise cannot improve the naive forecaster's MAE (in
  // expectation; checked across seeds with a tolerance).
  eval::EvalConfig cfg;
  cfg.horizon = 12;
  cfg.metrics = {"mae"};
  double clean_sum = 0, noisy_sum = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    auto clean = testing::MakeSeasonalSeries(200, 12, 5.0, 0.0, 0.0, seed);
    auto noisy = testing::MakeSeasonalSeries(200, 12, 5.0, 0.0, 2.0, seed);
    methods::NaiveForecaster f1, f2;
    clean_sum += eval::Evaluator(cfg).EvaluateValues(&f1, clean)
                     .ValueOrDie()
                     .metrics.at("mae");
    noisy_sum += eval::Evaluator(cfg).EvaluateValues(&f2, noisy)
                     .ValueOrDie()
                     .metrics.at("mae");
  }
  EXPECT_LT(clean_sum, noisy_sum);
}

}  // namespace
}  // namespace easytime
