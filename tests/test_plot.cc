#include "pipeline/plot.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace easytime::pipeline {
namespace {

using ::easytime::testing::MakeLinearSeries;
using ::easytime::testing::MakeSeasonalSeries;

TEST(SeriesPlot, RendersGridOfExpectedSize) {
  PlotOptions opt;
  opt.width = 40;
  opt.height = 8;
  auto v = MakeSeasonalSeries(200, 20, 5.0);
  std::string plot = RenderSeriesPlot(v, opt);
  // height rows + axis rule.
  EXPECT_EQ(static_cast<size_t>(std::count(plot.begin(), plot.end(), '\n')),
            opt.height + 1);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find('|'), std::string::npos);
}

TEST(SeriesPlot, MinMaxLabelsPresent) {
  std::vector<double> v = {0.0, 10.0, 5.0, 10.0, 0.0};
  std::string plot = RenderSeriesPlot(v);
  EXPECT_NE(plot.find("10.00"), std::string::npos);
  EXPECT_NE(plot.find("0.00"), std::string::npos);
}

TEST(SeriesPlot, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(RenderSeriesPlot({}).empty());
  PlotOptions tiny;
  tiny.height = 1;
  EXPECT_TRUE(RenderSeriesPlot({1.0, 2.0}, tiny).empty());
  // Constant series must not divide by zero.
  std::string flat = RenderSeriesPlot({3.0, 3.0, 3.0});
  EXPECT_NE(flat.find('*'), std::string::npos);
}

TEST(SeriesPlot, DownsamplesLongSeries) {
  PlotOptions opt;
  opt.width = 30;
  opt.height = 6;
  auto v = MakeLinearSeries(5000, 0.0, 1.0);
  std::string plot = RenderSeriesPlot(v, opt);
  // Each rendered row is width + label prefix; the plot terminates.
  EXPECT_FALSE(plot.empty());
  // Monotone line: the '*' column positions ascend from bottom-left to
  // top-right; check the first row (top) has its mark near the right edge.
  size_t first_newline = plot.find('\n');
  std::string top_row = plot.substr(0, first_newline);
  size_t star = top_row.rfind('*');
  ASSERT_NE(star, std::string::npos);
  EXPECT_GT(star, top_row.size() / 2);
}

TEST(ForecastPlot, ContainsAllThreeMarkSets) {
  auto history = MakeSeasonalSeries(120, 12, 5.0);
  std::vector<double> actual(history.end() - 12, history.end());
  std::vector<double> forecast = actual;
  for (auto& v : forecast) v += 0.5;
  std::vector<double> past(history.begin(), history.end() - 12);

  std::string plot = RenderForecastPlot(past, actual, forecast);
  EXPECT_NE(plot.find('.'), std::string::npos);  // history
  EXPECT_NE(plot.find('x'), std::string::npos);  // forecast
  EXPECT_NE(plot.find("history"), std::string::npos);  // legend
}

TEST(ForecastPlot, OverlapUsesDistinctGlyph) {
  // Identical actual and forecast -> every mark overlaps.
  std::vector<double> past = MakeLinearSeries(50, 0.0, 1.0);
  std::vector<double> cont = {50, 51, 52, 53};
  std::string plot = RenderForecastPlot(past, cont, cont);
  EXPECT_NE(plot.find('@'), std::string::npos);
}

TEST(ForecastPlot, WorksWithoutActuals) {
  std::vector<double> past = MakeLinearSeries(50, 0.0, 1.0);
  std::vector<double> forecast = {50, 51, 52};
  std::string plot = RenderForecastPlot(past, {}, forecast);
  EXPECT_NE(plot.find('x'), std::string::npos);
  EXPECT_TRUE(RenderForecastPlot(past, {}, {}).empty());
}

TEST(ForecastPlot, SharedScaleCoversAllInputs) {
  // Forecast far above history: the top label must reflect the forecast.
  std::vector<double> past(50, 1.0);
  std::vector<double> forecast = {100.0, 100.0};
  std::string plot = RenderForecastPlot(past, {}, forecast);
  EXPECT_NE(plot.find("100.00"), std::string::npos);
}

}  // namespace
}  // namespace easytime::pipeline
