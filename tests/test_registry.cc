#include "methods/registry.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace easytime::methods {
namespace {

using ::easytime::testing::MakeSeasonalSeries;

TEST(Registry, GlobalHasAllBuiltins) {
  auto& r = MethodRegistry::Global();
  const std::vector<std::string> expected = {
      "naive",   "seasonal_naive",  "drift",   "mean", "window_average",
      "ses",     "holt",            "holt_damped", "holt_winters_add",
      "holt_winters_mul", "theta",  "ar",      "arima", "ets_auto",
      "lag_linear", "nlinear",      "dlinear", "knn",  "gbdt",
      "mlp",     "gru",             "tcn"};
  for (const auto& name : expected) {
    EXPECT_TRUE(r.Contains(name)) << name;
  }
  EXPECT_GE(r.Names().size(), 20u);  // the paper's "diverse range"
}

TEST(Registry, FamiliesCoverAllThree) {
  auto& r = MethodRegistry::Global();
  EXPECT_GE(r.NamesByFamily(Family::kStatistical).size(), 10u);
  EXPECT_GE(r.NamesByFamily(Family::kMachineLearning).size(), 5u);
  EXPECT_GE(r.NamesByFamily(Family::kDeepLearning).size(), 3u);
}

TEST(Registry, InfoHasDescriptions) {
  auto& r = MethodRegistry::Global();
  for (const auto& name : r.Names()) {
    auto info = r.Info(name);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->name, name);
    EXPECT_FALSE(info->description.empty()) << name;
  }
  EXPECT_FALSE(r.Info("unknown_method").ok());
}

TEST(Registry, CreateUnknownFails) {
  EXPECT_FALSE(MethodRegistry::Global().Create("transformer_xxl").ok());
}

class CreateEveryMethodTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CreateEveryMethodTest, CreatedMethodFitsAndForecasts) {
  auto& r = MethodRegistry::Global();
  auto m = r.Create(GetParam());
  ASSERT_TRUE(m.ok());
  EXPECT_EQ((*m)->name().find(GetParam()), 0u);  // name is prefix-stable

  auto v = MakeSeasonalSeries(160, 12, 4.0, 0.05, 0.3);
  FitContext ctx;
  ctx.period_hint = 12;
  ctx.horizon = 6;
  ASSERT_TRUE((*m)->Fit(v, ctx).ok()) << GetParam();
  auto fc = (*m)->Forecast(6);
  ASSERT_TRUE(fc.ok()) << GetParam();
  EXPECT_EQ(fc->size(), 6u);
  for (double x : *fc) EXPECT_TRUE(std::isfinite(x)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredMethods, CreateEveryMethodTest,
    ::testing::ValuesIn(MethodRegistry::Global().Names()));

TEST(Registry, ConfigOverridesHyperparameters) {
  auto cfg = Json::Parse(R"({"k": 2, "lookback": 10})").ValueOrDie();
  auto m = MethodRegistry::Global().Create("knn", cfg);
  ASSERT_TRUE(m.ok());
  auto v = MakeSeasonalSeries(100, 10, 3.0);
  FitContext ctx;
  ctx.horizon = 4;
  EXPECT_TRUE((*m)->Fit(v, ctx).ok());
}

TEST(Registry, IsolatedRegistryRegistersAndRejectsDuplicates) {
  // Use the exposed hook with a fresh registry-like flow via Global-free
  // custom registration.
  auto& r = MethodRegistry::Global();
  MethodInfo info;
  info.name = "custom_test_method";
  info.family = Family::kStatistical;
  info.description = "test-only";
  auto factory = [](const Json&) -> Result<ForecasterPtr> {
    struct Custom : Forecaster {
      double last = 0;
      Status Fit(const std::vector<double>& train, const FitContext&) override {
        if (train.empty()) return Status::InvalidArgument("empty");
        last = train.back();
        return Status::OK();
      }
      Result<std::vector<double>> Forecast(size_t h) const override {
        return std::vector<double>(h, last * 2.0);
      }
      std::string name() const override { return "custom_test_method"; }
      Family family() const override { return Family::kStatistical; }
    };
    return ForecasterPtr(new Custom());
  };
  // First registration succeeds (unless an earlier test registered it).
  if (!r.Contains("custom_test_method")) {
    ASSERT_TRUE(r.Register(info, factory).ok());
  }
  // Duplicate rejected.
  EXPECT_FALSE(r.Register(info, factory).ok());
  // The custom method participates like a builtin — the paper's
  // "users can easily integrate their own methods".
  auto m = r.Create("custom_test_method").ValueOrDie();
  ASSERT_TRUE(m->Fit({1, 2, 3}, {}).ok());
  EXPECT_DOUBLE_EQ(m->Forecast(1).ValueOrDie()[0], 6.0);
}

}  // namespace
}  // namespace easytime::methods
