#include "knowledge/knowledge_base.h"

#include <gtest/gtest.h>

#include <cmath>

#include <cstdio>
#include <filesystem>

#include "sql/executor.h"

namespace easytime::knowledge {
namespace {

SeededKnowledge MakeSeeded() {
  tsdata::SuiteSpec suite;
  suite.univariate_per_domain = 1;
  suite.multivariate_total = 1;
  suite.min_length = 160;
  suite.max_length = 200;
  eval::EvalConfig cfg;
  cfg.horizon = 8;
  cfg.metrics = {"mae", "rmse"};
  auto seeded = SeedKnowledge(suite, cfg, {"naive", "theta", "ses"});
  EXPECT_TRUE(seeded.ok()) << seeded.status().ToString();
  return std::move(*seeded);
}

TEST(KnowledgeBase, SeedingPopulatesAllSections) {
  auto seeded = MakeSeeded();
  const KnowledgeBase& kb = seeded.kb;
  EXPECT_EQ(kb.datasets().size(), seeded.repository.size());
  EXPECT_GE(kb.methods().size(), 20u);  // every registered method's metadata
  EXPECT_EQ(kb.results().size(), seeded.repository.size() * 3);
  // Dataset meta has computed characteristics.
  const DatasetMeta& meta = kb.datasets()[0];
  EXPECT_FALSE(meta.name.empty());
  EXPECT_GT(meta.length, 0u);
}

TEST(KnowledgeBase, GetDatasetAndMethodScores) {
  auto seeded = MakeSeeded();
  const KnowledgeBase& kb = seeded.kb;
  std::string name = kb.datasets()[0].name;
  EXPECT_TRUE(kb.GetDataset(name).ok());
  EXPECT_FALSE(kb.GetDataset("ghost").ok());

  auto scores = kb.MethodScores(name, "mae");
  EXPECT_EQ(scores.size(), 3u);
  for (const auto& [m, v] : scores) {
    EXPECT_TRUE(std::isfinite(v)) << m;
  }
  EXPECT_TRUE(kb.MethodScores(name, "not_a_metric").empty());
}

TEST(KnowledgeBase, DuplicateDatasetIgnored) {
  auto seeded = MakeSeeded();
  size_t before = seeded.kb.datasets().size();
  seeded.kb.AddDataset(**seeded.repository.Get(seeded.kb.datasets()[0].name));
  EXPECT_EQ(seeded.kb.datasets().size(), before);
}

TEST(KnowledgeBase, RestoreBumpsVersionExactlyOnceAndRebuildsTheIndex) {
  auto seeded = MakeSeeded();
  KnowledgeBase restored;
  const uint64_t before = restored.version();
  std::vector<DatasetMeta> datasets(seeded.kb.datasets().begin(),
                                    seeded.kb.datasets().end());
  std::vector<MethodMeta> methods(seeded.kb.methods().begin(),
                                  seeded.kb.methods().end());
  std::vector<ResultEntry> results(seeded.kb.results().begin(),
                                   seeded.kb.results().end());
  // A duplicate dataset row in the recovered stream keeps only the first.
  datasets.push_back(datasets.front());
  restored.Restore(std::move(datasets), std::move(methods),
                   std::move(results));
  EXPECT_EQ(restored.version(), before + 1)
      << "bulk recovery must not bump version per row";
  EXPECT_EQ(restored.NumDatasets(), seeded.kb.NumDatasets());
  EXPECT_EQ(restored.NumResults(), seeded.kb.NumResults());
  const std::string name = seeded.kb.datasets()[0].name;
  auto meta = restored.GetDataset(name);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ((*meta)->name, name);
  EXPECT_EQ(restored.MethodScores(name, "mae"),
            seeded.kb.MethodScores(name, "mae"));
  // Restore replaces: a second Restore with empty state clears everything
  // and still bumps exactly once.
  const uint64_t mid = restored.version();
  restored.Restore({}, {}, {});
  EXPECT_EQ(restored.version(), mid + 1);
  EXPECT_EQ(restored.NumDatasets(), 0u);
  EXPECT_FALSE(restored.GetDataset(name).ok());
}

TEST(KnowledgeBase, ExportToDatabaseIsQueryable) {
  auto seeded = MakeSeeded();
  sql::Database db;
  ASSERT_TRUE(seeded.kb.ExportToDatabase(&db).ok());
  EXPECT_TRUE(db.HasTable("datasets"));
  EXPECT_TRUE(db.HasTable("methods"));
  EXPECT_TRUE(db.HasTable("results"));

  auto rs = sql::ExecuteQuery(
                &db,
                "SELECT r.method, AVG(r.value) AS avg_mae FROM results r "
                "JOIN datasets d ON r.dataset = d.name "
                "WHERE r.metric = 'mae' GROUP BY r.method "
                "ORDER BY avg_mae ASC")
                .ValueOrDie();
  EXPECT_EQ(rs.rows.size(), 3u);
  // Sanity: theta should not be worst on average across the suite.
  EXPECT_NE(rs.rows.back()[0].AsText(), "theta");

  auto count = sql::ExecuteQuery(&db, "SELECT COUNT(*) FROM datasets")
                   .ValueOrDie();
  EXPECT_EQ(count.rows[0][0].AsInteger(),
            static_cast<int64_t>(seeded.repository.size()));

  // Long-form results: one row per metric.
  auto metrics = sql::ExecuteQuery(
                     &db, "SELECT COUNT(DISTINCT metric) FROM results")
                     .ValueOrDie();
  EXPECT_EQ(metrics.rows[0][0].AsInteger(), 2);
}

TEST(KnowledgeBase, SchemaDescriptionMentionsCharacteristics) {
  auto seeded = MakeSeeded();
  sql::Database db;
  ASSERT_TRUE(seeded.kb.ExportToDatabase(&db).ok());
  std::string schema = db.DescribeSchema();
  EXPECT_NE(schema.find("seasonality"), std::string::npos);
  EXPECT_NE(schema.find("results("), std::string::npos);
}

TEST(KnowledgeBase, ResultsCsvRoundTrip) {
  auto seeded = MakeSeeded();
  std::string path =
      (std::filesystem::temp_directory_path() / "easytime_kb.csv").string();
  ASSERT_TRUE(seeded.kb.SaveResultsCsv(path).ok());

  KnowledgeBase loaded;
  ASSERT_TRUE(loaded.LoadResultsCsv(path).ok());
  EXPECT_EQ(loaded.results().size(), seeded.kb.results().size());
  // Metric values survive.
  const auto& orig = seeded.kb.results()[0];
  auto scores = loaded.MethodScores(orig.dataset, "mae");
  EXPECT_NEAR(scores.at(orig.method), orig.metrics.at("mae"), 1e-6);
  std::remove(path.c_str());
}

TEST(KnowledgeBase, LoadMissingCsvFails) {
  KnowledgeBase kb;
  EXPECT_FALSE(kb.LoadResultsCsv("/no/such/file.csv").ok());
}

}  // namespace
}  // namespace easytime::knowledge
