// Robustness tests: deadline propagation, retry with backoff, the per-method
// circuit breaker, checkpoint/resume of evaluation runs, and graceful
// degradation of the recommend endpoint.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/fault.h"
#include "pipeline/circuit_breaker.h"
#include "eval/evaluator.h"
#include "methods/registry.h"
#include "pipeline/benchmark_config.h"
#include "pipeline/runner.h"
#include "serve/job_manager.h"
#include "serve/retry.h"
#include "serve/server.h"
#include "tsdata/generator.h"

namespace easytime {
namespace {

using namespace std::chrono_literals;

// ----------------------------------------------------------------- Deadline

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_ms()));
  EXPECT_FALSE(Deadline::Infinite().expired());
}

TEST(DeadlineTest, AfterMillisExpires) {
  Deadline d = Deadline::AfterMillis(15.0);
  EXPECT_FALSE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0.0);
  std::this_thread::sleep_for(25ms);
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining_ms(), 0.0);
}

TEST(DeadlineTest, AlreadyPassedTimePointIsExpired) {
  Deadline d = Deadline::At(Deadline::Clock::now() - 1ms);
  EXPECT_TRUE(d.expired());
}

// ------------------------------------------------- Evaluator deadline checks

TEST(RobustnessTest, EvaluatorHonorsExpiredDeadline) {
  auto model = methods::MethodRegistry::Global().Create("naive");
  ASSERT_TRUE(model.ok());
  std::vector<double> v(200);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i % 17);

  eval::EvalConfig cfg;
  cfg.horizon = 8;
  cfg.metrics = {"mae"};
  eval::Evaluator evaluator(cfg);

  Deadline expired = Deadline::At(Deadline::Clock::now() - 1ms);
  auto r = evaluator.EvaluateValues(model->get(), v, 0, expired);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded());

  // The default (infinite) deadline leaves evaluation untouched.
  auto ok = evaluator.EvaluateValues(model->get(), v);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

// ------------------------------------------------------ Pipeline run control

tsdata::Repository MakeRepo() {
  tsdata::Repository repo;
  tsdata::SuiteSpec spec;
  spec.univariate_per_domain = 1;
  spec.multivariate_total = 0;
  spec.min_length = 120;
  spec.max_length = 140;
  EXPECT_TRUE(repo.AddSuite(spec).ok());
  return repo;
}

pipeline::BenchmarkConfig SingleMethodConfig(const std::string& method) {
  pipeline::BenchmarkConfig config;
  config.eval.horizon = 8;
  config.eval.metrics = {"mae"};
  config.methods = {pipeline::MethodSpec{method, Json::Object()}};
  config.num_threads = 1;  // deterministic completion order
  return config;
}

TEST(RobustnessTest, PipelineRunReturnsDeadlineExceededOnExpiredDeadline) {
  tsdata::Repository repo = MakeRepo();
  pipeline::BenchmarkConfig config = SingleMethodConfig("naive");
  pipeline::RunHooks hooks;
  hooks.deadline = Deadline::At(Deadline::Clock::now() - 1ms);
  auto report = pipeline::PipelineRunner(&repo, config).Run(hooks);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsDeadlineExceeded());
}

TEST(RobustnessTest, CircuitBreakerSkipsMethodAfterConsecutiveFailures) {
  FaultRegistry::Global().DisarmAll();
  tsdata::Repository repo = MakeRepo();
  ASSERT_GE(repo.size(), 5u);

  pipeline::BenchmarkConfig config = SingleMethodConfig("naive");
  config.breaker_threshold = 3;

  // Every evaluated pair fails via the pipeline.pair fault point; after 3
  // consecutive failures the breaker must stop evaluating this method.
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.code = StatusCode::kInternal;
  ASSERT_TRUE(FaultRegistry::Global().Arm("pipeline.pair", spec).ok());

  auto report = pipeline::PipelineRunner(&repo, config).Run();
  FaultRegistry::Global().DisarmAll();

  ASSERT_TRUE(report.ok());
  size_t injected = 0;
  size_t skipped = 0;
  for (const auto& rec : report->records) {
    ASSERT_FALSE(rec.status.ok());
    if (rec.status.IsUnavailable() &&
        rec.status.message().find("circuit breaker open") !=
            std::string::npos) {
      ++skipped;
    } else {
      ++injected;
    }
  }
  EXPECT_EQ(injected + skipped, repo.size());
  // The breaker never trips early, and its ordering is approximate by one
  // in-flight pair: ParallelFor's calling thread participates alongside the
  // single worker, so a pair that passed the open-check before the trip may
  // still be evaluated.
  EXPECT_GE(injected, 3u);
  EXPECT_LE(injected, 4u);
  EXPECT_GE(skipped, repo.size() - 4u);
}

TEST(RobustnessTest, CircuitBreakerDisabledWithThresholdZero) {
  FaultRegistry::Global().DisarmAll();
  tsdata::Repository repo = MakeRepo();
  pipeline::BenchmarkConfig config = SingleMethodConfig("naive");
  config.breaker_threshold = 0;

  FaultSpec spec;
  spec.kind = FaultKind::kError;
  ASSERT_TRUE(FaultRegistry::Global().Arm("pipeline.pair", spec).ok());
  auto report = pipeline::PipelineRunner(&repo, config).Run();
  FaultRegistry::Global().DisarmAll();

  ASSERT_TRUE(report.ok());
  for (const auto& rec : report->records) {
    EXPECT_TRUE(rec.status.IsInternal()) << rec.status.ToString();
  }
}

TEST(RobustnessTest, BreakerOnOneMethodSparesOtherMethods) {
  // A method that always fails fit, pinning every failure to one method so
  // the per-method breaker isolation is deterministic under concurrency.
  static const bool registered = [] {
    return methods::MethodRegistry::Global()
        .Register({"breaker_victim", methods::Family::kStatistical,
                   "robustness test: always fails"},
                  [](const Json&) -> Result<methods::ForecasterPtr> {
                    return Status::Internal("injected factory failure");
                  })
        .ok();
  }();
  ASSERT_TRUE(registered);

  tsdata::Repository repo = MakeRepo();
  pipeline::BenchmarkConfig config = SingleMethodConfig("breaker_victim");
  config.methods.push_back(pipeline::MethodSpec{"drift", Json::Object()});
  config.breaker_threshold = 2;

  auto report = pipeline::PipelineRunner(&repo, config).Run();
  ASSERT_TRUE(report.ok());

  std::map<std::string, size_t> ok_by_method;
  size_t victim_skipped = 0;
  for (const auto& rec : report->records) {
    if (rec.status.ok()) ++ok_by_method[rec.method];
    if (rec.method == "breaker_victim" && rec.status.IsUnavailable()) {
      ++victim_skipped;
    }
  }
  // The victim's breaker trips and skips most of its pairs...
  EXPECT_EQ(ok_by_method["breaker_victim"], 0u);
  EXPECT_GE(victim_skipped, repo.size() - 3);
  // ...while the healthy method is untouched by the victim's breaker.
  EXPECT_EQ(ok_by_method["drift"], repo.size());

  // Breaker state is per-run: a fresh run of healthy methods is unaffected.
  auto clean =
      pipeline::PipelineRunner(&repo, SingleMethodConfig("drift")).Run();
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->Successful().size(), clean->records.size());
}

// ------------------------------------------------ RunRecord JSON round trip

TEST(RobustnessTest, RunRecordJsonRoundTrip) {
  pipeline::RunRecord rec;
  rec.dataset = "traffic_u0";
  rec.method = "theta";
  rec.strategy = "fixed";
  rec.horizon = 24;
  rec.multivariate = false;
  rec.domain = "traffic";
  rec.metrics = {{"mae", 1.25}, {"rmse", 2.5}};
  rec.num_windows = 3;
  rec.fit_seconds = 0.5;
  rec.forecast_seconds = 0.25;
  rec.status = Status::OK();

  auto back = pipeline::RunRecord::FromJson(rec.ToJson());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->dataset, rec.dataset);
  EXPECT_EQ(back->method, rec.method);
  EXPECT_EQ(back->strategy, rec.strategy);
  EXPECT_EQ(back->horizon, rec.horizon);
  EXPECT_EQ(back->domain, rec.domain);
  EXPECT_DOUBLE_EQ(back->metrics.at("mae"), 1.25);
  EXPECT_DOUBLE_EQ(back->metrics.at("rmse"), 2.5);
  EXPECT_EQ(back->num_windows, 3u);
  EXPECT_TRUE(back->status.ok());

  rec.status = Status::Unavailable("worker gone");
  auto failed = pipeline::RunRecord::FromJson(rec.ToJson());
  ASSERT_TRUE(failed.ok());
  EXPECT_TRUE(failed->status.IsUnavailable());
  EXPECT_EQ(failed->status.message(), "worker gone");

  EXPECT_FALSE(pipeline::RunRecord::FromJson(Json::Object()).ok());
  EXPECT_NE(pipeline::PairKey("a", "b"), pipeline::PairKey("a", "c"));
  EXPECT_NE(pipeline::PairKey("ab", "c"), pipeline::PairKey("a", "bc"));
}

// --------------------------------------------------- Runner resume splicing

TEST(RobustnessTest, RunnerSplicesCompletedRecordsWithoutReevaluating) {
  tsdata::Repository repo = MakeRepo();
  pipeline::BenchmarkConfig config = SingleMethodConfig("naive");

  std::map<std::string, pipeline::RunRecord> completed;
  std::atomic<size_t> fresh{0};
  {
    pipeline::RunHooks hooks;
    hooks.on_record = [&](const pipeline::RunRecord& rec) {
      completed[pipeline::PairKey(rec.dataset, rec.method)] = rec;
      fresh.fetch_add(1);
    };
    auto first = pipeline::PipelineRunner(&repo, config).Run(hooks);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(fresh.load(), first->records.size());
  }

  // Resume with everything checkpointed: nothing fresh is evaluated, the
  // report is complete, and on_record stays silent.
  fresh.store(0);
  pipeline::RunHooks hooks;
  hooks.completed = &completed;
  hooks.on_record = [&](const pipeline::RunRecord&) { fresh.fetch_add(1); };
  auto resumed = pipeline::PipelineRunner(&repo, config).Run(hooks);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(fresh.load(), 0u);
  EXPECT_EQ(resumed->Successful().size(), resumed->records.size());
  EXPECT_EQ(resumed->records.size(), completed.size());
}

// -------------------------------------------------------------------- Retry

TEST(RetryTest, RetriesTransientUnavailableUntilSuccess) {
  serve::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_delay_ms = 1.0;
  policy.seed = 7;
  int calls = 0;
  auto result = serve::RetryCall(policy, [&]() -> Result<int> {
    if (++calls < 3) return Status::Unavailable("try again");
    return 99;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 99);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, PermanentFailuresAreNotRetried) {
  serve::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_delay_ms = 1.0;
  int calls = 0;
  auto result = serve::RetryCall(policy, [&]() -> Result<int> {
    ++calls;
    return Status::InvalidArgument("bad input");
  });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, GivesUpAfterMaxAttempts) {
  serve::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_delay_ms = 1.0;
  int calls = 0;
  auto result = serve::RetryCall(policy, [&]() -> Status {
    ++calls;
    return Status::Unavailable("still down");
  });
  EXPECT_TRUE(result.IsUnavailable());
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, StopsWhenBackoffWouldOutliveDeadline) {
  serve::RetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_delay_ms = 50.0;
  policy.seed = 7;
  int calls = 0;
  auto result = serve::RetryCall(
      policy,
      [&]() -> Status {
        ++calls;
        return Status::Unavailable("down");
      },
      Deadline::AfterMillis(10.0));
  EXPECT_TRUE(result.IsUnavailable());
  EXPECT_EQ(calls, 1) << "a 25ms+ backoff must not be attempted on a 10ms "
                         "budget";
}

TEST(RetryTest, BackoffScheduleIsExponentialAndCapped) {
  serve::RetryPolicy policy;
  policy.base_delay_ms = 5.0;
  policy.max_delay_ms = 30.0;
  EXPECT_DOUBLE_EQ(policy.DelayMs(0), 5.0);
  EXPECT_DOUBLE_EQ(policy.DelayMs(1), 10.0);
  EXPECT_DOUBLE_EQ(policy.DelayMs(2), 20.0);
  EXPECT_DOUBLE_EQ(policy.DelayMs(3), 30.0);  // capped
  EXPECT_DOUBLE_EQ(policy.DelayMs(10), 30.0);
}

// ----------------------------------------------- BenchmarkConfig round trip

TEST(RobustnessTest, BreakerThresholdSurvivesConfigRoundTrip) {
  auto j = Json::Parse(R"({"breaker_threshold": 7})");
  ASSERT_TRUE(j.ok());
  auto config = pipeline::BenchmarkConfig::FromJson(*j);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->breaker_threshold, 7u);

  EXPECT_EQ(config->ToJson().GetInt("breaker_threshold", -1), 7);

  auto dflt = pipeline::BenchmarkConfig::FromJson(Json::Object());
  ASSERT_TRUE(dflt.ok());
  EXPECT_EQ(dflt->breaker_threshold, 5u);

  auto bad = Json::Parse(R"({"breaker_threshold": -1})");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(pipeline::BenchmarkConfig::FromJson(*bad).ok());
}

// ------------------------------------------------ Half-open circuit breaker
//
// CircuitBreaker takes time points from the caller, so these tests drive the
// open -> half-open -> closed machine with a synthetic clock — no sleeping.

using BreakerState = pipeline::CircuitBreaker::State;

pipeline::CircuitBreaker::TimePoint BreakerAt(double ms) {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double, std::milli>(ms));
}

TEST(CircuitBreakerTest, OpensThenHalfOpensThenClosesOnProbeSuccess) {
  pipeline::CircuitBreaker::Options opt;
  opt.threshold = 2;
  opt.cooldown_ms = 100.0;
  pipeline::CircuitBreaker b(opt);

  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_TRUE(b.Allow(BreakerAt(0)));
  b.RecordFailure(BreakerAt(0));
  EXPECT_TRUE(b.Allow(BreakerAt(1)));
  b.RecordFailure(BreakerAt(1));  // second consecutive failure: trip
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_TRUE(b.ConsumeTripEvent());
  EXPECT_FALSE(b.ConsumeTripEvent()) << "a trip is logged exactly once";

  EXPECT_FALSE(b.Allow(BreakerAt(50))) << "still cooling down";
  EXPECT_TRUE(b.Allow(BreakerAt(102))) << "cooldown elapsed: the probe call";
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(b.Allow(BreakerAt(103))) << "one probe at a time";

  b.RecordSuccess();
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_TRUE(b.Allow(BreakerAt(104)));
  // Closing reset the failure streak: one new failure does not re-trip.
  b.RecordFailure(BreakerAt(105));
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_TRUE(b.Allow(BreakerAt(106)));
}

TEST(CircuitBreakerTest, ResetClosesAndClearsTheFailureStreak) {
  pipeline::CircuitBreaker::Options opt;
  opt.threshold = 2;
  opt.cooldown_ms = 0.0;  // open means open forever — only Reset recovers
  pipeline::CircuitBreaker b(opt);

  b.RecordFailure(BreakerAt(0));
  b.RecordFailure(BreakerAt(1));
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_FALSE(b.Allow(BreakerAt(10)));
  EXPECT_TRUE(b.ConsumeTripEvent());

  // The guarded endpoint was replaced (e.g. a promoted shard worker):
  // Reset restores the pristine closed state on the SAME object.
  b.Reset();
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_TRUE(b.Allow(BreakerAt(11)));
  b.RecordFailure(BreakerAt(12));
  EXPECT_EQ(b.state(), BreakerState::kClosed)
      << "the pre-Reset failure streak must not carry over";
  b.RecordFailure(BreakerAt(13));
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_TRUE(b.ConsumeTripEvent()) << "a fresh trip logs again after Reset";
}

TEST(CircuitBreakerTest, FailedProbeReTripsForAnotherCooldown) {
  pipeline::CircuitBreaker::Options opt;
  opt.threshold = 1;
  opt.cooldown_ms = 100.0;
  pipeline::CircuitBreaker b(opt);

  b.RecordFailure(BreakerAt(0));
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  // A straggler completing after the trip must not move the cooldown window.
  b.RecordFailure(BreakerAt(60));
  EXPECT_TRUE(b.Allow(BreakerAt(101)))
      << "cooldown counts from the original trip, not late completions";
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);

  b.RecordFailure(BreakerAt(101));  // the probe failed: re-trip
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_FALSE(b.Allow(BreakerAt(150))) << "a fresh cooldown started";
  EXPECT_TRUE(b.Allow(BreakerAt(202)));
  b.RecordSuccess();
  EXPECT_EQ(b.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenProbeAdmitsExactlyOneUnderConcurrency) {
  // The half-open transition is a race magnet: when the cooldown lapses,
  // every stalled caller arrives at Allow() at once, and exactly one may
  // carry the probe — two probes against a still-broken backend would
  // defeat the breaker's purpose. Run under TSan this also proves the
  // transition is data-race-free.
  pipeline::CircuitBreaker::Options opt;
  opt.threshold = 1;
  opt.cooldown_ms = 100.0;
  pipeline::CircuitBreaker b(opt);
  b.RecordFailure(BreakerAt(0));
  ASSERT_EQ(b.state(), BreakerState::kOpen);

  constexpr int kThreads = 8;
  const auto probe_time = BreakerAt(200.0);  // cooldown elapsed for everyone
  std::atomic<int> ready{0};
  std::atomic<int> admitted{0};
  std::vector<std::thread> callers;
  for (int i = 0; i < kThreads; ++i) {
    callers.emplace_back([&]() {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }  // spin barrier: maximize the collision window
      if (b.Allow(probe_time)) admitted.fetch_add(1);
    });
  }
  for (auto& t : callers) t.join();

  EXPECT_EQ(admitted.load(), 1) << "exactly one caller may carry the probe";
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);

  // The probe's verdict still drives the machine as usual.
  b.RecordSuccess();
  EXPECT_EQ(b.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, CooldownZeroKeepsAnOpenBreakerOpen) {
  pipeline::CircuitBreaker::Options opt;
  opt.threshold = 1;
  opt.cooldown_ms = 0.0;
  pipeline::CircuitBreaker b(opt);

  b.RecordFailure(BreakerAt(0));
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_FALSE(b.Allow(BreakerAt(1e9))) << "no cooldown: open for the run";
}

TEST(CircuitBreakerTest, ThresholdZeroDisablesTheBreaker) {
  pipeline::CircuitBreaker b(pipeline::CircuitBreaker::Options{});
  b.RecordFailure(BreakerAt(0));
  b.RecordFailure(BreakerAt(1));
  b.RecordFailure(BreakerAt(2));
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_TRUE(b.Allow(BreakerAt(3)));
  EXPECT_FALSE(b.ConsumeTripEvent());
}

std::atomic<int> g_flaky_factory_calls{0};

/// Healthy-but-slow pacer: each Fit sleeps long enough for a tripped
/// neighbour's cooldown to elapse before its next pair comes up.
class SleepyNaive final : public methods::Forecaster {
 public:
  Status Fit(const std::vector<double>& train,
             const methods::FitContext&) override {
    std::this_thread::sleep_for(30ms);
    last_ = train.empty() ? 0.0 : train.back();
    return Status::OK();
  }
  Result<std::vector<double>> Forecast(size_t horizon) const override {
    return std::vector<double>(horizon, last_);
  }
  std::string name() const override { return "halfopen_pacer"; }
  methods::Family family() const override {
    return methods::Family::kStatistical;
  }

 private:
  double last_ = 0.0;
};

// End-to-end half-open recovery inside a pipeline run: a method that fails
// its first two instantiations trips its breaker, the interleaved slow
// method lets the cooldown elapse, and the next pair probes, succeeds, and
// closes the breaker — so the run finishes with no skipped pairs at all.
TEST(RobustnessTest, BreakerHalfOpenProbeRecoversMidRun) {
  static const bool registered = [] {
    bool flaky =
        methods::MethodRegistry::Global()
            .Register({"halfopen_flaky", methods::Family::kStatistical,
                       "robustness test: fails its first two instantiations"},
                      [](const Json&) -> Result<methods::ForecasterPtr> {
                        if (g_flaky_factory_calls.fetch_add(1) < 2) {
                          return Status::Internal("injected warm-up failure");
                        }
                        return methods::MethodRegistry::Global().Create(
                            "drift");
                      })
            .ok();
    bool pacer =
        methods::MethodRegistry::Global()
            .Register({"halfopen_pacer", methods::Family::kStatistical,
                       "robustness test: healthy but slow"},
                      [](const Json&) -> Result<methods::ForecasterPtr> {
                        return methods::ForecasterPtr(new SleepyNaive());
                      })
            .ok();
    return flaky && pacer;
  }();
  ASSERT_TRUE(registered);
  g_flaky_factory_calls.store(0);

  tsdata::Repository repo = MakeRepo();
  ASSERT_GE(repo.size(), 4u);

  pipeline::BenchmarkConfig config = SingleMethodConfig("halfopen_flaky");
  config.methods.push_back(
      pipeline::MethodSpec{"halfopen_pacer", Json::Object()});
  config.breaker_threshold = 2;
  config.breaker_cooldown_ms = 20.0;  // < the pacer's 30ms Fit sleep

  // Tasks are dataset-major, so pairs alternate flaky/pacer. A budget of
  // one forces a strictly sequential run with deterministic order.
  pipeline::RunHooks hooks;
  hooks.max_threads = 1;
  auto report = pipeline::PipelineRunner(&repo, config).Run(hooks);
  ASSERT_TRUE(report.ok());

  size_t flaky_ok = 0, flaky_failed = 0, flaky_skipped = 0, pacer_ok = 0;
  for (const auto& rec : report->records) {
    if (rec.method == "halfopen_pacer") {
      if (rec.status.ok()) ++pacer_ok;
      continue;
    }
    if (rec.status.ok()) {
      ++flaky_ok;
    } else if (rec.status.IsUnavailable()) {
      ++flaky_skipped;
    } else {
      ++flaky_failed;
    }
  }
  EXPECT_EQ(flaky_failed, 2u) << "exactly the two injected factory failures";
  EXPECT_EQ(flaky_skipped, 0u)
      << "the half-open probe must reclose the breaker before any skip";
  EXPECT_EQ(flaky_ok, repo.size() - 2);
  EXPECT_EQ(pacer_ok, repo.size());
}

TEST(RobustnessTest, BreakerCooldownSurvivesConfigRoundTrip) {
  auto j = Json::Parse(R"({"breaker_cooldown_ms": 250.0})");
  ASSERT_TRUE(j.ok());
  auto config = pipeline::BenchmarkConfig::FromJson(*j);
  ASSERT_TRUE(config.ok());
  EXPECT_DOUBLE_EQ(config->breaker_cooldown_ms, 250.0);
  EXPECT_DOUBLE_EQ(config->ToJson().GetDouble("breaker_cooldown_ms", -1.0),
                   250.0);

  auto dflt = pipeline::BenchmarkConfig::FromJson(Json::Object());
  ASSERT_TRUE(dflt.ok());
  EXPECT_DOUBLE_EQ(dflt->breaker_cooldown_ms, 0.0);

  auto bad = Json::Parse(R"({"breaker_cooldown_ms": -5.0})");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(pipeline::BenchmarkConfig::FromJson(*bad).ok());
}

// --------------------------------------------------------- Serving fixtures

core::EasyTime* MakeSystem() {
  core::EasyTime::Options opt;
  opt.suite.univariate_per_domain = 1;
  opt.suite.multivariate_total = 1;
  opt.suite.min_length = 180;
  opt.suite.max_length = 220;
  opt.seed_eval.horizon = 12;
  opt.seed_eval.metrics = {"mae", "rmse"};
  opt.seed_methods = {"naive", "seasonal_naive", "theta", "ses", "drift"};
  opt.ensemble.top_k = 2;
  opt.ensemble.ts2vec.epochs = 3;
  opt.ensemble.ts2vec.repr_dim = 8;
  opt.ensemble.ts2vec.hidden_dim = 10;
  opt.ensemble.ts2vec.depth = 2;
  opt.ensemble.classifier.epochs = 80;
  auto system = core::EasyTime::Create(opt);
  EXPECT_TRUE(system.ok()) << system.status().ToString();
  return system.ok() ? system->release() : nullptr;
}

class RobustnessServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { system_ = MakeSystem(); }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  void SetUp() override {
    ASSERT_NE(system_, nullptr);
    FaultRegistry::Global().DisarmAll();
    FaultRegistry::Global().Reseed(42);
  }
  void TearDown() override { FaultRegistry::Global().DisarmAll(); }
  static core::EasyTime* system_;
};

core::EasyTime* RobustnessServeTest::system_ = nullptr;

TEST_F(RobustnessServeTest, RequestDeadlineExpiredInQueueReturnsDeadline) {
  serve::ForecastServer::Options opt;
  opt.num_worker_threads = 1;  // one slow request blocks the lane
  opt.enable_batching = false;
  opt.cache_capacity = 0;
  serve::ForecastServer server(system_, opt);
  server.Start();
  const std::string dataset = system_->repository()->names()[0];

  // Occupy the only worker for ~300ms.
  std::thread blocker([&]() {
    Json params = Json::Object();
    params.Set("dataset", dataset);
    params.Set("method", "naive");
    params.Set("horizon", static_cast<int64_t>(2));
    params.Set("sleep_ms", 300.0);
    auto r = server.Call("forecast", params);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  std::this_thread::sleep_for(50ms);

  // This request's 40ms budget dies in the queue behind the blocker.
  Json params = Json::Object();
  params.Set("dataset", dataset);
  params.Set("method", "naive");
  params.Set("horizon", static_cast<int64_t>(2));
  params.Set("deadline_ms", 40.0);
  auto r = server.Call("forecast", params);
  blocker.join();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status().ToString();

  // A comfortable deadline passes untouched.
  params.Set("deadline_ms", 60000.0);
  auto ok = server.Call("forecast", params);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
  server.Stop();
}

TEST_F(RobustnessServeTest, NonPositiveDeadlineIsRejected) {
  serve::ForecastServer server(system_);
  server.Start();
  Json params = Json::Object();
  params.Set("dataset", system_->repository()->names()[0]);
  params.Set("method", "naive");
  params.Set("deadline_ms", -5.0);
  auto r = server.Call("forecast", params);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  server.Stop();
}

TEST_F(RobustnessServeTest, EvaluateJobHonorsDeadline) {
  serve::ForecastServer server(system_);
  server.Start();
  auto cfg = Json::Parse(R"({
    "methods": ["theta", "ses", "drift"],
    "evaluation": {"strategy": "rolling", "horizon": 8, "metrics": ["mae"]},
    "num_threads": 1,
    "deadline_ms": 1.0
  })");
  ASSERT_TRUE(cfg.ok());
  auto submitted = server.Call("evaluate", *cfg);
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();

  Json poll = Json::Object();
  poll.Set("job", submitted->GetInt("job", -1));
  std::string state = "queued";
  Json status;
  for (int i = 0; i < 600 && (state == "queued" || state == "running"); ++i) {
    auto s = server.Call("job_status", poll);
    ASSERT_TRUE(s.ok());
    status = *s;
    state = status.GetString("state", "");
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(state, "failed");
  EXPECT_NE(status.GetString("error", "").find("Deadline exceeded"),
            std::string::npos);
  server.Stop();
}

TEST_F(RobustnessServeTest, CallWithRetryRidesOutTransientFaults) {
  serve::ForecastServer server(system_);
  server.Start();

  // The first two dispatches fail Unavailable; the third succeeds.
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.code = StatusCode::kUnavailable;
  spec.max_triggers = 2;
  ASSERT_TRUE(FaultRegistry::Global().Arm("serve.dispatch", spec).ok());

  Json params = Json::Object();
  params.Set("dataset", system_->repository()->names()[0]);
  params.Set("method", "naive");
  params.Set("horizon", static_cast<int64_t>(4));

  serve::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_delay_ms = 1.0;
  policy.seed = 5;
  auto r = server.CallWithRetry("forecast", params, policy);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->Get("values").size(), 4u);

  // Plain Call (no retry) with the same fault budget fails immediately.
  FaultRegistry::Global().DisarmAll();
  spec.max_triggers = 1;
  ASSERT_TRUE(FaultRegistry::Global().Arm("serve.dispatch", spec).ok());
  auto plain = server.Call("forecast", params);
  EXPECT_TRUE(plain.status().IsUnavailable());
  server.Stop();
}

TEST_F(RobustnessServeTest, RecommendDegradesToGlobalRankingOnFailure) {
  serve::ForecastServer::Options opt;
  opt.cache_capacity = 0;  // keep injected failures from being masked
  serve::ForecastServer server(system_, opt);
  server.Start();

  Json params = Json::Object();
  params.Set("dataset", system_->repository()->names()[0]);
  params.Set("k", static_cast<int64_t>(3));

  // Healthy path first: not degraded.
  auto healthy = server.Call("recommend", params);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_FALSE(healthy->GetBool("degraded", false));

  // Break the classifier path; the endpoint must still answer, flagged.
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.code = StatusCode::kInternal;
  ASSERT_TRUE(FaultRegistry::Global().Arm("ensemble.recommend", spec).ok());
  auto degraded = server.Call("recommend", params);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->GetBool("degraded", false));
  const Json& recs = degraded->Get("recommendations");
  ASSERT_EQ(recs.size(), 3u);
  for (const auto& item : recs.items()) {
    EXPECT_FALSE(item.GetString("method", "").empty());
  }
  server.Stop();
}

TEST_F(RobustnessServeTest, JobKeyIsStableAndOverridable) {
  auto cfg1 = Json::Parse(R"({"methods": ["naive"], "num_threads": 1})");
  auto cfg2 = Json::Parse(R"({"num_threads": 1, "methods": ["naive"]})");
  ASSERT_TRUE(cfg1.ok() && cfg2.ok());
  // Key order doesn't matter: canonicalization makes the derived key stable.
  EXPECT_EQ(serve::JobManager::JobKey(*cfg1), serve::JobManager::JobKey(*cfg2));

  auto named = Json::Parse(R"({"methods": ["naive"], "job_key": "nightly"})");
  ASSERT_TRUE(named.ok());
  EXPECT_EQ(serve::JobManager::JobKey(*named), "nightly");
}

}  // namespace
}  // namespace easytime
