#include "ensemble/ts2vec.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace easytime::ensemble {
namespace {

using ::easytime::testing::MakeSeasonalSeries;

Ts2VecOptions TinyOptions() {
  Ts2VecOptions o;
  o.repr_dim = 8;
  o.hidden_dim = 12;
  o.depth = 2;
  o.crop_length = 32;
  o.batch_size = 4;
  o.epochs = 6;
  return o;
}

TEST(Ts2VecEncoder, EncodeShape) {
  Ts2VecEncoder enc(TinyOptions());
  nn::Matrix seq(20, 1);
  nn::Matrix repr = enc.Encode(seq);
  EXPECT_EQ(repr.rows(), 20u);
  EXPECT_EQ(repr.cols(), 8u);
  EXPECT_FALSE(enc.Params().empty());
}

TEST(Ts2VecEncoder, RepresentIsFixedLengthAndScaleInvariant) {
  Ts2VecEncoder enc(TinyOptions());
  auto v = MakeSeasonalSeries(100, 10, 4.0, 0.0, 0.1);
  auto r1 = enc.Represent(v);
  EXPECT_EQ(r1.size(), 8u);
  // z-normalization inside Represent => affine rescaling changes little.
  std::vector<double> scaled = v;
  for (auto& x : scaled) x = x * 10.0 + 100.0;
  auto r2 = enc.Represent(scaled);
  for (size_t d = 0; d < r1.size(); ++d) {
    EXPECT_NEAR(r1[d], r2[d], 1e-6);
  }
}

TEST(Ts2VecEncoder, DeterministicForSeed) {
  Ts2VecEncoder a(TinyOptions()), b(TinyOptions());
  auto v = MakeSeasonalSeries(80, 8, 3.0);
  auto ra = a.Represent(v);
  auto rb = b.Represent(v);
  for (size_t d = 0; d < ra.size(); ++d) EXPECT_DOUBLE_EQ(ra[d], rb[d]);
}

TEST(Pretrain, LossDecreasesOverEpochs) {
  Ts2VecEncoder enc(TinyOptions());
  std::vector<std::vector<double>> corpus;
  for (int i = 0; i < 8; ++i) {
    corpus.push_back(MakeSeasonalSeries(120, 8 + 2 * (i % 3), 4.0, 0.0, 0.3,
                                        static_cast<uint64_t>(100 + i)));
  }
  auto stats = PretrainTs2Vec(&enc, corpus);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_GE(stats->epoch_losses.size(), 4u);
  double first = stats->epoch_losses.front();
  double last = stats->epoch_losses.back();
  EXPECT_LT(last, first);
  for (double l : stats->epoch_losses) EXPECT_TRUE(std::isfinite(l));
}

TEST(Pretrain, RepresentationSeparatesSignalFamilies) {
  // After pretraining on two families (fast-seasonal vs slow-seasonal),
  // same-family series should be closer in representation space than
  // cross-family ones.
  Ts2VecOptions opt = TinyOptions();
  opt.epochs = 10;
  Ts2VecEncoder enc(opt);
  std::vector<std::vector<double>> corpus;
  for (int i = 0; i < 6; ++i) {
    corpus.push_back(
        MakeSeasonalSeries(128, 6, 5.0, 0.0, 0.2, static_cast<uint64_t>(i)));
    corpus.push_back(MakeSeasonalSeries(128, 32, 5.0, 0.0, 0.2,
                                        static_cast<uint64_t>(50 + i)));
  }
  ASSERT_TRUE(PretrainTs2Vec(&enc, corpus).ok());

  auto dist = [](const std::vector<double>& a, const std::vector<double>& b) {
    double d = 0.0;
    for (size_t i = 0; i < a.size(); ++i) d += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(d);
  };
  auto fast1 = enc.Represent(MakeSeasonalSeries(128, 6, 5.0, 0.0, 0.2, 901));
  auto fast2 = enc.Represent(MakeSeasonalSeries(128, 6, 5.0, 0.0, 0.2, 902));
  auto slow1 = enc.Represent(MakeSeasonalSeries(128, 32, 5.0, 0.0, 0.2, 903));

  EXPECT_LT(dist(fast1, fast2), dist(fast1, slow1));
}

TEST(Pretrain, RejectsBadInput) {
  Ts2VecEncoder enc(TinyOptions());
  EXPECT_FALSE(PretrainTs2Vec(nullptr, {{1.0, 2.0}}).ok());
  EXPECT_FALSE(PretrainTs2Vec(&enc, {}).ok());
  // All series too short.
  EXPECT_FALSE(PretrainTs2Vec(&enc, {{1.0, 2.0, 3.0}}).ok());
}

}  // namespace
}  // namespace easytime::ensemble
