// Failure-injection tests: misbehaving methods, hostile inputs, and
// degenerate data must degrade gracefully — recorded errors, never crashes
// or silent corruption.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ensemble/auto_ensemble.h"
#include "eval/evaluator.h"
#include "methods/registry.h"
#include "pipeline/runner.h"
#include "qa/qa_engine.h"
#include "test_util.h"
#include "tsdata/characteristics.h"
#include "tsdata/generator.h"

namespace easytime {
namespace {

/// A method that misbehaves on demand (registered once per process).
struct SaboteurForecaster : methods::Forecaster {
  enum class Mode { kWrongLength, kNan, kFitFails, kForecastFails };
  explicit SaboteurForecaster(Mode mode) : mode(mode) {}

  Status Fit(const std::vector<double>& train,
             const methods::FitContext&) override {
    if (mode == Mode::kFitFails) return Status::Internal("injected fit fail");
    if (train.empty()) return Status::InvalidArgument("empty");
    last = train.back();
    return Status::OK();
  }
  Result<std::vector<double>> Forecast(size_t horizon) const override {
    switch (mode) {
      case Mode::kWrongLength:
        return std::vector<double>(horizon + 3, last);
      case Mode::kNan:
        return std::vector<double>(horizon,
                                   std::numeric_limits<double>::quiet_NaN());
      case Mode::kForecastFails:
        return Status::Internal("injected forecast fail");
      case Mode::kFitFails:
        return Status::Internal("unreachable");
    }
    return std::vector<double>(horizon, last);
  }
  std::string name() const override { return "saboteur"; }
  methods::Family family() const override {
    return methods::Family::kStatistical;
  }

  Mode mode;
  double last = 0.0;
};

eval::EvalConfig SmallConfig() {
  eval::EvalConfig c;
  c.horizon = 8;
  c.metrics = {"mae"};
  return c;
}

TEST(FailureInjection, WrongForecastLengthIsInternalError) {
  SaboteurForecaster bad(SaboteurForecaster::Mode::kWrongLength);
  auto v = testing::MakeLinearSeries(100, 0.0, 1.0);
  auto r = eval::Evaluator(SmallConfig()).EvaluateValues(&bad, v);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(FailureInjection, NanForecastYieldsNanMetricsNotCrash) {
  SaboteurForecaster bad(SaboteurForecaster::Mode::kNan);
  auto v = testing::MakeLinearSeries(100, 0.0, 1.0);
  auto r = eval::Evaluator(SmallConfig()).EvaluateValues(&bad, v);
  ASSERT_TRUE(r.ok());  // the protocol ran; the metric value carries the NaN
  EXPECT_TRUE(std::isnan(r->metrics.at("mae")));
}

TEST(FailureInjection, LeaderboardIgnoresNanEntries) {
  pipeline::BenchmarkReport report;
  pipeline::RunRecord good;
  good.method = "good";
  good.metrics["mae"] = 1.0;
  good.status = Status::OK();
  pipeline::RunRecord poisoned;
  poisoned.method = "poisoned";
  poisoned.metrics["mae"] = std::nan("");
  poisoned.status = Status::OK();
  report.records = {good, poisoned};
  auto lb = report.Leaderboard("mae");
  ASSERT_EQ(lb.size(), 1u);
  EXPECT_EQ(lb[0].first, "good");
}

TEST(FailureInjection, EnsembleSurvivesMemberForecastFailure) {
  std::vector<methods::ForecasterPtr> members;
  members.push_back(
      methods::MethodRegistry::Global().Create("naive").ValueOrDie());
  members.push_back(std::make_unique<SaboteurForecaster>(
      SaboteurForecaster::Mode::kForecastFails));
  ensemble::EnsembleForecaster ens(std::move(members), {"naive", "saboteur"},
                                   0.25);
  auto v = testing::MakeSeasonalSeries(120, 12, 4.0);
  methods::FitContext ctx;
  ctx.horizon = 8;
  // Fit succeeds (the saboteur's validation forecasts are neutralized)...
  ASSERT_TRUE(ens.Fit(v, ctx).ok());
  // ...but the final Forecast hits the saboteur's injected error if it
  // carries weight; the ensemble must surface the error, not fabricate data.
  auto fc = ens.Forecast(8);
  if (fc.ok()) {
    for (double x : *fc) EXPECT_TRUE(std::isfinite(x));
  } else {
    EXPECT_EQ(fc.status().code(), StatusCode::kInternal);
  }
}

TEST(FailureInjection, PipelineRecordsFitFailuresPerPair) {
  auto& registry = methods::MethodRegistry::Global();
  if (!registry.Contains("always_fails")) {
    ASSERT_TRUE(registry
                    .Register({"always_fails",
                               methods::Family::kStatistical,
                               "failure injection"},
                              [](const Json&) -> Result<methods::ForecasterPtr> {
                                return methods::ForecasterPtr(
                                    new SaboteurForecaster(
                                        SaboteurForecaster::Mode::kFitFails));
                              })
                    .ok());
  }
  tsdata::Repository repo;
  tsdata::SuiteSpec spec;
  spec.univariate_per_domain = 1;
  spec.multivariate_total = 0;
  spec.min_length = 120;
  spec.max_length = 140;
  ASSERT_TRUE(repo.AddSuite(spec).ok());

  pipeline::BenchmarkConfig config;
  config.eval = SmallConfig();
  config.methods = {pipeline::MethodSpec{"always_fails", Json::Object()},
                    pipeline::MethodSpec{"naive", Json::Object()}};
  auto report = pipeline::PipelineRunner(&repo, config).Run();
  ASSERT_TRUE(report.ok());
  size_t failed = 0;
  for (const auto& rec : report->records) {
    if (!rec.status.ok()) {
      ++failed;
      EXPECT_EQ(rec.method, "always_fails");
    }
  }
  EXPECT_EQ(failed, repo.size());
  EXPECT_EQ(report->Successful().size(), repo.size());
}

TEST(FailureInjection, DegenerateSeriesDoNotCrashCharacteristics) {
  // Constant, tiny, huge-magnitude, and NaN-free-but-extreme inputs.
  std::vector<std::vector<double>> inputs = {
      std::vector<double>(100, 5.0),                    // constant
      {1.0, 2.0},                                       // tiny
      std::vector<double>(50, 1e150),                   // huge constant
  };
  std::vector<double> alternating(64);
  for (size_t i = 0; i < alternating.size(); ++i) {
    alternating[i] = i % 2 ? 1e9 : -1e9;
  }
  inputs.push_back(alternating);
  for (const auto& v : inputs) {
    auto ch = tsdata::ExtractCharacteristics(v);
    EXPECT_GE(ch.seasonality, 0.0);
    EXPECT_LE(ch.seasonality, 1.0);
    EXPECT_GE(ch.trend, 0.0);
    EXPECT_LE(ch.trend, 1.0);
    auto f = tsdata::CharacteristicFeatureVector(v);
    for (double x : f) EXPECT_TRUE(std::isfinite(x));
  }
}

TEST(FailureInjection, QaSurvivesEmptyKnowledgeBase) {
  knowledge::KnowledgeBase empty;
  empty.AddAllMethods();  // methods but no datasets/results
  auto engine = qa::QaEngine::Create(empty).ValueOrDie();
  auto resp = engine->Ask("top-3 methods by mae");
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->table.rows.empty());
  EXPECT_NE(resp->answer.find("No benchmark results"), std::string::npos);
}

TEST(FailureInjection, SqlInjectionStyleQuestionStaysSafe) {
  knowledge::KnowledgeBase empty;
  empty.AddAllMethods();
  auto engine = qa::QaEngine::Create(empty).ValueOrDie();
  // Hostile text cannot escape the NL2SQL templates into DDL: either the
  // question is rejected, or the generated SQL is a verified SELECT.
  auto resp =
      engine->Ask("top-3 methods'; DROP TABLE results; -- by mae");
  if (resp.ok()) {
    EXPECT_EQ(resp->sql.find("DROP"), std::string::npos);
    EXPECT_EQ(resp->sql.rfind("SELECT", 0), 0u);
  }
  EXPECT_TRUE(engine->SchemaDescription().find("results(") !=
              std::string::npos);
}

}  // namespace
}  // namespace easytime
