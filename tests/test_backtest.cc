// Rolling-origin backtest engine (eval/backtest.h): ladder math, config
// validation, expanding vs sliding windows, determinism across thread
// counts, cooperative cancellation/deadlines, and the checkpoint-resume
// splice contract the serving layer builds on.

#include "eval/backtest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "tsdata/generator.h"

namespace easytime::eval {
namespace {

std::vector<double> SeasonalSeries(size_t n, uint64_t seed = 11) {
  tsdata::GeneratorConfig cfg;
  cfg.name = "bt";
  cfg.length = n;
  cfg.period = 12;
  cfg.season_amp = 3.0;
  cfg.trend_slope = 0.02;
  cfg.noise_std = 0.4;
  cfg.seed = seed;
  return tsdata::GenerateSeries(cfg).values();
}

/// Zeroes the wall-clock field so reports can be compared bit-for-bit:
/// fit_seconds is timing telemetry, everything else is deterministic.
Json CanonicalReport(const BacktestReport& report) {
  Json j = report.ToJson();
  Json origins = Json::Array();
  for (const auto& o : j.Get("origins").items()) {
    Json c = o;
    c.Set("fit_seconds", 0.0);
    origins.Append(std::move(c));
  }
  j.Set("origins", std::move(origins));
  return j;
}

// ---------------------------------------------------------------------------
// Origin ladder
// ---------------------------------------------------------------------------

TEST(BacktestLadderTest, OriginsAreAnchoredToTheSeriesEnd) {
  BacktestConfig cfg;
  cfg.origins = 4;
  cfg.horizon = 24;
  cfg.stride = 0;  // defaults to horizon: non-overlapping evaluation windows
  auto origins = BacktestOrigins(200, cfg);
  ASSERT_TRUE(origins.ok()) << origins.status().ToString();
  EXPECT_EQ(*origins, (std::vector<size_t>{104, 128, 152, 176}));
  // The last origin forecasts exactly the final horizon values.
  EXPECT_EQ(origins->back() + cfg.horizon, 200u);
}

TEST(BacktestLadderTest, ExplicitStrideOverlapsWindows) {
  BacktestConfig cfg;
  cfg.origins = 3;
  cfg.horizon = 24;
  cfg.stride = 6;
  auto origins = BacktestOrigins(100, cfg);
  ASSERT_TRUE(origins.ok());
  EXPECT_EQ(*origins, (std::vector<size_t>{64, 70, 76}));
}

TEST(BacktestLadderTest, TooShortSeriesIsInvalidArgument) {
  BacktestConfig cfg;
  cfg.origins = 8;
  cfg.horizon = 24;
  cfg.min_train = 32;
  // span = 24 + 7*24 = 192; need >= 224 points.
  EXPECT_TRUE(BacktestOrigins(223, cfg).status().IsInvalidArgument());
  EXPECT_TRUE(BacktestOrigins(224, cfg).ok());
}

TEST(BacktestLadderTest, SlidingWindowMustFitBeforeTheFirstOrigin) {
  BacktestConfig cfg;
  cfg.origins = 2;
  cfg.horizon = 10;
  cfg.window = BacktestWindow::kSliding;
  cfg.window_size = 90;  // first origin for n=100 is at 80 < 90
  EXPECT_TRUE(BacktestOrigins(100, cfg).status().IsInvalidArgument());
  cfg.window_size = 16;  // smaller than min_train (32)
  EXPECT_TRUE(BacktestOrigins(100, cfg).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Config parsing
// ---------------------------------------------------------------------------

TEST(BacktestConfigTest, FromJsonValidatesAgainstTheRegistries) {
  auto bad_method = Json::Parse(R"({"method": "no_such_method"})");
  ASSERT_TRUE(bad_method.ok());
  EXPECT_TRUE(BacktestConfig::FromJson(*bad_method).status().IsNotFound());

  auto bad_metric =
      Json::Parse(R"({"method": "theta", "metrics": ["no_such_metric"]})");
  ASSERT_TRUE(bad_metric.ok());
  EXPECT_TRUE(BacktestConfig::FromJson(*bad_metric).status().IsNotFound());

  auto bad_conf = Json::Parse(R"({"method": "theta", "confidence": 1.5})");
  ASSERT_TRUE(bad_conf.ok());
  EXPECT_TRUE(
      BacktestConfig::FromJson(*bad_conf).status().IsInvalidArgument());

  auto bad_window = Json::Parse(R"({"method": "theta", "window": "rolling"})");
  ASSERT_TRUE(bad_window.ok());
  EXPECT_TRUE(
      BacktestConfig::FromJson(*bad_window).status().IsInvalidArgument());

  auto good = Json::Parse(R"({
    "method": "ses", "origins": 5, "horizon": 12, "stride": 3,
    "window": "sliding", "window_size": 64, "confidence": 0.9,
    "metrics": ["mase", "smape"]
  })");
  ASSERT_TRUE(good.ok());
  auto cfg = BacktestConfig::FromJson(*good);
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
  EXPECT_EQ(cfg->method, "ses");
  EXPECT_EQ(cfg->origins, 5u);
  EXPECT_EQ(cfg->window, BacktestWindow::kSliding);
  EXPECT_EQ(cfg->window_size, 64u);
  EXPECT_EQ(cfg->metrics, (std::vector<std::string>{"mase", "smape"}));
}

TEST(BacktestConfigTest, ConfigRoundTripsThroughJson) {
  BacktestConfig cfg;
  cfg.method = "holt";
  cfg.origins = 6;
  cfg.stride = 4;
  cfg.window = BacktestWindow::kSliding;
  cfg.window_size = 80;
  cfg.confidence = 0.8;
  auto back = BacktestConfig::FromJson(cfg.ToJson());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->ToJson().Dump(), cfg.ToJson().Dump());
}

TEST(BacktestConfigTest, OriginEvalRoundTripsThroughJson) {
  OriginEval o;
  o.index = 3;
  o.origin = 144;
  o.train_size = 100;
  o.metrics = {{"mae", 1.25}, {"mase", 0.9}};
  o.coverage = 0.875;
  o.interval_width = 2.5;
  o.fit_seconds = 0.001;
  auto back = OriginEval::FromJson(o.ToJson());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->ToJson().Dump(), o.ToJson().Dump());
}

// ---------------------------------------------------------------------------
// Engine behaviour
// ---------------------------------------------------------------------------

TEST(BacktestEngineTest, ExpandingWindowReportsEveryOrigin) {
  std::vector<double> values = SeasonalSeries(240);
  BacktestConfig cfg;
  cfg.method = "theta";
  cfg.origins = 4;
  cfg.horizon = 12;
  auto report = RunBacktest(values, 12, cfg);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->origins.size(), 4u);
  EXPECT_EQ(report->resumed, 0u);
  size_t expected_origin = 240 - 12 - 3 * 12;
  for (size_t i = 0; i < 4; ++i) {
    const OriginEval& o = report->origins[i];
    EXPECT_EQ(o.index, i);
    EXPECT_EQ(o.origin, expected_origin + i * 12);
    // Expanding: the train grows by one stride per origin.
    EXPECT_EQ(o.train_size, o.origin);
    EXPECT_GE(o.coverage, 0.0);
    EXPECT_LE(o.coverage, 1.0);
    EXPECT_GT(o.interval_width, 0.0);
    for (const auto& name : cfg.metrics) {
      ASSERT_TRUE(o.metrics.count(name)) << name;
      EXPECT_TRUE(std::isfinite(o.metrics.at(name))) << name;
    }
  }
  for (const auto& name : cfg.metrics) {
    ASSERT_TRUE(report->aggregate.count(name));
    EXPECT_TRUE(std::isfinite(report->aggregate.at(name)));
  }
}

TEST(BacktestEngineTest, SlidingWindowKeepsTrainSizeConstant) {
  std::vector<double> values = SeasonalSeries(300);
  BacktestConfig cfg;
  cfg.method = "ses";
  cfg.origins = 5;
  cfg.horizon = 10;
  cfg.window = BacktestWindow::kSliding;
  cfg.window_size = 96;
  auto report = RunBacktest(values, 12, cfg);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const auto& o : report->origins) {
    EXPECT_EQ(o.train_size, 96u);
  }
  // window_size 0 pins the width to the first origin's position.
  cfg.window_size = 0;
  auto report0 = RunBacktest(values, 12, cfg);
  ASSERT_TRUE(report0.ok());
  size_t first = report0->origins.front().origin;
  for (const auto& o : report0->origins) {
    EXPECT_EQ(o.train_size, first);
  }
}

TEST(BacktestEngineTest, ProgressAndOnOriginStreamEveryOrigin) {
  std::vector<double> values = SeasonalSeries(220);
  BacktestConfig cfg;
  cfg.method = "naive";
  cfg.origins = 6;
  cfg.horizon = 8;
  BacktestHooks hooks;
  std::atomic<size_t> streamed{0};
  size_t last_done = 0, last_total = 0;
  hooks.on_origin = [&](const OriginEval& o) {
    EXPECT_LT(o.index, 6u);
    streamed.fetch_add(1);
  };
  hooks.progress = [&](size_t done, size_t total) {
    last_done = done;  // serialized under the engine's emit lock
    last_total = total;
  };
  auto report = RunBacktest(values, 0, cfg, hooks);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(streamed.load(), 6u);
  EXPECT_EQ(last_done, 6u);
  EXPECT_EQ(last_total, 6u);
}

TEST(BacktestEngineTest, CancellationAbortsWithCancelled) {
  std::vector<double> values = SeasonalSeries(400);
  BacktestConfig cfg;
  cfg.method = "theta";
  cfg.origins = 8;
  cfg.horizon = 12;
  BacktestHooks hooks;
  std::atomic<size_t> seen{0};
  hooks.max_threads = 1;  // deterministic: cancel lands between origins
  hooks.cancelled = [&]() { return seen.load() >= 2; };
  hooks.on_origin = [&](const OriginEval&) { seen.fetch_add(1); };
  auto report = RunBacktest(values, 12, cfg, hooks);
  EXPECT_TRUE(report.status().IsCancelled()) << report.status().ToString();
  EXPECT_LT(seen.load(), 8u);
}

TEST(BacktestEngineTest, ExpiredDeadlineAbortsWithDeadlineExceeded) {
  std::vector<double> values = SeasonalSeries(240);
  BacktestConfig cfg;
  cfg.method = "ses";
  cfg.origins = 4;
  cfg.horizon = 12;
  BacktestHooks hooks;
  hooks.deadline = easytime::Deadline::AfterMillis(0.001);
  auto report = RunBacktest(values, 12, cfg, hooks);
  EXPECT_TRUE(report.status().IsDeadlineExceeded())
      << report.status().ToString();
}

// ---------------------------------------------------------------------------
// Determinism: 1 thread vs N threads, bit-identical
// ---------------------------------------------------------------------------

TEST(BacktestDeterminismTest, ReportIsBitIdenticalAcrossThreadCounts) {
  std::vector<double> values = SeasonalSeries(360, 23);
  for (const char* method : {"theta", "ses", "seasonal_naive"}) {
    BacktestConfig cfg;
    cfg.method = method;
    cfg.origins = 6;
    cfg.horizon = 12;
    BacktestHooks seq;
    seq.max_threads = 1;
    auto sequential = RunBacktest(values, 12, cfg, seq);
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();

    BacktestHooks par;
    par.max_threads = 4;
    auto parallel = RunBacktest(values, 12, cfg, par);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

    EXPECT_EQ(CanonicalReport(*sequential).Dump(),
              CanonicalReport(*parallel).Dump())
        << method << ": fan-out must not change the report";
  }
}

// ---------------------------------------------------------------------------
// Resume splice
// ---------------------------------------------------------------------------

TEST(BacktestResumeTest, CompletedOriginsAreSplicedWithoutReEvaluation) {
  std::vector<double> values = SeasonalSeries(280, 5);
  BacktestConfig cfg;
  cfg.method = "holt";
  cfg.origins = 6;
  cfg.horizon = 10;
  auto full = RunBacktest(values, 12, cfg);
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  // Pretend the first run died after finishing origins {0, 2, 3}.
  std::map<size_t, OriginEval> completed;
  for (size_t i : {0u, 2u, 3u}) completed[i] = full->origins[i];

  BacktestHooks hooks;
  hooks.completed = &completed;
  std::vector<size_t> reran;
  hooks.on_origin = [&](const OriginEval& o) { reran.push_back(o.index); };
  auto resumed = RunBacktest(values, 12, cfg, hooks);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  // Only the missing origins were re-evaluated...
  std::sort(reran.begin(), reran.end());
  EXPECT_EQ(reran, (std::vector<size_t>{1, 4, 5}));
  EXPECT_EQ(resumed->resumed, 3u);
  // ...and the report is unchanged (splicing is transparent).
  Json a = CanonicalReport(*full);
  a.Set("resumed", static_cast<int64_t>(3));
  EXPECT_EQ(a.Dump(), CanonicalReport(*resumed).Dump());
}

TEST(BacktestResumeTest, FullyCheckpointedRunReEvaluatesNothing) {
  std::vector<double> values = SeasonalSeries(260, 9);
  BacktestConfig cfg;
  cfg.method = "drift";
  cfg.origins = 4;
  cfg.horizon = 12;
  auto full = RunBacktest(values, 12, cfg);
  ASSERT_TRUE(full.ok());
  std::map<size_t, OriginEval> completed;
  for (const auto& o : full->origins) completed[o.index] = o;

  BacktestHooks hooks;
  hooks.completed = &completed;
  size_t reran = 0;
  hooks.on_origin = [&](const OriginEval&) { ++reran; };
  auto resumed = RunBacktest(values, 12, cfg, hooks);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(reran, 0u);
  EXPECT_EQ(resumed->resumed, 4u);
  EXPECT_EQ(resumed->origins.size(), 4u);
}

}  // namespace
}  // namespace easytime::eval
