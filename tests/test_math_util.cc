#include "common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.h"

namespace easytime {
namespace {

TEST(Stats, MeanVarianceStd) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Variance(v), 1.25);
  EXPECT_DOUBLE_EQ(StdDev(v), std::sqrt(1.25));
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(Stats, MedianAndQuantiles) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({1, 2, 3, 4, 5}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile({1, 2, 3, 4, 5}, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile({1, 2, 3, 4, 5}, 0.25), 2.0);
}

TEST(Correlation, PerfectAndInverse) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {2, 4, 6, 8};
  std::vector<double> c = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, {1, 1, 1, 1}), 0.0);  // degenerate
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, {1, 2}), 0.0);        // mismatch
}

TEST(Acf, PeriodicSignalPeaksAtPeriod) {
  std::vector<double> v(200);
  for (size_t t = 0; t < v.size(); ++t) {
    v[t] = std::sin(2.0 * std::numbers::pi * static_cast<double>(t) / 20.0);
  }
  EXPECT_NEAR(Autocorrelation(v, 0), 1.0, 1e-12);
  EXPECT_GT(Autocorrelation(v, 20), 0.8);
  EXPECT_LT(Autocorrelation(v, 10), -0.8);
  auto acf = AcfUpTo(v, 25);
  EXPECT_EQ(acf.size(), 26u);
}

TEST(MovingAverage, SmoothsAndPreservesLength) {
  std::vector<double> v = {0, 10, 0, 10, 0, 10};
  auto ma = MovingAverage(v, 3);
  EXPECT_EQ(ma.size(), v.size());
  // Interior point 2 averages its centered window {10, 0, 10}.
  EXPECT_NEAR(ma[2], 20.0 / 3.0, 1e-9);
  // Edge point 0 averages the shrunken window {0, 10}.
  EXPECT_NEAR(ma[0], 5.0, 1e-9);
  // Window 1 = identity.
  EXPECT_EQ(MovingAverage(v, 1), v);
}

TEST(Difference, FirstAndSecondOrder) {
  std::vector<double> v = {1, 4, 9, 16};
  EXPECT_EQ(Difference(v), (std::vector<double>{3, 5, 7}));
  EXPECT_EQ(Difference(v, 2), (std::vector<double>{2, 2}));
  EXPECT_TRUE(Difference({1.0}, 1).empty());
}

TEST(Fft, KnownTransformAndInverse) {
  std::vector<std::complex<double>> data = {
      {1, 0}, {2, 0}, {3, 0}, {4, 0}};
  auto copy = data;
  ASSERT_TRUE(Fft(&data).ok());
  // DC component = sum.
  EXPECT_NEAR(data[0].real(), 10.0, 1e-9);
  ASSERT_TRUE(Fft(&data, /*inverse=*/true).ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(data[i].real(), copy[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag(), 0.0, 1e-9);
  }
}

TEST(Fft, NonPowerOfTwoRejected) {
  std::vector<std::complex<double>> data(3);
  EXPECT_FALSE(Fft(&data).ok());
}

TEST(PowerSpectrum, PeakAtSignalFrequency) {
  size_t n = 256, period = 16;
  std::vector<double> v(n);
  for (size_t t = 0; t < n; ++t) {
    v[t] = std::sin(2.0 * std::numbers::pi * static_cast<double>(t) /
                    static_cast<double>(period));
  }
  auto spec = PowerSpectrum(v);
  size_t peak = ArgMax(spec);
  // Frequency bin k corresponds to period n/k.
  EXPECT_NEAR(static_cast<double>(n) / static_cast<double>(peak),
              static_cast<double>(period), 1.0);
}

TEST(SolveLinearSystem, TwoByTwo) {
  // 2x + y = 5 ; x - y = 1  ->  x = 2, y = 1
  auto x = SolveLinearSystem({2, 1, 1, -1}, {5, 1}, 2);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 2.0, 1e-9);
  EXPECT_NEAR((*x)[1], 1.0, 1e-9);
}

TEST(SolveLinearSystem, SingularRejected) {
  EXPECT_FALSE(SolveLinearSystem({1, 1, 1, 1}, {2, 2}, 2).ok());
  EXPECT_FALSE(SolveLinearSystem({1, 2}, {1}, 2).ok());  // bad dims
}

TEST(LeastSquares, RecoversLinearModel) {
  // y = 3 + 2*x with exact data.
  size_t rows = 10;
  std::vector<double> x(rows * 2), y(rows);
  for (size_t r = 0; r < rows; ++r) {
    x[r * 2] = 1.0;
    x[r * 2 + 1] = static_cast<double>(r);
    y[r] = 3.0 + 2.0 * static_cast<double>(r);
  }
  auto beta = LeastSquares(x, y, rows, 2);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR((*beta)[0], 3.0, 1e-8);
  EXPECT_NEAR((*beta)[1], 2.0, 1e-8);
}

TEST(LeastSquares, RidgeShrinks) {
  std::vector<double> x = {1, 1, 1, 1};  // collinear columns
  std::vector<double> y = {2, 2};
  auto beta = LeastSquares(x, y, 2, 2, 1.0);
  ASSERT_TRUE(beta.ok());
  // Symmetric shrinkage splits the signal.
  EXPECT_NEAR((*beta)[0], (*beta)[1], 1e-9);
}

TEST(LinearTrendFit, ExactLine) {
  auto [a, b] = LinearTrendFit({5, 7, 9, 11});
  EXPECT_NEAR(a, 5.0, 1e-9);
  EXPECT_NEAR(b, 2.0, 1e-9);
  auto [a1, b1] = LinearTrendFit({42});
  EXPECT_DOUBLE_EQ(a1, 42.0);
  EXPECT_DOUBLE_EQ(b1, 0.0);
}

TEST(Softmax, SumsToOneAndOrders) {
  auto p = Softmax({1.0, 2.0, 3.0});
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
  // Temperature sharpens.
  auto sharp = Softmax({1.0, 2.0, 3.0}, 0.1);
  EXPECT_GT(sharp[2], p[2]);
}

TEST(ArgMaxMin, Basics) {
  EXPECT_EQ(ArgMax({1.0, 5.0, 3.0}), 1u);
  EXPECT_EQ(ArgMin({1.0, 5.0, 3.0}), 0u);
  EXPECT_EQ(ArgMax({}), 0u);
}

TEST(NextPowerOfTwo, Basics) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
}

TEST(Ranks, HandlesTies) {
  auto r = Ranks({10, 20, 20, 30});
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Spearman, MonotoneNonlinearIsPerfect) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {1, 4, 9, 16, 25};  // monotone transform
  EXPECT_NEAR(SpearmanCorrelation(a, b), 1.0, 1e-12);
}

}  // namespace
}  // namespace easytime
