#include "sql/table_function.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/fault.h"
#include "common/json.h"
#include "methods/forecaster.h"
#include "methods/registry.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace easytime::sql {
namespace {

/// Deterministic normal deviates (Box-Muller over a 64-bit LCG) so coverage
/// statistics are reproducible across platforms and thread counts.
class TestRng {
 public:
  explicit TestRng(uint64_t seed) : state_(seed * 2654435761u + 1) {}

  double Uniform() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>((state_ >> 11) + 1) / 9007199254740994.0;
  }

  double Normal() {
    double u1 = Uniform(), u2 = Uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

 private:
  uint64_t state_;
};

class SqlForecastTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One seasonal series with trend on an integer date axis.
    Exec("CREATE TABLE sales (t INTEGER, v REAL)");
    std::string insert = "INSERT INTO sales VALUES ";
    for (int i = 0; i < 120; ++i) {
      if (i) insert += ", ";
      double v = 50.0 + 0.3 * i + 8.0 * std::sin(2.0 * 3.14159265 * i / 12.0);
      insert += "(" + std::to_string(i) + ", " + std::to_string(v) + ")";
    }
    Exec(insert);
  }

  void TearDown() override { FaultRegistry::Global().DisarmAll(); }

  void Exec(const std::string& sql) {
    auto r = ExecuteQuery(&db_, sql);
    ASSERT_TRUE(r.ok()) << sql.substr(0, 80) << " -> "
                        << r.status().ToString();
  }

  ResultSet Q(const std::string& sql,
              const easytime::Deadline& deadline = easytime::Deadline()) {
    auto r = ExecuteQuery(&db_, sql, deadline);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(*r) : ResultSet{};
  }

  Status Fail(const std::string& sql,
              const easytime::Deadline& deadline = easytime::Deadline()) {
    auto r = ExecuteQuery(&db_, sql, deadline);
    EXPECT_FALSE(r.ok()) << sql << " unexpectedly succeeded";
    return r.ok() ? Status::OK() : r.status();
  }

  /// Populates a grouped table: \p groups random walks of \p len points.
  void MakeGroupedTable(const std::string& name, int groups, int len) {
    Exec("CREATE TABLE " + name + " (region TEXT, t INTEGER, v REAL)");
    std::string insert = "INSERT INTO " + name + " VALUES ";
    bool first = true;
    for (int g = 0; g < groups; ++g) {
      TestRng rng(1000 + static_cast<uint64_t>(g));
      double level = 100.0 + 5.0 * g;
      char label[16];
      std::snprintf(label, sizeof(label), "r%03d", g);
      for (int i = 0; i < len; ++i) {
        level += rng.Normal();
        if (!first) insert += ", ";
        first = false;
        insert += std::string("('") + label + "', " + std::to_string(i) +
                  ", " + std::to_string(level) + ")";
      }
    }
    Exec(insert);
  }

  Database db_;
};

// ---------------------------------------------------------------------------
// TS_FORECAST basics
// ---------------------------------------------------------------------------

TEST_F(SqlForecastTest, ForecastReturnsSchemaAndOrderedFiniteRows) {
  auto rs = Q("SELECT * FROM TS_FORECAST(sales, t, v, model := 'theta', "
              "horizon := 12, confidence := 0.95)");
  ASSERT_EQ(rs.columns.size(), 7u);
  EXPECT_EQ(rs.columns[0], "forecast_step");
  EXPECT_EQ(rs.columns[1], "forecast_timestamp");
  EXPECT_EQ(rs.columns[2], "point_forecast");
  EXPECT_EQ(rs.columns[3], "lower");
  EXPECT_EQ(rs.columns[4], "upper");
  EXPECT_EQ(rs.columns[5], "model_name");
  EXPECT_EQ(rs.columns[6], "fit_time_ms");
  ASSERT_EQ(rs.rows.size(), 12u);
  int64_t prev_ts = -1;
  for (size_t h = 0; h < rs.rows.size(); ++h) {
    const Row& row = rs.rows[h];
    EXPECT_EQ(row[0].AsInteger(), static_cast<int64_t>(h + 1));
    // Training dates run 0..119 at unit spacing, so forecasts continue it.
    EXPECT_EQ(row[1].AsInteger(), 120 + static_cast<int64_t>(h));
    EXPECT_GT(row[1].AsInteger(), prev_ts);
    prev_ts = row[1].AsInteger();
    double point = row[2].AsReal(), lower = row[3].AsReal(),
           upper = row[4].AsReal();
    EXPECT_TRUE(std::isfinite(point) && std::isfinite(lower) &&
                std::isfinite(upper));
    EXPECT_LE(lower, point);
    EXPECT_LE(point, upper);
    EXPECT_EQ(row[5].AsText(), "theta");
    EXPECT_GE(row[6].AsReal(), 0.0);
  }
}

TEST_F(SqlForecastTest, DefaultsAreThetaHorizon12) {
  auto rs = Q("SELECT * FROM TS_FORECAST(sales, t, v)");
  ASSERT_EQ(rs.rows.size(), 12u);
  EXPECT_EQ(rs.rows[0][5].AsText(), "theta");
}

TEST_F(SqlForecastTest, IntervalsWidenWithHorizon) {
  auto rs = Q("SELECT * FROM TS_FORECAST(sales, t, v, model := 'ses', "
              "horizon := 24)");
  ASSERT_EQ(rs.rows.size(), 24u);
  double w_first = rs.rows[0][4].AsReal() - rs.rows[0][3].AsReal();
  double w_last = rs.rows[23][4].AsReal() - rs.rows[23][3].AsReal();
  EXPECT_GT(w_first, 0.0);
  EXPECT_GT(w_last, w_first);
}

TEST_F(SqlForecastTest, HigherConfidenceWidensIntervals) {
  auto narrow = Q("SELECT * FROM TS_FORECAST(sales, t, v, model := 'naive', "
                  "confidence := 0.5)");
  auto wide = Q("SELECT * FROM TS_FORECAST(sales, t, v, model := 'naive', "
                "confidence := 0.99)");
  ASSERT_EQ(narrow.rows.size(), wide.rows.size());
  for (size_t h = 0; h < narrow.rows.size(); ++h) {
    double wn = narrow.rows[h][4].AsReal() - narrow.rows[h][3].AsReal();
    double ww = wide.rows[h][4].AsReal() - wide.rows[h][3].AsReal();
    EXPECT_LT(wn, ww) << "step " << h + 1;
  }
}

TEST_F(SqlForecastTest, EveryRegisteredModelProducesValidIntervals) {
  for (const auto& model : methods::MethodRegistry::Global().Names()) {
    auto r = ExecuteQuery(&db_,
                          "SELECT * FROM TS_FORECAST(sales, t, v, model := '" +
                              model + "', horizon := 6, period := 12)");
    ASSERT_TRUE(r.ok()) << model << " -> " << r.status().ToString();
    ASSERT_EQ(r->rows.size(), 6u) << model;
    for (const Row& row : r->rows) {
      double point = row[2].AsReal(), lower = row[3].AsReal(),
             upper = row[4].AsReal();
      EXPECT_TRUE(std::isfinite(point)) << model;
      EXPECT_LE(lower, point) << model;
      EXPECT_LE(point, upper) << model;
    }
  }
}

TEST_F(SqlForecastTest, LowerAndUpperProjectAsColumnNames) {
  // "lower"/"upper" double as SQL function keywords; bare references must
  // still resolve to the interval columns.
  auto rs = Q("SELECT lower, upper FROM TS_FORECAST(sales, t, v, "
              "horizon := 3) WHERE upper > lower ORDER BY lower");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.columns[0], "lower");
  EXPECT_EQ(rs.columns[1], "upper");
  // And the call form still works as the string functions.
  auto fn = Q("SELECT UPPER(model_name) FROM TS_FORECAST(sales, t, v, "
              "horizon := 1)");
  ASSERT_EQ(fn.rows.size(), 1u);
  EXPECT_EQ(fn.rows[0][0].AsText(), "THETA");
}

TEST_F(SqlForecastTest, ComposesWithWhereOrderByAndProjection) {
  auto rs = Q("SELECT forecast_step, point_forecast FROM "
              "TS_FORECAST(sales, t, v, horizon := 10) "
              "WHERE forecast_step > 7 ORDER BY forecast_step DESC");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.columns.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].AsInteger(), 10);
  EXPECT_EQ(rs.rows[2][0].AsInteger(), 8);
}

// ---------------------------------------------------------------------------
// Forecast timestamps
// ---------------------------------------------------------------------------

TEST_F(SqlForecastTest, MedianIntervalTimestampsOnIrregularIntegerDates) {
  Exec("CREATE TABLE gappy (t INTEGER, v REAL)");
  // Unit spacing with one missing observation: diffs {1, 1, 2, 1, 1, 1, 1,
  // 1, 1} -> median 1, so forecasts continue at unit steps from t=10.
  Exec("INSERT INTO gappy VALUES (1, 5.0), (2, 6.0), (3, 5.5), (5, 6.5), "
       "(6, 6.0), (7, 7.0), (8, 6.5), (9, 7.5), (10, 7.0), (4, 6.2)");
  auto rs = Q("SELECT * FROM TS_FORECAST(gappy, t, v, model := 'naive', "
              "horizon := 3)");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][1].AsInteger(), 11);
  EXPECT_EQ(rs.rows[1][1].AsInteger(), 12);
  EXPECT_EQ(rs.rows[2][1].AsInteger(), 13);
}

TEST_F(SqlForecastTest, MedianIntervalIsRobustToOneLargeGap) {
  Exec("CREATE TABLE weekly (t INTEGER, v REAL)");
  // Weekly cadence with a 10-week outage: the median step stays 7.
  std::string insert = "INSERT INTO weekly VALUES ";
  int t = 0;
  for (int i = 0; i < 12; ++i) {
    if (i) insert += ", ";
    insert += "(" + std::to_string(t) + ", " + std::to_string(3.0 + i) + ")";
    t += (i == 5) ? 70 : 7;
  }
  Exec(insert);
  auto rs = Q("SELECT * FROM TS_FORECAST(weekly, t, v, model := 'naive', "
              "horizon := 2)");
  // Last training date is 140 (11 gaps: ten 7s and one 70).
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][1].AsInteger(), 147);
  EXPECT_EQ(rs.rows[1][1].AsInteger(), 154);
}

TEST_F(SqlForecastTest, RealDateAxisKeepsFractionalStep) {
  Exec("CREATE TABLE halfhour (t REAL, v REAL)");
  std::string insert = "INSERT INTO halfhour VALUES ";
  for (int i = 0; i < 20; ++i) {
    if (i) insert += ", ";
    insert += "(" + std::to_string(0.5 * i) + ", " +
              std::to_string(10.0 + 0.1 * i) + ")";
  }
  Exec(insert);
  auto rs = Q("SELECT * FROM TS_FORECAST(halfhour, t, v, model := 'drift', "
              "horizon := 2)");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_NEAR(rs.rows[0][1].AsReal(), 10.0, 1e-9);
  EXPECT_NEAR(rs.rows[1][1].AsReal(), 10.5, 1e-9);
}

// ---------------------------------------------------------------------------
// Rejection corpus
// ---------------------------------------------------------------------------

TEST_F(SqlForecastTest, UnknownArgumentNameIsRejected) {
  Status s = Fail("SELECT * FROM TS_FORECAST(sales, t, v, window := 3)");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("unknown argument 'window'"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.message().find("model, horizon, confidence, period"),
            std::string::npos)
      << s.ToString();
}

TEST_F(SqlForecastTest, UnknownModelListsRegisteredMethods) {
  Status s = Fail("SELECT * FROM TS_FORECAST(sales, t, v, "
                  "model := 'prophet9000')");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("unknown model 'prophet9000'"),
            std::string::npos);
  EXPECT_NE(s.message().find("registered methods:"), std::string::npos);
  // The enumeration names real candidates the caller can switch to.
  EXPECT_NE(s.message().find("naive"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("theta"), std::string::npos) << s.ToString();
}

TEST_F(SqlForecastTest, RegistryCreateErrorAlsoListsMethods) {
  auto r = methods::MethodRegistry::Global().Create("nope",
                                                    easytime::Json::Object());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("registered methods:"),
            std::string::npos)
      << r.status().ToString();
}

TEST_F(SqlForecastTest, BadOptionValuesAreRejected) {
  EXPECT_TRUE(Fail("SELECT * FROM TS_FORECAST(sales, t, v, horizon := 0)")
                  .IsInvalidArgument());
  EXPECT_TRUE(Fail("SELECT * FROM TS_FORECAST(sales, t, v, horizon := -3)")
                  .IsInvalidArgument());
  EXPECT_TRUE(
      Fail("SELECT * FROM TS_FORECAST(sales, t, v, confidence := 1.5)")
          .IsInvalidArgument());
  EXPECT_TRUE(
      Fail("SELECT * FROM TS_FORECAST(sales, t, v, confidence := 0.0)")
          .IsInvalidArgument());
  EXPECT_TRUE(Fail("SELECT * FROM TS_FORECAST(sales, t, v, model := 7)")
                  .IsInvalidArgument());
  EXPECT_TRUE(
      Fail("SELECT * FROM TS_FORECAST(sales, t, v, horizon := 5, "
           "horizon := 6)")
          .IsInvalidArgument());
}

TEST_F(SqlForecastTest, NonNumericColumnsAreRejected) {
  Exec("CREATE TABLE labels (t INTEGER, v TEXT)");
  Exec("INSERT INTO labels VALUES (1, 'a'), (2, 'b')");
  Status s = Fail("SELECT * FROM TS_FORECAST(labels, t, v)");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("must be numeric"), std::string::npos);
  Status s2 = Fail("SELECT * FROM TS_FORECAST(labels, v, t)");
  EXPECT_TRUE(s2.IsInvalidArgument()) << s2.ToString();
}

TEST_F(SqlForecastTest, MissingTableAndColumnAreNotFound) {
  EXPECT_TRUE(Fail("SELECT * FROM TS_FORECAST(ghosts, t, v)").IsNotFound());
  Status s = Fail("SELECT * FROM TS_FORECAST(sales, nope, v)");
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
  EXPECT_NE(s.message().find("'nope'"), std::string::npos);
}

TEST_F(SqlForecastTest, WrongArityNamesTheExpectedSignature) {
  Status s = Fail("SELECT * FROM TS_FORECAST(sales, t)");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("table, date_col, value_col"),
            std::string::npos);
}

TEST_F(SqlForecastTest, ParserRejectsPositionalAfterNamedAndJoins) {
  EXPECT_FALSE(
      ParseSql("SELECT * FROM TS_FORECAST(sales, model := 'theta', t, v)")
          .ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM sales JOIN TS_FORECAST(sales, t, v) "
                        "ON 1 = 1")
                   .ok());
  EXPECT_FALSE(
      ParseSql("SELECT * FROM TS_FORECAST(sales, t, v, model := t)").ok());
}

TEST_F(SqlForecastTest, AllNullRowsAreRejected) {
  Exec("CREATE TABLE hollow (t INTEGER, v REAL)");
  Exec("INSERT INTO hollow VALUES (1, NULL), (NULL, 2.0)");
  Status s = Fail("SELECT * FROM TS_FORECAST(hollow, t, v)");
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_NE(s.message().find("no usable"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Interval coverage on synthetic data
// ---------------------------------------------------------------------------

TEST_F(SqlForecastTest, NinetyFivePercentCoverageOnRandomWalks) {
  // 150 independent Gaussian random walks. The naive forecaster's interval
  // model (sigma * sqrt(h)) is exact for this process, so empirical coverage
  // of the 95% band over 150 * 4 = 600 future points concentrates near 0.95.
  constexpr int kGroups = 150;
  constexpr int kTrain = 80;
  constexpr int kHorizon = 4;
  Exec("CREATE TABLE walks (g INTEGER, t INTEGER, v REAL)");
  std::vector<std::vector<double>> futures(kGroups);
  std::string insert = "INSERT INTO walks VALUES ";
  bool first = true;
  for (int g = 0; g < kGroups; ++g) {
    TestRng rng(7000 + static_cast<uint64_t>(g));
    double level = 50.0;
    for (int i = 0; i < kTrain + kHorizon; ++i) {
      level += rng.Normal();
      if (i < kTrain) {
        if (!first) insert += ", ";
        first = false;
        insert += "(" + std::to_string(g) + ", " + std::to_string(i) + ", " +
                  std::to_string(level) + ")";
      } else {
        futures[g].push_back(level);
      }
    }
  }
  Exec(insert);

  auto rs = Q("SELECT * FROM TS_FORECAST_BY(walks, g, t, v, "
              "model := 'naive', horizon := 4, confidence := 0.95)");
  ASSERT_EQ(rs.rows.size(), static_cast<size_t>(kGroups * kHorizon));
  int covered = 0, total = 0;
  for (const Row& row : rs.rows) {
    int g = static_cast<int>(row[0].AsInteger());
    int h = static_cast<int>(row[1].AsInteger());
    double actual = futures[g][static_cast<size_t>(h - 1)];
    ++total;
    if (actual >= row[4].AsReal() && actual <= row[5].AsReal()) ++covered;
  }
  double coverage = static_cast<double>(covered) / total;
  EXPECT_GT(coverage, 0.90) << "coverage " << coverage;
  EXPECT_LT(coverage, 0.99) << "coverage " << coverage;
}

// ---------------------------------------------------------------------------
// TS_FORECAST_BY: grouping, ordering, determinism
// ---------------------------------------------------------------------------

TEST_F(SqlForecastTest, GroupForecastsAreOrderedAndComplete) {
  MakeGroupedTable("regional", 24, 60);
  auto rs = Q("SELECT * FROM TS_FORECAST_BY(regional, region, t, v, "
              "model := 'ses', horizon := 5)");
  ASSERT_EQ(rs.columns.size(), 8u);
  EXPECT_EQ(rs.columns[0], "region");
  ASSERT_EQ(rs.rows.size(), 24u * 5u);
  std::string prev_group;
  for (size_t i = 0; i < rs.rows.size(); ++i) {
    const std::string group = rs.rows[i][0].AsText();
    EXPECT_GE(group, prev_group);  // groups in sorted order
    EXPECT_EQ(rs.rows[i][1].AsInteger(),
              static_cast<int64_t>(i % 5 + 1));  // steps 1..5 per group
    prev_group = group;
  }
}

TEST_F(SqlForecastTest, ParallelFanOutMatchesSequentialReference) {
  // The acceptance bar: results are bit-identical regardless of the thread
  // pool's size. The reference fits each group sequentially through the
  // public Forecaster API; the SQL path fans out on ParallelFor. The CI
  // matrix reruns this suite under EASYTIME_NUM_THREADS=4 and 1.
  constexpr int kGroups = 24;
  constexpr int kLen = 60;
  MakeGroupedTable("fleet", kGroups, kLen);
  const std::string query =
      "SELECT * FROM TS_FORECAST_BY(fleet, region, t, v, model := 'theta', "
      "horizon := 6, confidence := 0.9)";
  auto run1 = Q(query);
  auto run2 = Q(query);
  ASSERT_EQ(run1.rows.size(), static_cast<size_t>(kGroups * 6));
  ASSERT_EQ(run2.rows.size(), run1.rows.size());

  // Two runs agree exactly on every column except the wall-clock timing.
  for (size_t i = 0; i < run1.rows.size(); ++i) {
    for (size_t c = 0; c + 1 < run1.columns.size(); ++c) {
      EXPECT_EQ(run1.rows[i][c].ToString(), run2.rows[i][c].ToString())
          << "row " << i << " col " << run1.columns[c];
    }
  }

  // And both agree bit-for-bit with a sequential single-fit reference.
  for (int g = 0; g < kGroups; ++g) {
    TestRng rng(1000 + static_cast<uint64_t>(g));
    double level = 100.0 + 5.0 * g;
    std::vector<double> train;
    for (int i = 0; i < kLen; ++i) {
      level += rng.Normal();
      // Round-trip through the SQL text the fixture inserted, so the
      // reference trains on exactly the stored values.
      train.push_back(std::stod(std::to_string(level)));
    }
    auto forecaster = methods::MethodRegistry::Global().Create(
        "theta", easytime::Json::Object());
    ASSERT_TRUE(forecaster.ok());
    methods::FitContext ctx;
    ctx.horizon = 6;
    auto fc = (*forecaster)->ForecastWithIntervals(train, ctx, 0.9);
    ASSERT_TRUE(fc.ok()) << fc.status().ToString();
    for (int h = 0; h < 6; ++h) {
      const Row& row = run1.rows[static_cast<size_t>(g * 6 + h)];
      EXPECT_EQ(row[3].AsReal(), fc->point[static_cast<size_t>(h)])
          << "group " << g << " step " << h + 1;
      EXPECT_EQ(row[4].AsReal(), fc->lower[static_cast<size_t>(h)]);
      EXPECT_EQ(row[5].AsReal(), fc->upper[static_cast<size_t>(h)]);
    }
  }
}

TEST_F(SqlForecastTest, NullGroupKeysAreSkipped) {
  Exec("CREATE TABLE sparse (g TEXT, t INTEGER, v REAL)");
  Exec("INSERT INTO sparse VALUES "
       "('a', 1, 1.0), ('a', 2, 2.0), ('a', 3, 3.0), "
       "(NULL, 1, 9.0), (NULL, 2, 9.0), "
       "('b', 1, 4.0), ('b', 2, 5.0), ('b', 3, 6.0)");
  auto rs = Q("SELECT * FROM TS_FORECAST_BY(sparse, g, t, v, "
              "model := 'naive', horizon := 2)");
  ASSERT_EQ(rs.rows.size(), 4u);  // two groups, NULL rows dropped
  EXPECT_EQ(rs.rows[0][0].AsText(), "a");
  EXPECT_EQ(rs.rows[2][0].AsText(), "b");
}

// ---------------------------------------------------------------------------
// Deadlines and fault injection
// ---------------------------------------------------------------------------

TEST_F(SqlForecastTest, ExpiredDeadlineFailsBeforeAnyFit) {
  Status s = Fail("SELECT * FROM TS_FORECAST(sales, t, v)",
                  easytime::Deadline::AfterMillis(-1.0));
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
}

TEST_F(SqlForecastTest, DeadlineInterruptsGroupFanOut) {
  MakeGroupedTable("slowfleet", 24, 40);
  // Every group fit sleeps 20ms under the injected fault; a 30ms deadline
  // must cut the fan-out short rather than hang for the full ~half second.
  FaultSpec spec;
  spec.kind = FaultKind::kDelay;
  spec.delay_ms = 20.0;
  ASSERT_TRUE(FaultRegistry::Global().Arm("sql.forecast", spec).ok());
  Status s = Fail("SELECT * FROM TS_FORECAST_BY(slowfleet, region, t, v, "
                  "model := 'naive', horizon := 2)",
                  easytime::Deadline::AfterMillis(30.0));
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  EXPECT_NE(s.message().find("group fits"), std::string::npos)
      << s.ToString();
}

TEST_F(SqlForecastTest, InjectedFaultSurfacesAsQueryError) {
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.code = StatusCode::kUnavailable;
  ASSERT_TRUE(FaultRegistry::Global().Arm("sql.forecast", spec).ok());
  Status s = Fail("SELECT * FROM TS_FORECAST(sales, t, v)");
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  FaultRegistry::Global().DisarmAll();
  // Disarmed, the same query succeeds again.
  EXPECT_EQ(Q("SELECT * FROM TS_FORECAST(sales, t, v)").rows.size(), 12u);
}

}  // namespace
}  // namespace easytime::sql
