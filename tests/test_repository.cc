#include "tsdata/repository.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace easytime::tsdata {
namespace {

Dataset MakeDs(const std::string& name, Domain domain, size_t channels = 1) {
  Dataset ds(name);
  ds.set_domain(domain);
  for (size_t c = 0; c < channels; ++c) {
    (void)ds.AddChannel(Series(name + "_ch" + std::to_string(c),
                               {1.0, 2.0, 3.0, 4.0}));
  }
  return ds;
}

TEST(Repository, AddAndGet) {
  Repository repo;
  ASSERT_TRUE(repo.Add(MakeDs("a", Domain::kTraffic)).ok());
  EXPECT_TRUE(repo.Contains("a"));
  EXPECT_EQ(repo.size(), 1u);
  auto ds = repo.Get("a");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ((*ds)->name(), "a");
  EXPECT_FALSE(repo.Get("missing").ok());
}

TEST(Repository, RejectsDuplicatesAndInvalid) {
  Repository repo;
  ASSERT_TRUE(repo.Add(MakeDs("a", Domain::kWeb)).ok());
  EXPECT_FALSE(repo.Add(MakeDs("a", Domain::kWeb)).ok());
  EXPECT_FALSE(repo.Add(Dataset("")).ok());
  EXPECT_FALSE(repo.Add(Dataset("empty")).ok());  // no channels
}

TEST(Repository, FiltersByDomainAndArity) {
  Repository repo;
  (void)repo.Add(MakeDs("t1", Domain::kTraffic));
  (void)repo.Add(MakeDs("t2", Domain::kTraffic, 3));
  (void)repo.Add(MakeDs("w1", Domain::kWeb));
  EXPECT_EQ(repo.ByDomain(Domain::kTraffic).size(), 2u);
  EXPECT_EQ(repo.ByDomain(Domain::kHealth).size(), 0u);
  EXPECT_EQ(repo.ByArity(true).size(), 1u);
  EXPECT_EQ(repo.ByArity(false).size(), 2u);
  EXPECT_EQ(repo.All().size(), 3u);
}

TEST(Repository, PreservesRegistrationOrder) {
  Repository repo;
  (void)repo.Add(MakeDs("z", Domain::kWeb));
  (void)repo.Add(MakeDs("a", Domain::kWeb));
  EXPECT_EQ(repo.names(), (std::vector<std::string>{"z", "a"}));
}

TEST(Repository, AddSuitePopulates) {
  Repository repo;
  SuiteSpec spec;
  spec.univariate_per_domain = 1;
  spec.multivariate_total = 2;
  ASSERT_TRUE(repo.AddSuite(spec).ok());
  EXPECT_EQ(repo.size(), static_cast<size_t>(kNumDomains) + 2u);
}

TEST(Repository, LoadDirectoryReadsCsvFiles) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "easytime_repo_test";
  fs::create_directories(dir);
  {
    std::ofstream f(dir / "one.csv");
    f << "v\n1\n2\n3\n";
  }
  {
    std::ofstream f(dir / "two.csv");
    f << "a,b\n1,2\n3,4\n";
  }
  {
    std::ofstream f(dir / "ignored.txt");
    f << "not a csv";
  }
  Repository repo;
  ASSERT_TRUE(repo.LoadDirectory(dir.string()).ok());
  EXPECT_EQ(repo.size(), 2u);
  EXPECT_TRUE(repo.Contains("one"));
  EXPECT_TRUE(repo.Contains("two"));
  EXPECT_EQ((*repo.Get("two"))->num_channels(), 2u);
  fs::remove_all(dir);
}

TEST(Repository, LoadDirectoryMissingIsError) {
  Repository repo;
  EXPECT_FALSE(repo.LoadDirectory("/definitely/not/a/dir").ok());
}

}  // namespace
}  // namespace easytime::tsdata
