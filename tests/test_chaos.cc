// Chaos tests: the serving stack under injected faults. Eight concurrent
// clients hammer a server whose fault points fire at ~10%; the contract is
// that every single request still reaches a terminal state — a correct
// result or a well-formed error envelope with the right id — with nothing
// wrong, dropped, or deadlocked. A separate scenario simulates a killed
// evaluation job and asserts the checkpoint/resume path skips completed
// pairs on restart.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/overload.h"
#include "serve/client.h"
#include "serve/job_manager.h"
#include "serve/request.h"
#include "serve/server.h"
#include "serve/tcp_server.h"

namespace easytime::serve {
namespace {

using namespace std::chrono_literals;

core::EasyTime::Options MakeOptions() {
  core::EasyTime::Options opt;
  opt.suite.univariate_per_domain = 1;
  opt.suite.multivariate_total = 1;
  opt.suite.min_length = 180;
  opt.suite.max_length = 220;
  opt.seed_eval.horizon = 12;
  opt.seed_eval.metrics = {"mae", "rmse"};
  opt.seed_methods = {"naive", "seasonal_naive", "theta", "ses", "drift"};
  opt.ensemble.top_k = 2;
  opt.ensemble.ts2vec.epochs = 3;
  opt.ensemble.ts2vec.repr_dim = 8;
  opt.ensemble.ts2vec.hidden_dim = 10;
  opt.ensemble.ts2vec.depth = 2;
  opt.ensemble.classifier.epochs = 80;
  return opt;
}

core::EasyTime* MakeSystem() {
  auto system = core::EasyTime::Create(MakeOptions());
  EXPECT_TRUE(system.ok()) << system.status().ToString();
  return system.ok() ? system->release() : nullptr;
}

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { system_ = MakeSystem(); }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  void SetUp() override {
    ASSERT_NE(system_, nullptr);
    FaultRegistry::Global().DisarmAll();
    FaultRegistry::Global().Reseed(2026);
  }
  void TearDown() override { FaultRegistry::Global().DisarmAll(); }
  static core::EasyTime* system_;
};

core::EasyTime* ChaosTest::system_ = nullptr;

// The acceptance scenario: 8 concurrent clients against a server whose
// dispatch path fails Unavailable ~10% of the time and whose execute path
// stalls ~10% of the time. Every request must reach a terminal state: a
// correct result, or an error envelope carrying the request's own id.
TEST_F(ChaosTest, EveryRequestReachesTerminalStatusUnderFaults) {
  ASSERT_TRUE(FaultRegistry::Global()
                  .ArmFromSpec("serve.dispatch:unavailable:0.1,"
                               "serve.execute:delay:0.1:5")
                  .ok());

  ForecastServer::Options opt;
  opt.num_worker_threads = 4;
  opt.fast_queue_capacity = 1024;
  opt.cache_capacity = 0;  // every request exercises the faulted path
  ForecastServer server(system_, opt);
  server.Start();

  const std::vector<std::string> datasets = system_->repository()->names();
  const std::vector<std::string> methods = {"naive", "drift", "ses", "theta"};
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 25;

  std::atomic<int> ok_responses{0};
  std::atomic<int> error_responses{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const int64_t id = c * 1000 + r;
        Json req = Json::Object();
        req.Set("id", id);
        req.Set("endpoint", "forecast");
        Json params = Json::Object();
        params.Set("dataset", datasets[(c + r) % datasets.size()]);
        params.Set("method", methods[r % methods.size()]);
        params.Set("horizon", static_cast<int64_t>(4));
        req.Set("params", std::move(params));

        std::string line = server.HandleLine(req.Dump());
        auto resp = Json::Parse(line);
        if (!resp.ok() || resp->GetInt("id", -1) != id) {
          wrong.fetch_add(1);
          continue;
        }
        if (resp->GetBool("ok", false)) {
          // A correct result: the requested number of finite values.
          if (resp->Get("result").Get("values").size() == 4) {
            ok_responses.fetch_add(1);
          } else {
            wrong.fetch_add(1);
          }
        } else if (resp->Has("error") &&
                   !resp->Get("error").GetString("code", "").empty()) {
          error_responses.fetch_add(1);
        } else {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  server.Stop();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(ok_responses.load() + error_responses.load(),
            kClients * kRequestsPerClient);
  // With a 10% dispatch fault over 200 requests, both outcomes must occur.
  EXPECT_GT(ok_responses.load(), 0);
  EXPECT_GT(error_responses.load(), 0) << "faults were armed but never fired";
}

// Knowledge chaos: the same terminal-status contract for the SQL/QA
// endpoints, with faults armed on the endpoint gates (serve.ask, serve.sql)
// AND on the SELECT core both funnel through (sql.execute). Every request
// still gets a correct result or a well-formed error envelope with its own
// id — a knowledge-path fault must never corrupt a response or take down a
// neighbouring request.
TEST_F(ChaosTest, SqlAndAskRequestsStayTerminalUnderKnowledgeFaults) {
  ASSERT_TRUE(FaultRegistry::Global()
                  .ArmFromSpec("serve.ask:unavailable:0.2,"
                               "serve.sql:unavailable:0.2,"
                               "sql.execute:error:0.2,"
                               "serve.execute:delay:0.1:5")
                  .ok());

  ForecastServer::Options opt;
  opt.num_worker_threads = 4;
  opt.cache_capacity = 0;  // every request exercises the faulted path
  ForecastServer server(system_, opt);
  server.Start();

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 30;
  std::atomic<int> ok_responses{0};
  std::atomic<int> error_responses{0};
  std::atomic<int> wrong{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const int64_t id = c * 1000 + r;
        Json req = Json::Object();
        req.Set("id", id);
        Json params = Json::Object();
        if (r % 2 == 0) {
          req.Set("endpoint", "sql");
          params.Set("query", "SELECT method FROM results LIMIT 1");
        } else {
          req.Set("endpoint", "ask");
          params.Set("question", "What is the average mae of theta?");
        }
        req.Set("params", std::move(params));

        std::string line = server.HandleLine(req.Dump());
        auto resp = Json::Parse(line);
        if (!resp.ok() || resp->GetInt("id", -1) != id) {
          wrong.fetch_add(1);
          continue;
        }
        if (resp->GetBool("ok", false)) {
          ok_responses.fetch_add(1);
        } else if (resp->Has("error") &&
                   !resp->Get("error").GetString("code", "").empty()) {
          error_responses.fetch_add(1);
        } else {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  server.Stop();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(ok_responses.load() + error_responses.load(),
            kClients * kRequestsPerClient);
  // ~48% of requests hit at least one armed gate over 180 trials: both
  // outcomes are effectively certain.
  EXPECT_GT(ok_responses.load(), 0);
  EXPECT_GT(error_responses.load(), 0) << "faults were armed but never fired";
  EXPECT_GT(FaultRegistry::Global().PointStats("sql.execute").triggers, 0u)
      << "the knowledge query core was never exercised";
}

// TCP chaos: connections are torn down at random by serve.tcp.* faults; the
// retrying TcpClient must ride every request through to a correct response.
TEST_F(ChaosTest, TcpClientsRetryThroughConnectionFaults) {
  ASSERT_TRUE(
      FaultRegistry::Global().ArmFromSpec("serve.tcp.read:error:0.1").ok());

  ForecastServer::Options opt;
  opt.num_worker_threads = 4;
  opt.fast_queue_capacity = 1024;
  ForecastServer server(system_, opt);
  server.Start();
  TcpServer tcp(&server);
  ASSERT_TRUE(tcp.Start().ok());

  const std::vector<std::string> datasets = system_->repository()->names();
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 15;

  std::atomic<int> correct{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      RetryPolicy retry;
      retry.max_attempts = 8;  // 0.1^8: retries make loss astronomically rare
      retry.base_delay_ms = 1.0;
      retry.seed = 100 + static_cast<uint64_t>(c);
      TcpClient client(tcp.port(), retry);
      for (int r = 0; r < kRequestsPerClient; ++r) {
        Json params = Json::Object();
        params.Set("dataset", datasets[(c + r) % datasets.size()]);
        params.Set("method", "naive");
        params.Set("horizon", static_cast<int64_t>(3));
        auto result = client.Call("forecast", params);
        if (result.ok() && result->Get("values").size() == 3) {
          correct.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  tcp.Stop();
  server.Stop();

  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(correct.load(), kClients * kRequestsPerClient);
  // The fault genuinely dropped connections; retries absorbed all of them.
  EXPECT_GT(FaultRegistry::Global().PointStats("serve.tcp.read").triggers, 0u);
}

// SIGKILL simulation: an evaluation job is cancelled mid-run and its manager
// destroyed — the moral equivalent of the process dying. A fresh manager
// pointed at the same checkpoint directory and resubmitted the same job_key
// must splice in the completed pairs instead of re-evaluating them.
TEST_F(ChaosTest, KilledJobResumesFromCheckpointWithoutReevaluating) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "easytime_chaos_ckpt")
          .string();
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));

  auto config = Json::Parse(R"({
    "methods": ["naive", "drift", "ses", "theta"],
    "evaluation": {"strategy": "fixed", "horizon": 8, "metrics": ["mae"]},
    "num_threads": 1,
    "job_key": "chaos-resume"
  })");
  ASSERT_TRUE(config.ok());

  JobManager::Options jm_opt;
  jm_opt.checkpoint_dir = dir;
  std::string ckpt_path;

  // Phase 1: run until a few pairs are checkpointed, then cancel and destroy
  // the manager. A delay fault slows each pair so the cancel lands mid-run.
  {
    FaultSpec slow;
    slow.kind = FaultKind::kDelay;
    slow.delay_ms = 30.0;
    ASSERT_TRUE(FaultRegistry::Global().Arm("pipeline.pair", slow).ok());

    JobManager manager(system_, jm_opt);
    ckpt_path = manager.CheckpointPath("chaos-resume");
    ASSERT_FALSE(ckpt_path.empty());
    manager.Start();
    auto id = manager.Submit(*config);
    ASSERT_TRUE(id.ok()) << id.status().ToString();

    // Wait until at least 2 pairs completed, then pull the plug.
    for (int i = 0; i < 2000; ++i) {
      auto s = manager.StatusJson(*id);
      ASSERT_TRUE(s.ok());
      if (s->GetInt("done", 0) >= 2) break;
      std::this_thread::sleep_for(2ms);
    }
    auto cancelled = manager.Cancel(*id);
    ASSERT_TRUE(cancelled.ok());
    // Manager destructor == Shutdown: the worker stops at the cancellation
    // point, mirroring a killed process whose checkpoint survives on disk.
  }
  FaultRegistry::Global().DisarmAll();

  ASSERT_TRUE(std::filesystem::exists(ckpt_path))
      << "checkpoint must survive a cancelled (killed) job";

  // Phase 2: a fresh manager on the same directory resumes the same job_key.
  {
    JobManager manager(system_, jm_opt);
    manager.Start();
    auto id = manager.Submit(*config);
    ASSERT_TRUE(id.ok()) << id.status().ToString();

    std::string state = "queued";
    Json status;
    for (int i = 0; i < 4000 && (state == "queued" || state == "running");
         ++i) {
      auto s = manager.StatusJson(*id);
      ASSERT_TRUE(s.ok());
      status = *s;
      state = status.GetString("state", "");
      std::this_thread::sleep_for(2ms);
    }
    ASSERT_EQ(state, "done") << status.Dump();

    const Json& summary = status.Get("result");
    EXPECT_GT(summary.GetInt("resumed", 0), 0)
        << "restart must splice checkpointed pairs, not redo them";
    EXPECT_EQ(summary.GetInt("ok", -1), summary.GetInt("records", -2))
        << "resumed run must still produce a complete, all-ok report";
    EXPECT_GT(manager.stats().resumed_records, 0u);

    // A completed job retires its checkpoint.
    EXPECT_FALSE(std::filesystem::exists(ckpt_path));
  }
  std::filesystem::remove_all(dir);
}

// The persistence acceptance scenario (DESIGN.md §9): a server restarted
// against a populated knowledge store must answer recommend/sql identically
// to the pre-crash server — without re-running the seeding evaluation — and
// results appended after the restart must survive the next restart via the
// WAL tail.
TEST_F(ChaosTest, RestartedServerAnswersIdenticallyFromThePersistedStore) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "easytime_chaos_store")
          .string();
  std::filesystem::remove_all(dir);

  core::EasyTime::Options opt = MakeOptions();
  opt.store_dir = dir;

  const std::string sql_query =
      "SELECT dataset, method, value FROM results "
      "WHERE metric = 'mae' ORDER BY dataset, method";
  std::vector<std::string> dataset_names;
  std::map<std::string, std::string> recommend_before;
  std::string sql_before;
  size_t results_before = 0;

  // Life 1: cold start seeds the knowledge base and checkpoints it.
  {
    auto sys = core::EasyTime::Create(opt);
    ASSERT_TRUE(sys.ok()) << sys.status().ToString();
    ASSERT_FALSE((*sys)->restored_from_store());
    results_before = (*sys)->knowledge().NumResults();
    ASSERT_GT(results_before, 0u);
    for (const auto& d : (*sys)->knowledge().datasets()) {
      dataset_names.push_back(d.name);
    }

    ForecastServer server(sys->get());
    server.Start();
    for (const auto& name : dataset_names) {
      Json params = Json::Object();
      params.Set("dataset", name);
      auto r = server.Call("recommend", params);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      recommend_before[name] = r->Dump();
    }
    Json params = Json::Object();
    params.Set("query", sql_query);
    auto r = server.Call("sql", params);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // Compare the result rows, not the envelope: the response also carries
    // the query's wall-clock "seconds", which legitimately differs per run.
    sql_before = r->Get("rows").Dump() + r->GetString("answer", "");
    server.Stop();
  }

  // Life 2: the restart. Opens warm, answers must match bit for bit, the
  // warmed cache serves the first recommend round, and one extra evaluation
  // lands in the WAL tail.
  size_t results_after_extra = 0;
  {
    auto sys = core::EasyTime::Create(opt);
    ASSERT_TRUE(sys.ok()) << sys.status().ToString();
    ASSERT_TRUE((*sys)->restored_from_store())
        << "a populated store must skip the seeding evaluation";
    ASSERT_EQ((*sys)->knowledge().NumResults(), results_before);

    ForecastServer server(sys->get());
    server.Start();
    for (const auto& name : dataset_names) {
      Json params = Json::Object();
      params.Set("dataset", name);
      auto r = server.Call("recommend", params);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r->Dump(), recommend_before[name])
          << "restarted recommend must match for " << name;
    }
    const Json stats = server.StatsJson();
    EXPECT_GE(stats.Get("endpoints").Get("recommend").GetInt("cache_hits", 0),
              static_cast<int64_t>(dataset_names.size()))
        << "warm start must serve the first recommend round from the cache";
    Json params = Json::Object();
    params.Set("query", sql_query);
    auto r = server.Call("sql", params);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->Get("rows").Dump() + r->GetString("answer", ""), sql_before)
        << "metric doubles must round-trip the store bit-exactly";
    server.Stop();

    auto config = Json::Parse(R"({
      "methods": ["drift"],
      "evaluation": {"strategy": "fixed", "horizon": 8, "metrics": ["mae"]},
      "num_threads": 1
    })");
    ASSERT_TRUE(config.ok());
    auto report = (*sys)->OneClickEvaluate(*config);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    results_after_extra = (*sys)->knowledge().NumResults();
    ASSERT_GT(results_after_extra, results_before);
  }

  // Life 3: the post-restart evaluation survived via the WAL tail.
  {
    auto sys = core::EasyTime::Create(opt);
    ASSERT_TRUE(sys.ok()) << sys.status().ToString();
    EXPECT_TRUE((*sys)->restored_from_store());
    EXPECT_EQ((*sys)->knowledge().NumResults(), results_after_extra)
        << "records appended after the snapshot must replay from the WAL";
  }
  std::filesystem::remove_all(dir);
}

// QoS chaos: injected faults, tight per-request deadlines, and a 4x
// admission overload all at once. The terminal-status contract still holds
// for every request, heavy fits under a 50ms budget never sneak through as
// successes, and the server's QoS accounting stays coherent.
TEST_F(ChaosTest, QosOverloadDeadlinesAndFaultsStayTerminal) {
  ASSERT_TRUE(FaultRegistry::Global()
                  .ArmFromSpec("serve.dispatch:unavailable:0.05,"
                               "serve.execute:delay:0.1:5")
                  .ok());

  ForecastServer::Options opt;
  opt.num_worker_threads = 2;
  opt.fast_queue_capacity = 8;  // 8 clients oversubscribe this heavily
  opt.enable_batching = false;
  opt.cache_capacity = 0;
  ForecastServer server(system_, opt);
  server.Start();
  const std::string dataset = system_->repository()->names()[0];

  // A series long enough that a 400-tree gbdt fit cannot finish in 50ms.
  Json heavy_values = Json::Array();
  {
    double level = 100.0;
    for (int i = 0; i < 4000; ++i) {
      level += ((i * 2654435761u) % 1000) / 1000.0 - 0.5;
      heavy_values.Append(level);
    }
  }

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 12;
  std::atomic<int> ok_responses{0};
  std::atomic<int> error_responses{0};
  std::atomic<int> heavy_ok{0};
  std::atomic<int> wrong{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const int64_t id = c * 1000 + r;
        Json req = Json::Object();
        req.Set("id", id);
        Json params = Json::Object();
        const bool heavy = r % 4 == 3;
        switch (r % 4) {
          case 0:  // plain forecast, no deadline
            req.Set("endpoint", "forecast");
            params.Set("dataset", dataset);
            params.Set("method", "naive");
            params.Set("horizon", static_cast<int64_t>(4));
            break;
          case 1: {  // slow ask: drives the overload + brownout
            req.Set("endpoint", "ask");
            params.Set("question", "What is the average mae of theta?");
            params.Set("sleep_ms", 40.0);
            break;
          }
          case 2:  // tight queue deadline behind the ask backlog
            req.Set("endpoint", "forecast");
            params.Set("dataset", dataset);
            params.Set("method", "theta");
            params.Set("horizon", static_cast<int64_t>(4));
            params.Set("deadline_ms", 30.0);
            break;
          default: {  // heavy fit under a 50ms budget: must abort mid-fit
            req.Set("endpoint", "forecast");
            params.Set("values", heavy_values);
            Json cfg = Json::Object();
            cfg.Set("num_trees", static_cast<int64_t>(400));
            cfg.Set("max_depth", static_cast<int64_t>(6));
            params.Set("config", std::move(cfg));
            params.Set("method", "gbdt");
            params.Set("horizon", static_cast<int64_t>(4));
            params.Set("deadline_ms", 50.0);
            break;
          }
        }
        req.Set("params", std::move(params));

        std::string line = server.HandleLine(req.Dump());
        auto resp = Json::Parse(line);
        if (!resp.ok() || resp->GetInt("id", -1) != id) {
          wrong.fetch_add(1);
          continue;
        }
        if (resp->GetBool("ok", false)) {
          ok_responses.fetch_add(1);
          if (heavy) heavy_ok.fetch_add(1);
        } else if (resp->Has("error") &&
                   !resp->Get("error").GetString("code", "").empty()) {
          error_responses.fetch_add(1);
        } else {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(ok_responses.load() + error_responses.load(),
            kClients * kRequestsPerClient);
  EXPECT_GT(ok_responses.load(), 0);
  EXPECT_GT(error_responses.load(), 0)
      << "deadlines and overload must produce some errors";
  EXPECT_EQ(heavy_ok.load(), 0)
      << "a 50ms-budget gbdt fit on 4000 points must never succeed";

  Json stats = server.StatsJson();
  EXPECT_GE(stats.GetInt("deadline_exceeded", 0), 1);
  EXPECT_TRUE(stats.Has("admission"));
  server.Stop();
  EXPECT_FALSE(easytime::GlobalOverload().brownout())
      << "Stop() must clear the global brownout flag";
}

}  // namespace
}  // namespace easytime::serve
