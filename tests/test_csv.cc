#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace easytime {
namespace {

TEST(CsvParse, BasicWithHeader) {
  auto doc = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(doc->rows.size(), 2u);
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(doc->rows[1], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(CsvParse, NoHeaderMode) {
  auto doc = ParseCsv("1,2\n3,4\n", /*has_header=*/false);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->header.empty());
  EXPECT_EQ(doc->rows.size(), 2u);
}

TEST(CsvParse, QuotedFieldsWithCommasAndNewlines) {
  auto doc = ParseCsv("name,desc\nx,\"a, b\"\ny,\"line1\nline2\"\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][1], "a, b");
  EXPECT_EQ(doc->rows[1][1], "line1\nline2");
}

TEST(CsvParse, EscapedQuotes) {
  auto doc = ParseCsv("v\n\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0][0], "he said \"hi\"");
}

TEST(CsvParse, CrLfLineEndings) {
  auto doc = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->rows[0], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvParse, MissingFinalNewline) {
  auto doc = ParseCsv("a\n1");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0][0], "1");
}

TEST(CsvParse, UnterminatedQuoteIsError) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").ok());
}

TEST(CsvParse, EmptyDocumentNeedsHeader) {
  EXPECT_FALSE(ParseCsv("").ok());
  EXPECT_TRUE(ParseCsv("", /*has_header=*/false).ok());
}

TEST(CsvWrite, RoundTripsWithQuoting) {
  CsvDocument doc;
  doc.header = {"name", "note"};
  doc.rows = {{"x", "has, comma"}, {"y", "has \"quote\""}, {"z", "plain"}};
  std::string text = WriteCsv(doc);
  auto parsed = ParseCsv(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, doc.header);
  EXPECT_EQ(parsed->rows, doc.rows);
}

TEST(CsvColumnIndex, FindsByName) {
  CsvDocument doc;
  doc.header = {"a", "b"};
  EXPECT_EQ(doc.ColumnIndex("b"), 1);
  EXPECT_EQ(doc.ColumnIndex("missing"), -1);
}

TEST(CsvFile, WriteAndReadBack) {
  std::string path =
      (std::filesystem::temp_directory_path() / "easytime_csv_test.csv")
          .string();
  CsvDocument doc;
  doc.header = {"v"};
  doc.rows = {{"1.5"}, {"2.5"}};
  ASSERT_TRUE(WriteCsvFile(path, doc).ok());
  auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows, doc.rows);
  std::remove(path.c_str());
}

TEST(CsvFile, MissingFileIsIOError) {
  auto r = ReadCsvFile("/nonexistent/definitely/missing.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace easytime
