#include <gtest/gtest.h>

#include <cmath>

#include "methods/arima.h"
#include "methods/baselines.h"
#include "methods/ets.h"
#include "methods/exponential.h"
#include "methods/theta.h"
#include "test_util.h"

namespace easytime::methods {
namespace {

using ::easytime::testing::MakeLinearSeries;
using ::easytime::testing::MakeSeasonalSeries;

TEST(Naive, RepeatsLastValue) {
  NaiveForecaster f;
  ASSERT_TRUE(f.Fit({1, 2, 3, 7}, {}).ok());
  auto fc = f.Forecast(3).ValueOrDie();
  EXPECT_EQ(fc, (std::vector<double>{7, 7, 7}));
}

TEST(Naive, ForecastBeforeFitFails) {
  NaiveForecaster f;
  EXPECT_FALSE(f.Forecast(2).ok());
  EXPECT_FALSE(f.Fit({}, {}).ok());
}

TEST(Naive, ForecastFromUsesHistory) {
  NaiveForecaster f;
  ASSERT_TRUE(f.Fit({1, 2}, {}).ok());
  auto fc = f.ForecastFrom({5, 9}, 2).ValueOrDie();
  EXPECT_EQ(fc, (std::vector<double>{9, 9}));
}

TEST(SeasonalNaive, RepeatsCycle) {
  SeasonalNaiveForecaster f(3);
  ASSERT_TRUE(f.Fit({1, 2, 3, 4, 5, 6}, {}).ok());
  auto fc = f.Forecast(5).ValueOrDie();
  EXPECT_EQ(fc, (std::vector<double>{4, 5, 6, 4, 5}));
}

TEST(SeasonalNaive, UsesContextPeriodHint) {
  SeasonalNaiveForecaster f;  // period from ctx
  FitContext ctx;
  ctx.period_hint = 2;
  ASSERT_TRUE(f.Fit({10, 20, 30, 40}, ctx).ok());
  auto fc = f.Forecast(3).ValueOrDie();
  EXPECT_EQ(fc, (std::vector<double>{30, 40, 30}));
}

TEST(SeasonalNaive, FallsBackToNaiveWithoutPeriod) {
  SeasonalNaiveForecaster f;
  ASSERT_TRUE(f.Fit({1, 2, 9}, {}).ok());
  auto fc = f.Forecast(2).ValueOrDie();
  EXPECT_EQ(fc, (std::vector<double>{9, 9}));
}

TEST(Drift, ExtrapolatesLine) {
  DriftForecaster f;
  ASSERT_TRUE(f.Fit({0, 2, 4, 6}, {}).ok());  // slope 2
  auto fc = f.Forecast(3).ValueOrDie();
  EXPECT_NEAR(fc[0], 8.0, 1e-9);
  EXPECT_NEAR(fc[2], 12.0, 1e-9);
}

TEST(Mean, ForecastsHistoricalMean) {
  MeanForecaster f;
  ASSERT_TRUE(f.Fit({2, 4, 6}, {}).ok());
  EXPECT_NEAR(f.Forecast(2).ValueOrDie()[1], 4.0, 1e-9);
}

TEST(WindowAverage, UsesTrailingWindow) {
  WindowAverageForecaster f(2);
  ASSERT_TRUE(f.Fit({100, 100, 2, 4}, {}).ok());
  EXPECT_NEAR(f.Forecast(1).ValueOrDie()[0], 3.0, 1e-9);
}

TEST(Ses, FlatForecastTracksLevel) {
  SesForecaster f(0.9);
  ASSERT_TRUE(f.Fit({10, 10, 10, 20}, {}).ok());
  auto fc = f.Forecast(2).ValueOrDie();
  EXPECT_NEAR(fc[0], fc[1], 1e-12);
  EXPECT_GT(fc[0], 15.0);  // pulled strongly toward the last value
}

TEST(Ses, OptimizedAlphaBeatsBadFixedAlpha) {
  // Noisy constant level: small alpha is optimal.
  Rng rng(1);
  std::vector<double> v(200);
  for (auto& x : v) x = 10.0 + rng.Gaussian(0.0, 1.0);
  SesForecaster opt;
  SesForecaster stiff(0.99);
  ASSERT_TRUE(opt.Fit(v, {}).ok());
  ASSERT_TRUE(stiff.Fit(v, {}).ok());
  EXPECT_LE(opt.sse(), stiff.sse() + 1e-9);
  EXPECT_LT(opt.alpha(), 0.5);
}

TEST(Holt, TracksLinearTrend) {
  HoltForecaster f;
  auto v = MakeLinearSeries(60, 5.0, 2.0);
  ASSERT_TRUE(f.Fit(v, {}).ok());
  auto fc = f.Forecast(5).ValueOrDie();
  // Next values continue the line: 5 + 2*60 = 125 ...
  EXPECT_NEAR(fc[0], 125.0, 1.0);
  EXPECT_NEAR(fc[4], 133.0, 1.5);
}

TEST(HoltDamped, FlattensEventually) {
  HoltForecaster damped(/*damped=*/true);
  auto v = MakeLinearSeries(60, 0.0, 1.0);
  ASSERT_TRUE(damped.Fit(v, {}).ok());
  auto fc = damped.Forecast(200).ValueOrDie();
  double late_growth = fc[199] - fc[198];
  double early_growth = fc[1] - fc[0];
  EXPECT_LT(late_growth, early_growth);  // damping shrinks increments
}

TEST(HoltWinters, RecoversSeasonalPattern) {
  auto v = MakeSeasonalSeries(96, 12, 5.0, 0.1, 0.1);
  HoltWintersForecaster f(HoltWintersForecaster::Seasonal::kAdditive);
  FitContext ctx;
  ctx.period_hint = 12;
  ASSERT_TRUE(f.Fit(v, ctx).ok());
  auto fc = f.Forecast(12).ValueOrDie();
  // Compare forecast shape against the known generator continuation.
  auto full = MakeSeasonalSeries(108, 12, 5.0, 0.1, 0.1);
  double err = 0.0;
  for (size_t h = 0; h < 12; ++h) err += std::fabs(fc[h] - full[96 + h]);
  EXPECT_LT(err / 12.0, 1.5);
}

TEST(HoltWinters, FallsBackWithoutEnoughData) {
  HoltWintersForecaster f(HoltWintersForecaster::Seasonal::kAdditive);
  FitContext ctx;
  ctx.period_hint = 50;
  ASSERT_TRUE(f.Fit(MakeLinearSeries(30, 1.0, 1.0), ctx).ok());
  EXPECT_TRUE(f.Forecast(5).ok());  // Holt fallback
}

TEST(HoltWintersMultiplicative, RequiresPositiveData) {
  std::vector<double> v = MakeSeasonalSeries(96, 12, 5.0);
  for (auto& x : v) x -= 20.0;  // force negatives
  HoltWintersForecaster f(HoltWintersForecaster::Seasonal::kMultiplicative);
  FitContext ctx;
  ctx.period_hint = 12;
  ASSERT_TRUE(f.Fit(v, ctx).ok());  // falls back instead of exploding
  auto fc = f.Forecast(6);
  ASSERT_TRUE(fc.ok());
  for (double x : *fc) EXPECT_TRUE(std::isfinite(x));
}

TEST(Theta, BeatsNaiveOnTrendingSeries) {
  auto v = MakeSeasonalSeries(120, 12, 2.0, 0.5, 0.2);
  std::vector<double> train(v.begin(), v.end() - 12);
  std::vector<double> actual(v.end() - 12, v.end());

  ThetaForecaster theta;
  NaiveForecaster naive;
  FitContext ctx;
  ctx.period_hint = 12;
  ASSERT_TRUE(theta.Fit(train, ctx).ok());
  ASSERT_TRUE(naive.Fit(train, ctx).ok());
  auto tf = theta.Forecast(12).ValueOrDie();
  auto nf = naive.Forecast(12).ValueOrDie();
  double te = 0.0, ne = 0.0;
  for (size_t h = 0; h < 12; ++h) {
    te += std::fabs(tf[h] - actual[h]);
    ne += std::fabs(nf[h] - actual[h]);
  }
  EXPECT_LT(te, ne);
}

TEST(Theta, RejectsTooShortSeries) {
  ThetaForecaster f;
  EXPECT_FALSE(f.Fit({1, 2, 3}, {}).ok());
}

TEST(Ar, RecoversCoefficients) {
  // AR(2): y_t = 0.6 y_{t-1} - 0.3 y_{t-2} + eps.
  Rng rng(13);
  std::vector<double> v(600, 0.0);
  for (size_t t = 2; t < v.size(); ++t) {
    v[t] = 0.6 * v[t - 1] - 0.3 * v[t - 2] + rng.Gaussian(0.0, 0.5);
  }
  ArForecaster f(2);
  ASSERT_TRUE(f.Fit(v, {}).ok());
  ASSERT_EQ(f.order(), 2u);
  EXPECT_NEAR(f.coefficients()[0], 0.6, 0.1);
  EXPECT_NEAR(f.coefficients()[1], -0.3, 0.1);
}

TEST(Ar, AicSelectsReasonableOrder) {
  Rng rng(17);
  std::vector<double> v(400, 0.0);
  for (size_t t = 1; t < v.size(); ++t) {
    v[t] = 0.8 * v[t - 1] + rng.Gaussian(0.0, 0.3);
  }
  ArForecaster f;  // auto order
  ASSERT_TRUE(f.Fit(v, {}).ok());
  EXPECT_GE(f.order(), 1u);
  EXPECT_LE(f.order(), 4u);
}

TEST(Ar, ForecastDecaysTowardMean) {
  Rng rng(19);
  std::vector<double> v(300, 0.0);
  for (size_t t = 1; t < v.size(); ++t) {
    v[t] = 0.7 * v[t - 1] + rng.Gaussian(0.0, 0.2);
  }
  ArForecaster f(1);
  ASSERT_TRUE(f.Fit(v, {}).ok());
  auto fc = f.Forecast(50).ValueOrDie();
  EXPECT_LT(std::fabs(fc[49]), std::fabs(fc[0]) + 0.5);
}

TEST(Arima, HandlesIntegratedSeries) {
  // Random walk with drift: ARIMA(0,1,0)-ish; d=1 should capture the drift.
  Rng rng(23);
  std::vector<double> v(300);
  double acc = 0.0;
  for (size_t t = 0; t < v.size(); ++t) {
    acc += 0.5 + rng.Gaussian(0.0, 0.3);
    v[t] = acc;
  }
  ArimaForecaster f(1, 1, 1);
  ASSERT_TRUE(f.Fit(v, {}).ok());
  auto fc = f.Forecast(10).ValueOrDie();
  // Forecast continues upward at roughly the drift rate.
  EXPECT_GT(fc[9], fc[0]);
  EXPECT_NEAR(fc[9] - fc[0], 0.5 * 9, 2.0);
}

TEST(Arima, RejectsTooShortSeries) {
  ArimaForecaster f(2, 1, 1);
  EXPECT_FALSE(f.Fit({1, 2, 3, 4, 5}, {}).ok());
}

TEST(EtsAuto, PicksSeasonalModelForSeasonalData) {
  auto v = MakeSeasonalSeries(120, 12, 6.0, 0.0, 0.2);
  EtsAutoForecaster f;
  FitContext ctx;
  ctx.period_hint = 12;
  ASSERT_TRUE(f.Fit(v, ctx).ok());
  EXPECT_TRUE(f.selected() == "holt_winters_add" ||
              f.selected() == "holt_winters_mul")
      << f.selected();
}

TEST(EtsAuto, PicksNonSeasonalForLine) {
  EtsAutoForecaster f;
  ASSERT_TRUE(f.Fit(MakeLinearSeries(60, 1.0, 1.0), {}).ok());
  EXPECT_TRUE(f.selected() == "holt" || f.selected() == "holt_damped")
      << f.selected();
  auto fc = f.Forecast(3).ValueOrDie();
  EXPECT_NEAR(fc[0], 61.0, 1.0);
}

}  // namespace
}  // namespace easytime::methods
