#include "sql/parser.h"

#include <gtest/gtest.h>

namespace easytime::sql {
namespace {

TEST(Parser, SimpleSelect) {
  auto s = ParseSelect("SELECT name FROM methods").ValueOrDie();
  EXPECT_FALSE(s.star_all);
  ASSERT_EQ(s.items.size(), 1u);
  EXPECT_EQ(s.items[0].expr->column, "name");
  EXPECT_EQ(s.from.table, "methods");
  EXPECT_FALSE(s.where);
  EXPECT_EQ(s.limit, -1);
}

TEST(Parser, SelectStar) {
  auto s = ParseSelect("SELECT * FROM datasets").ValueOrDie();
  EXPECT_TRUE(s.star_all);
}

TEST(Parser, AliasesWithAndWithoutAs) {
  auto s = ParseSelect("SELECT a AS x, b y FROM t").ValueOrDie();
  EXPECT_EQ(s.items[0].alias, "x");
  EXPECT_EQ(s.items[1].alias, "y");
  EXPECT_EQ(s.items[0].OutputName(), "x");
}

TEST(Parser, QualifiedColumnsAndTableAlias) {
  auto s = ParseSelect("SELECT r.method FROM results r").ValueOrDie();
  EXPECT_EQ(s.items[0].expr->table, "r");
  EXPECT_EQ(s.from.alias, "r");
  EXPECT_EQ(s.from.effective_name(), "r");
}

TEST(Parser, JoinOn) {
  auto s = ParseSelect(
               "SELECT r.method FROM results r JOIN datasets d "
               "ON r.dataset = d.name")
               .ValueOrDie();
  ASSERT_EQ(s.joins.size(), 1u);
  EXPECT_EQ(s.joins[0].table.table, "datasets");
  EXPECT_EQ(s.joins[0].table.alias, "d");
  EXPECT_EQ(s.joins[0].on->kind, ExprKind::kBinary);
}

TEST(Parser, LeftJoinParses) {
  auto s =
      ParseSelect("SELECT a FROM t LEFT JOIN u ON t.x = u.x").ValueOrDie();
  ASSERT_EQ(s.joins.size(), 1u);
  EXPECT_TRUE(s.joins[0].left_outer);
  EXPECT_NE(s.ToSql().find("LEFT JOIN"), std::string::npos);
  auto inner = ParseSelect("SELECT a FROM t JOIN u ON t.x = u.x").ValueOrDie();
  EXPECT_FALSE(inner.joins[0].left_outer);
}

TEST(Parser, WherePrecedence) {
  auto s = ParseSelect("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
               .ValueOrDie();
  // AND binds tighter: OR(x=1, AND(y=2, z=3)).
  ASSERT_EQ(s.where->binary_op, BinaryOp::kOr);
  EXPECT_EQ(s.where->right->binary_op, BinaryOp::kAnd);
}

TEST(Parser, ArithmeticPrecedence) {
  auto s = ParseSelect("SELECT 1 + 2 * 3 FROM t").ValueOrDie();
  const Expr& e = *s.items[0].expr;
  ASSERT_EQ(e.binary_op, BinaryOp::kAdd);
  EXPECT_EQ(e.right->binary_op, BinaryOp::kMul);
}

TEST(Parser, InBetweenLikeIsNull) {
  auto s = ParseSelect(
               "SELECT a FROM t WHERE a IN (1, 2) AND b BETWEEN 0 AND 5 "
               "AND c LIKE 'x%' AND d IS NOT NULL AND e NOT IN (3)")
               .ValueOrDie();
  EXPECT_NE(s.where, nullptr);
  std::string sql = s.where->ToSql();
  EXPECT_NE(sql.find("IN (1, 2)"), std::string::npos);
  EXPECT_NE(sql.find("BETWEEN 0 AND 5"), std::string::npos);
  EXPECT_NE(sql.find("LIKE 'x%'"), std::string::npos);
  EXPECT_NE(sql.find("IS NOT NULL"), std::string::npos);
  EXPECT_NE(sql.find("NOT IN (3)"), std::string::npos);
}

TEST(Parser, AggregatesAndGroupByHaving) {
  auto s = ParseSelect(
               "SELECT method, AVG(value) AS avg_mae, COUNT(*) FROM results "
               "GROUP BY method HAVING COUNT(*) > 2 ORDER BY avg_mae ASC "
               "LIMIT 8 OFFSET 1")
               .ValueOrDie();
  EXPECT_EQ(s.items.size(), 3u);
  EXPECT_TRUE(s.items[1].expr->ContainsAggregate());
  EXPECT_EQ(s.group_by.size(), 1u);
  EXPECT_NE(s.having, nullptr);
  ASSERT_EQ(s.order_by.size(), 1u);
  EXPECT_TRUE(s.order_by[0].ascending);
  EXPECT_EQ(s.limit, 8);
  EXPECT_EQ(s.offset, 1);
}

TEST(Parser, OrderByDesc) {
  auto s = ParseSelect("SELECT a FROM t ORDER BY a DESC, b").ValueOrDie();
  ASSERT_EQ(s.order_by.size(), 2u);
  EXPECT_FALSE(s.order_by[0].ascending);
  EXPECT_TRUE(s.order_by[1].ascending);
}

TEST(Parser, DistinctAndCountDistinct) {
  auto s =
      ParseSelect("SELECT DISTINCT domain FROM datasets").ValueOrDie();
  EXPECT_TRUE(s.distinct);
  auto s2 = ParseSelect("SELECT COUNT(DISTINCT method) FROM results")
                .ValueOrDie();
  EXPECT_TRUE(s2.items[0].expr->distinct_arg);
}

TEST(Parser, UnaryAndParens) {
  auto s = ParseSelect("SELECT -(1 + 2) FROM t").ValueOrDie();
  EXPECT_EQ(s.items[0].expr->kind, ExprKind::kUnary);
  auto s2 = ParseSelect("SELECT a FROM t WHERE NOT (x = 1)").ValueOrDie();
  EXPECT_EQ(s2.where->kind, ExprKind::kUnary);
}

TEST(Parser, CreateTable) {
  auto stmt = ParseSql(
                  "CREATE TABLE t (id INTEGER, score REAL, name TEXT)")
                  .ValueOrDie();
  ASSERT_EQ(stmt.kind, Statement::Kind::kCreateTable);
  ASSERT_EQ(stmt.create_table.columns.size(), 3u);
  EXPECT_EQ(stmt.create_table.columns[0].type, DataType::kInteger);
  EXPECT_EQ(stmt.create_table.columns[1].type, DataType::kReal);
  EXPECT_EQ(stmt.create_table.columns[2].type, DataType::kText);
}

TEST(Parser, InsertMultiRowAndColumnList) {
  auto stmt = ParseSql(
                  "INSERT INTO t (id, name) VALUES (1, 'a'), (2, 'b')")
                  .ValueOrDie();
  ASSERT_EQ(stmt.kind, Statement::Kind::kInsert);
  EXPECT_EQ(stmt.insert.columns.size(), 2u);
  EXPECT_EQ(stmt.insert.rows.size(), 2u);
}

TEST(Parser, ErrorsAreParseErrors) {
  for (const char* bad :
       {"", "SELECT", "SELECT FROM t", "SELECT a FROM", "SELECT a t",
        "SELECT a FROM t WHERE", "SELECT a FROM t GROUP", "DELETE FROM t",
        "SELECT a FROM t LIMIT x", "SELECT a FROM t extra garbage"}) {
    auto r = ParseSql(bad);
    EXPECT_FALSE(r.ok()) << bad;
  }
}

TEST(Parser, ToSqlRoundTripsThroughParser) {
  const char* original =
      "SELECT r.method, AVG(r.value) AS avg_mae FROM results r "
      "JOIN datasets d ON r.dataset = d.name "
      "WHERE r.metric = 'mae' AND d.trend > 0.6 "
      "GROUP BY r.method ORDER BY avg_mae ASC LIMIT 8";
  auto s = ParseSelect(original).ValueOrDie();
  std::string rendered = s.ToSql();
  auto reparsed = ParseSelect(rendered);
  ASSERT_TRUE(reparsed.ok()) << rendered;
  EXPECT_EQ(reparsed->ToSql(), rendered);  // fixpoint
}

TEST(Parser, TrailingSemicolonAllowed) {
  EXPECT_TRUE(ParseSelect("SELECT a FROM t;").ok());
}

}  // namespace
}  // namespace easytime::sql
