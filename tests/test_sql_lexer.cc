#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace easytime::sql {
namespace {

TEST(Lexer, KeywordsUppercasedIdentifiersPreserved) {
  auto toks = Tokenize("select Name from Methods").ValueOrDie();
  ASSERT_EQ(toks.size(), 5u);  // incl. kEnd
  EXPECT_TRUE(toks[0].IsKeyword("SELECT"));
  EXPECT_EQ(toks[1].type, TokenType::kIdentifier);
  EXPECT_EQ(toks[1].text, "Name");
  EXPECT_TRUE(toks[2].IsKeyword("FROM"));
  EXPECT_EQ(toks[3].text, "Methods");
  EXPECT_EQ(toks[4].type, TokenType::kEnd);
}

TEST(Lexer, NumbersIntegerVsReal) {
  auto toks = Tokenize("42 3.14 1e5 .5").ValueOrDie();
  EXPECT_EQ(toks[0].type, TokenType::kInteger);
  EXPECT_EQ(toks[1].type, TokenType::kReal);
  EXPECT_EQ(toks[2].type, TokenType::kReal);
  EXPECT_EQ(toks[3].type, TokenType::kReal);
}

TEST(Lexer, StringsWithEscapedQuotes) {
  auto toks = Tokenize("'it''s fine'").ValueOrDie();
  EXPECT_EQ(toks[0].type, TokenType::kString);
  EXPECT_EQ(toks[0].text, "it's fine");
}

TEST(Lexer, UnterminatedStringIsError) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(Lexer, TwoCharOperators) {
  auto toks = Tokenize("a != b <> c <= d >= e").ValueOrDie();
  EXPECT_TRUE(toks[1].IsOp("!="));
  EXPECT_TRUE(toks[3].IsOp("<>"));
  EXPECT_TRUE(toks[5].IsOp("<="));
  EXPECT_TRUE(toks[7].IsOp(">="));
}

TEST(Lexer, PunctuationAndQualifiedNames) {
  auto toks = Tokenize("r.method, (x)").ValueOrDie();
  EXPECT_EQ(toks[0].text, "r");
  EXPECT_TRUE(toks[1].IsOp("."));
  EXPECT_EQ(toks[2].text, "method");
  EXPECT_TRUE(toks[3].IsOp(","));
  EXPECT_TRUE(toks[4].IsOp("("));
}

TEST(Lexer, UnexpectedCharacterIsError) {
  auto r = Tokenize("select @foo");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(Lexer, KeywordTable) {
  EXPECT_TRUE(IsSqlKeyword("SELECT"));
  EXPECT_TRUE(IsSqlKeyword("BETWEEN"));
  EXPECT_TRUE(IsSqlKeyword("COUNT"));
  EXPECT_FALSE(IsSqlKeyword("select"));  // expects uppercase input
  EXPECT_FALSE(IsSqlKeyword("DATASET"));
}

TEST(Lexer, OffsetsPointIntoSource) {
  auto toks = Tokenize("ab  cd").ValueOrDie();
  EXPECT_EQ(toks[0].offset, 0u);
  EXPECT_EQ(toks[1].offset, 4u);
}

}  // namespace
}  // namespace easytime::sql
