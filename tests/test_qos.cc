// Serving QoS tests: per-endpoint admission quotas (no cross-endpoint
// starvation under overload), cooperative mid-fit deadline aborts,
// brownout degradation, bearer-token auth on the TCP listener, and the
// hardened environment knobs. DESIGN.md §12 documents the contracts these
// tests pin down.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/fault.h"
#include "common/overload.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "methods/registry.h"
#include "serve/admission.h"
#include "serve/client.h"
#include "serve/event_loop.h"
#include "serve/request.h"
#include "serve/server.h"
#include "sql/executor.h"

namespace easytime::serve {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// DeadlineChecker: the amortized poll every fit loop relies on
// ---------------------------------------------------------------------------

TEST(QosDeadlineCheckerTest, InfiniteDeadlineNeverChecksTheClock) {
  easytime::DeadlineChecker checker(easytime::Deadline::Infinite(), 4);
  for (int i = 0; i < 10000; ++i) EXPECT_FALSE(checker.Expired());
}

TEST(QosDeadlineCheckerTest, StrideAmortizesAndExpiryIsSticky) {
  easytime::Deadline d = easytime::Deadline::AfterMillis(0.01);
  std::this_thread::sleep_for(5ms);  // the deadline is now in the past
  easytime::DeadlineChecker checker(d, 4);
  // The first stride-1 calls never touch the clock, so they report live
  // even though the deadline has passed.
  EXPECT_FALSE(checker.Expired());
  EXPECT_FALSE(checker.Expired());
  EXPECT_FALSE(checker.Expired());
  EXPECT_TRUE(checker.Expired()) << "4th call reads the clock";
  EXPECT_TRUE(checker.Expired()) << "expiry is sticky";
}

TEST(QosDeadlineCheckerTest, ForceCheckPrimesTheNextCall) {
  easytime::Deadline d = easytime::Deadline::AfterMillis(0.01);
  std::this_thread::sleep_for(5ms);
  easytime::DeadlineChecker checker(d, 1000);
  checker.ForceCheck();
  EXPECT_TRUE(checker.Expired()) << "ForceCheck bypasses the stride";
}

// ---------------------------------------------------------------------------
// AdmissionController: weighted quotas, borrowing, worker fairness
// ---------------------------------------------------------------------------

TEST(QosAdmissionTest, ReservationsAdmitBorrowAndShed) {
  AdmissionController::Options opt;
  opt.queue_capacity = 4;
  opt.workers = 2;
  opt.weights = {{"a", 3.0}, {"b", 1.0}};
  AdmissionController ac(opt, [](AdmissionController::Unit u) { u(); });

  // a reserves floor(4 * 3/4) = 3 slots, b reserves 1.
  EXPECT_TRUE(ac.TryAdmit("a"));
  EXPECT_TRUE(ac.TryAdmit("a"));
  EXPECT_TRUE(ac.TryAdmit("a"));   // fills a's reservation
  EXPECT_TRUE(ac.TryAdmit("a"));   // borrows shared headroom (total 3 < 4)
  EXPECT_FALSE(ac.TryAdmit("a"));  // at capacity with no reservation: shed
  EXPECT_EQ(ac.shed_total(), 1u);

  // b's reserved slot survives a's burst — the no-starvation property.
  EXPECT_TRUE(ac.TryAdmit("b"));

  for (int i = 0; i < 4; ++i) ac.Finish("a");
  ac.Finish("b");
  EXPECT_TRUE(ac.TryAdmit("a")) << "released slots are reusable";
  ac.Finish("a");
}

TEST(QosAdmissionTest, BrownoutEntersAndExitsWithHysteresis) {
  easytime::OverloadState overload;
  AdmissionController::Options opt;
  opt.queue_capacity = 4;
  opt.workers = 1;
  opt.weights = {{"a", 1.0}};
  opt.brownout_enter_fraction = 0.75;  // enter at pending >= 3
  opt.brownout_exit_fraction = 0.25;   // exit at pending <= 1
  opt.overload = &overload;
  AdmissionController ac(opt, [](AdmissionController::Unit u) { u(); });

  EXPECT_TRUE(ac.TryAdmit("a"));
  EXPECT_TRUE(ac.TryAdmit("a"));
  EXPECT_FALSE(ac.brownout());
  EXPECT_TRUE(ac.TryAdmit("a"));  // pending 3 >= 3: brownout
  EXPECT_TRUE(ac.brownout());
  EXPECT_TRUE(overload.brownout()) << "the global flag tracks the controller";

  ac.Finish("a");  // pending 2: still browned out (hysteresis)
  EXPECT_TRUE(ac.brownout());
  ac.Finish("a");  // pending 1 <= 1: recovered
  EXPECT_FALSE(ac.brownout());
  EXPECT_FALSE(overload.brownout());
  EXPECT_EQ(overload.brownout_enters(), 1u);
  ac.Finish("a");
}

TEST(QosAdmissionTest, WorkerTieBreakRoundRobinsAcrossClasses) {
  // One worker, two equal classes: after each completion the scheduler must
  // alternate rather than draining the alphabetically-first class.
  AdmissionController::Options opt;
  opt.queue_capacity = 16;
  opt.workers = 1;
  opt.weights = {{"a", 1.0}, {"b", 1.0}};
  std::vector<AdmissionController::Unit> launched;
  AdmissionController ac(
      opt, [&](AdmissionController::Unit u) { launched.push_back(std::move(u)); });

  std::vector<std::string> order;
  auto unit = [&order](const std::string& name) {
    return [&order, name]() { order.push_back(name); };
  };
  ac.Enqueue("a", unit("a1"));  // launches immediately: the worker is free
  ac.Enqueue("a", unit("a2"));
  ac.Enqueue("a", unit("a3"));
  ac.Enqueue("b", unit("b1"));

  // Drive the fake worker: run each launched unit; completions trigger the
  // next launch synchronously through OnUnitDone.
  while (!launched.empty()) {
    auto u = std::move(launched.front());
    launched.erase(launched.begin());
    u();
  }
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "a1");
  EXPECT_EQ(order[1], "b1") << "b must not wait behind all of a's backlog";
}

TEST(QosAdmissionTest, StatsJsonExposesPerClassCounters) {
  AdmissionController::Options opt;
  opt.queue_capacity = 4;
  opt.workers = 2;
  opt.weights = {{"forecast", 4.0}, {"ask", 1.0}};
  AdmissionController ac(opt, [](AdmissionController::Unit u) { u(); });
  ASSERT_TRUE(ac.TryAdmit("forecast"));
  Json stats = ac.StatsJson();
  EXPECT_TRUE(stats.Has("classes"));
  EXPECT_TRUE(stats.Get("classes").Has("forecast"));
  EXPECT_EQ(stats.Get("classes").Get("forecast").GetInt("pending", -1), 1);
  EXPECT_GE(stats.Get("classes").Get("forecast").GetInt("reserved_slots", 0),
            1);
  EXPECT_EQ(stats.GetInt("queue_capacity", 0), 4);
  ac.Finish("forecast");
}

// ---------------------------------------------------------------------------
// Mid-fit deadline aborts (direct method calls, no server)
// ---------------------------------------------------------------------------

std::vector<double> LongRandomWalk(size_t n) {
  std::vector<double> v;
  v.reserve(n);
  double level = 100.0;
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    level += static_cast<double>(static_cast<int64_t>(state >> 33) % 1000) /
                 1000.0 -
             0.5;
    v.push_back(level);
  }
  return v;
}

TEST(QosDeadlineTest, GbdtFitAbortsMidBoostingWithinBudget) {
  // A configuration that would take seconds to fit in full: 400 trees of
  // depth 6 over ~6k points. A 50ms deadline must abort mid-boosting.
  Json cfg = Json::Object();
  cfg.Set("num_trees", static_cast<int64_t>(400));
  cfg.Set("max_depth", static_cast<int64_t>(6));
  auto f = methods::MethodRegistry::Global().Create("gbdt", cfg);
  ASSERT_TRUE(f.ok()) << f.status().ToString();

  methods::FitContext ctx;
  ctx.horizon = 12;
  ctx.deadline = easytime::Deadline::AfterMillis(50.0);
  easytime::Stopwatch watch;
  Status st = (*f)->Fit(LongRandomWalk(6000), ctx);
  const double ms = watch.ElapsedSeconds() * 1000.0;
  ASSERT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  // Generous bound (sanitizer builds are slow), but far below a full fit.
  EXPECT_LT(ms, 2000.0);
  EXPECT_FALSE((*f)->Forecast(12).ok()) << "partial fit state must be gone";
}

TEST(QosDeadlineTest, GruFitAbortsMidTrainingWithinBudget) {
  Json cfg = Json::Object();
  cfg.Set("epochs", static_cast<int64_t>(300));
  cfg.Set("hidden", static_cast<int64_t>(48));
  auto f = methods::MethodRegistry::Global().Create("gru", cfg);
  ASSERT_TRUE(f.ok()) << f.status().ToString();

  methods::FitContext ctx;
  ctx.horizon = 12;
  ctx.deadline = easytime::Deadline::AfterMillis(50.0);
  easytime::Stopwatch watch;
  Status st = (*f)->Fit(LongRandomWalk(3000), ctx);
  const double ms = watch.ElapsedSeconds() * 1000.0;
  ASSERT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
  EXPECT_LT(ms, 2000.0);
  EXPECT_FALSE((*f)->Forecast(12).ok()) << "partial fit state must be gone";
}

TEST(QosDeadlineTest, ExpiredDeadlineFailsFastAcrossMethods) {
  // Every registered method must notice an already-expired deadline and
  // refuse to fit (entry check or first loop iteration) — no method may
  // silently run to completion on a dead request.
  const std::vector<double> series = LongRandomWalk(512);
  for (const std::string& name :
       {"ses", "holt", "theta", "ar", "arima", "knn", "gbdt", "lag_linear",
        "dlinear", "mlp", "gru", "tcn", "ets_auto"}) {
    auto f = methods::MethodRegistry::Global().Create(name, Json::Object());
    ASSERT_TRUE(f.ok()) << name;
    methods::FitContext ctx;
    ctx.horizon = 8;
    ctx.deadline = easytime::Deadline::AfterMillis(0.0001);
    std::this_thread::sleep_for(2ms);
    Status st = (*f)->Fit(series, ctx);
    EXPECT_TRUE(st.IsDeadlineExceeded())
        << name << " returned: " << st.ToString();
  }
}

// ---------------------------------------------------------------------------
// Server-level QoS: the acceptance scenarios
// ---------------------------------------------------------------------------

core::EasyTime::Options SmallSystemOptions() {
  core::EasyTime::Options opt;
  opt.suite.univariate_per_domain = 1;
  opt.suite.multivariate_total = 1;
  opt.suite.min_length = 180;
  opt.suite.max_length = 220;
  opt.seed_eval.horizon = 12;
  opt.seed_eval.metrics = {"mae", "rmse"};
  opt.seed_methods = {"naive", "seasonal_naive", "theta", "ses", "drift"};
  opt.ensemble.top_k = 2;
  opt.ensemble.ts2vec.epochs = 3;
  opt.ensemble.ts2vec.repr_dim = 8;
  opt.ensemble.ts2vec.hidden_dim = 10;
  opt.ensemble.ts2vec.depth = 2;
  opt.ensemble.classifier.epochs = 80;
  return opt;
}

class QosServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto system = core::EasyTime::Create(SmallSystemOptions());
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    system_ = system->release();
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  void SetUp() override {
    ASSERT_NE(system_, nullptr);
    easytime::GlobalOverload().set_brownout(false);
    FaultRegistry::Global().DisarmAll();
  }
  void TearDown() override {
    easytime::GlobalOverload().set_brownout(false);
    FaultRegistry::Global().DisarmAll();
  }
  static std::string FirstDataset() {
    return system_->repository()->names()[0];
  }
  static core::EasyTime* system_;
};

core::EasyTime* QosServerTest::system_ = nullptr;

TEST_F(QosServerTest, AskOverloadDoesNotStarveForecast) {
  // The headline scenario: a 4x oversubscribed burst of slow "ask" requests
  // while a "forecast" arrives mid-burst. The forecast must complete within
  // its guaranteed share — not wait for the whole ask backlog — and the
  // excess asks must shed Unavailable rather than queue without bound.
  ForecastServer::Options opt;
  opt.num_worker_threads = 2;
  opt.fast_queue_capacity = 8;
  opt.enable_batching = false;
  opt.cache_capacity = 0;
  ForecastServer server(system_, opt);
  server.Start();

  constexpr int kAskClients = 32;  // 4x the admission capacity of 8
  std::atomic<int> ask_ok{0};
  std::atomic<int> ask_shed{0};
  std::atomic<int> ask_other{0};
  std::vector<std::thread> askers;
  for (int i = 0; i < kAskClients; ++i) {
    askers.emplace_back([&server, &ask_ok, &ask_shed, &ask_other]() {
      Json params = Json::Object();
      params.Set("question", "What is the average mae of theta?");
      params.Set("sleep_ms", 120.0);
      auto r = server.Call("ask", params);
      if (r.ok()) {
        ask_ok.fetch_add(1);
      } else if (r.status().IsUnavailable()) {
        ask_shed.fetch_add(1);
      } else {
        ask_other.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(40ms);  // let the burst saturate admission

  Json params = Json::Object();
  params.Set("dataset", FirstDataset());
  params.Set("method", "naive");
  params.Set("horizon", static_cast<int64_t>(4));
  easytime::Stopwatch watch;
  auto forecast = server.Call("forecast", params);
  const double forecast_ms = watch.ElapsedSeconds() * 1000.0;
  for (auto& t : askers) t.join();

  ASSERT_TRUE(forecast.ok()) << forecast.status().ToString();
  // Quota math: forecast's guaranteed worker frees up after at most one
  // 120ms ask finishes. Anything near the full backlog (~8 * 120ms serial)
  // means the quota failed; 1.5s keeps sanitizer slack.
  EXPECT_LT(forecast_ms, 1500.0) << "forecast waited behind the ask backlog";
  EXPECT_GT(ask_shed.load(), 0) << "4x oversubscription must shed";
  EXPECT_GT(ask_ok.load(), 0) << "admitted asks must still complete";
  EXPECT_EQ(ask_other.load(), 0);
  EXPECT_EQ(ask_ok.load() + ask_shed.load(), kAskClients);

  Json stats = server.StatsJson();
  EXPECT_GE(stats.Get("admission").GetInt("shed_total", 0), 1);
  EXPECT_GE(
      stats.Get("admission").Get("classes").Get("ask").GetInt("shed", 0), 1);
  server.Stop();
}

TEST_F(QosServerTest, ServerForecastAbortsMidFitAndCountsIt) {
  ForecastServer::Options opt;
  opt.enable_batching = false;
  opt.cache_capacity = 0;
  ForecastServer server(system_, opt);
  server.Start();

  Json values = Json::Array();
  for (double v : LongRandomWalk(6000)) values.Append(v);
  Json cfg = Json::Object();
  cfg.Set("num_trees", static_cast<int64_t>(400));
  cfg.Set("max_depth", static_cast<int64_t>(6));
  Json params = Json::Object();
  params.Set("values", std::move(values));
  params.Set("method", "gbdt");
  params.Set("config", std::move(cfg));
  params.Set("horizon", static_cast<int64_t>(8));
  params.Set("deadline_ms", 80.0);

  easytime::Stopwatch watch;
  auto r = server.Call("forecast", params);
  const double ms = watch.ElapsedSeconds() * 1000.0;
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status().ToString();
  EXPECT_LT(ms, 2000.0) << "the fit ran to completion instead of aborting";

  Json stats = server.StatsJson();
  EXPECT_GE(stats.GetInt("deadline_exceeded", 0), 1);
  server.Stop();
}

TEST_F(QosServerTest, DeadlineMsMustBeAPositiveFiniteNumber) {
  ForecastServer server(system_);
  server.Start();
  Json base = Json::Object();
  base.Set("dataset", FirstDataset());
  base.Set("method", "naive");

  {
    Json params = base;
    params.Set("deadline_ms", "soon");  // wrong type
    auto r = server.Call("forecast", params);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
  }
  {
    Json params = base;
    params.Set("deadline_ms", true);  // booleans are not numbers
    auto r = server.Call("forecast", params);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
  }
  {
    Json params = base;
    params.Set("deadline_ms", 0.0);  // zero budget is malformed, not instant
    auto r = server.Call("forecast", params);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
  }
  server.Stop();
}

TEST_F(QosServerTest, BrownoutDegradesRecommendAskSqlAndSkipsCache) {
  ForecastServer::Options opt;
  opt.enable_batching = false;
  opt.warm_cache = false;  // cache stays enabled but starts empty
  ForecastServer server(system_, opt);
  server.Start();

  easytime::GlobalOverload().set_brownout(true);

  Json rec_params = Json::Object();
  rec_params.Set("dataset", FirstDataset());
  auto degraded = server.Call("recommend", rec_params);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->GetBool("degraded", false));
  EXPECT_EQ(degraded->GetString("degraded_reason", ""), "brownout");
  EXPECT_GT(degraded->Get("recommendations").size(), 0u);

  Json ask_params = Json::Object();
  ask_params.Set("question", "What is the average mae of theta?");
  auto ask = server.Call("ask", ask_params);
  ASSERT_TRUE(ask.ok()) << ask.status().ToString();
  EXPECT_TRUE(ask->GetBool("degraded", false));

  Json sql_params = Json::Object();
  sql_params.Set("query", "SELECT method FROM results LIMIT 1");
  auto sql = server.Call("sql", sql_params);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_TRUE(sql->GetBool("degraded", false));

  // Recovery: the degraded recommend must NOT have been cached, so the
  // next call recomputes the full answer.
  easytime::GlobalOverload().set_brownout(false);
  auto fresh = server.Call("recommend", rec_params);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_FALSE(fresh->GetBool("degraded", false))
      << "a brownout answer leaked through the result cache";

  Json stats = server.StatsJson();
  EXPECT_GE(stats.GetInt("degraded_responses", 0), 3);
  server.Stop();
}

TEST_F(QosServerTest, StatsJsonCarriesQosCounters) {
  ForecastServer server(system_);
  server.Start();
  Json stats = server.StatsJson();
  EXPECT_TRUE(stats.Has("admission"));
  EXPECT_TRUE(stats.Get("admission").Has("classes"));
  EXPECT_TRUE(stats.Has("brownout"));
  EXPECT_TRUE(stats.Has("brownout_enters"));
  EXPECT_TRUE(stats.Has("deadline_exceeded"));
  EXPECT_TRUE(stats.Has("degraded_responses"));
  server.Stop();
}

// ---------------------------------------------------------------------------
// Token auth on the TCP listener
// ---------------------------------------------------------------------------

TEST_F(QosServerTest, AuthTokenGatesTheTcpListener) {
  ForecastServer server(system_);
  server.Start();
  EventLoopServer::Options lopt;
  lopt.auth_token = "sekrit";
  EventLoopServer loop(&server, lopt);
  ASSERT_TRUE(loop.Start().ok());

  RetryPolicy no_retry;
  no_retry.max_attempts = 1;

  {  // correct token: handshake inside Connect(), then normal traffic
    TcpClient client(loop.port(), no_retry, "sekrit");
    auto pong = client.Call("ping", Json::Object());
    ASSERT_TRUE(pong.ok()) << pong.status().ToString();
    EXPECT_TRUE(pong->GetBool("pong", false));
    auto again = client.Call("ping", Json::Object());
    EXPECT_TRUE(again.ok()) << "the session stays authenticated";
  }
  {  // wrong token: rejected during Connect, not retried
    TcpClient client(loop.port(), no_retry, "wrong");
    auto r = client.Call("ping", Json::Object());
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsUnauthenticated()) << r.status().ToString();
  }
  {  // no token: the first (non-auth) frame draws Unauthenticated + close
    TcpClient client(loop.port(), no_retry);
    auto r = client.Call("ping", Json::Object());
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsUnauthenticated()) << r.status().ToString();
  }

  EXPECT_GE(loop.stats().auth_failures, 2u);
  loop.Stop();
  server.Stop();
}

TEST_F(QosServerTest, AuthTokenFallsBackToTheEnvironment) {
  ::setenv("EASYTIME_AUTH_TOKEN", "env-token", 1);
  ForecastServer server(system_);
  server.Start();
  EventLoopServer loop(&server, EventLoopServer::Options{});
  ASSERT_TRUE(loop.Start().ok());

  RetryPolicy no_retry;
  no_retry.max_attempts = 1;
  TcpClient client(loop.port(), no_retry);  // also reads the env var
  auto pong = client.Call("ping", Json::Object());
  EXPECT_TRUE(pong.ok()) << pong.status().ToString();

  ::unsetenv("EASYTIME_AUTH_TOKEN");
  TcpClient bare(loop.port(), no_retry);  // constructed after the unset
  auto rejected = bare.Call("ping", Json::Object());
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsUnauthenticated())
      << rejected.status().ToString();

  loop.Stop();
  server.Stop();
}

// Regression: a client that loses its connection mid-session must re-send
// the auth handshake when its retry path reconnects — otherwise the first
// retried frame lands unauthenticated and draws a terminal rejection even
// though the token is correct.
TEST_F(QosServerTest, AuthHandshakeIsResentAcrossMidRetryReconnects) {
  ForecastServer server(system_);
  server.Start();
  EventLoopServer::Options lopt;
  lopt.auth_token = "sekrit";
  auto first_loop = std::make_unique<EventLoopServer>(&server, lopt);
  ASSERT_TRUE(first_loop->Start().ok());
  const uint16_t port = first_loop->port();

  RetryPolicy retry;
  retry.max_attempts = 4;
  retry.base_delay_ms = 20.0;
  TcpClient client(port, retry, "sekrit");
  auto pong = client.Call("ping", Json::Object());
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();

  // Tear the listener down and bring a fresh one up on the same port: the
  // client's established (and authenticated) connection is now dead.
  first_loop->Stop();
  first_loop.reset();
  lopt.port = port;
  EventLoopServer second_loop(&server, lopt);
  ASSERT_TRUE(second_loop.Start().ok());

  // The retried call reconnects — and must authenticate again before the
  // request frame, or the new listener rejects the session.
  auto again = client.Call("ping", Json::Object());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again->GetBool("pong", false));
  EXPECT_EQ(second_loop.stats().auth_failures, 0u);

  // The at-most-once probe reports transmission accounting: against a live
  // server the request goes out; against a closed port the failure happens
  // before any request byte, so a retry would be safe.
  bool request_sent = false;
  Json req = Json::Object();
  req.Set("id", int64_t{1});
  req.Set("endpoint", "ping");
  req.Set("params", Json::Object());
  auto once = client.SendLineOnce(req.Dump(), &request_sent);
  EXPECT_TRUE(once.ok()) << once.status().ToString();
  EXPECT_TRUE(request_sent);

  second_loop.Stop();
  TcpClient cold(port, retry, "sekrit");
  auto refused = cold.SendLineOnce(req.Dump(), &request_sent);
  EXPECT_FALSE(refused.ok());
  EXPECT_FALSE(request_sent) << "connect-level failures must stay retryable";

  server.Stop();
}

// ---------------------------------------------------------------------------
// SQL brownout downgrade
// ---------------------------------------------------------------------------

TEST(QosSqlTest, BrownoutDowngradesExpensiveModelsToSmoothing) {
  sql::Database db;
  ASSERT_TRUE(
      sql::ExecuteQuery(&db, "CREATE TABLE sales (t INTEGER, v REAL)").ok());
  std::string insert = "INSERT INTO sales VALUES ";
  for (int i = 0; i < 120; ++i) {
    if (i) insert += ", ";
    insert += "(" + std::to_string(i) + ", " +
              std::to_string(50.0 + 0.3 * i +
                             8.0 * std::sin(2.0 * 3.14159265 * i / 12.0)) +
              ")";
  }
  ASSERT_TRUE(sql::ExecuteQuery(&db, insert).ok());

  const std::string query =
      "SELECT * FROM TS_FORECAST(sales, t, v, model := 'gbdt', horizon := 4)";
  easytime::GlobalOverload().set_brownout(true);
  auto degraded = sql::ExecuteQuery(&db, query);
  easytime::GlobalOverload().set_brownout(false);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  ASSERT_FALSE(degraded->rows.empty());
  // model_name is column 5 of the ungrouped schema; it records what ran.
  EXPECT_EQ(degraded->rows[0][5].AsText(), "ses")
      << "brownout must downgrade gbdt to fast smoothing";

  auto normal = sql::ExecuteQuery(&db, query);
  ASSERT_TRUE(normal.ok()) << normal.status().ToString();
  ASSERT_FALSE(normal->rows.empty());
  EXPECT_EQ(normal->rows[0][5].AsText(), "gbdt");

  // Cheap models keep running as themselves under brownout.
  easytime::GlobalOverload().set_brownout(true);
  auto cheap = sql::ExecuteQuery(
      &db,
      "SELECT * FROM TS_FORECAST(sales, t, v, model := 'theta', horizon := 4)");
  easytime::GlobalOverload().set_brownout(false);
  ASSERT_TRUE(cheap.ok()) << cheap.status().ToString();
  EXPECT_EQ(cheap->rows[0][5].AsText(), "theta");
}

// ---------------------------------------------------------------------------
// Hardened EASYTIME_NUM_THREADS parsing
// ---------------------------------------------------------------------------

TEST(QosThreadPoolTest, NumThreadsEnvIsValidatedAndClamped) {
  auto with_env = [](const char* value) {
    ::setenv("EASYTIME_NUM_THREADS", value, 1);
    size_t n = GlobalThreadPoolSizeOverride();
    ::unsetenv("EASYTIME_NUM_THREADS");
    return n;
  };
  EXPECT_EQ(with_env("garbage"), 0u) << "malformed falls back to hardware";
  EXPECT_EQ(with_env("12abc"), 0u) << "trailing junk is malformed";
  EXPECT_EQ(with_env("0"), 0u);
  EXPECT_EQ(with_env("-4"), 0u);
  EXPECT_EQ(with_env("3"), 3u) << "sane values pass through";

  const size_t clamped = with_env("100000000");
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  EXPECT_EQ(clamped, std::max<size_t>(256, 4 * hw))
      << "huge values clamp to the sanity cap";

  ::unsetenv("EASYTIME_NUM_THREADS");
  EXPECT_EQ(GlobalThreadPoolSizeOverride(), 0u);
}

}  // namespace
}  // namespace easytime::serve
