// JobManager pool semantics (PR 4): several workers drain the evaluate
// queue, same-key jobs stay serialized (they share a checkpoint file), each
// running job's pipeline is clamped to its thread budget, and the
// cancel/deadline/checkpoint-resume contract from the single-worker era
// holds under concurrency. The soak test pushes more jobs than the pool has
// workers through a mixed cancel/deadline/success schedule and insists
// every one of them reaches a terminal state.
//
// Delay faults on "pipeline.pair" stretch job runtimes so overlap and
// cancellation windows are observable even on a single-core container; no
// assertion here depends on an upper wall-clock bound.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/json.h"
#include "common/thread_pool.h"
#include "core/easytime.h"
#include "methods/forecaster.h"
#include "methods/registry.h"
#include "serve/job_manager.h"
#include "store/record_store.h"

namespace easytime::serve {
namespace {

using namespace std::chrono_literals;

core::EasyTime* MakeSystem() {
  core::EasyTime::Options opt;
  opt.suite.univariate_per_domain = 1;
  opt.suite.multivariate_total = 1;
  opt.suite.min_length = 180;
  opt.suite.max_length = 220;
  opt.seed_eval.horizon = 12;
  opt.seed_eval.metrics = {"mae", "rmse"};
  opt.seed_methods = {"naive", "seasonal_naive", "theta", "ses", "drift"};
  opt.ensemble.top_k = 2;
  opt.ensemble.ts2vec.epochs = 3;
  opt.ensemble.ts2vec.repr_dim = 8;
  opt.ensemble.ts2vec.hidden_dim = 10;
  opt.ensemble.ts2vec.depth = 2;
  opt.ensemble.classifier.epochs = 80;
  auto system = core::EasyTime::Create(opt);
  EXPECT_TRUE(system.ok()) << system.status().ToString();
  return system.ok() ? system->release() : nullptr;
}

/// A small evaluate config with an explicit checkpoint identity.
Json EvalConfig(const std::string& job_key) {
  auto config = Json::Parse(R"({
    "methods": ["naive", "drift"],
    "evaluation": {"strategy": "fixed", "horizon": 8, "metrics": ["mae"]},
    "num_threads": 1
  })");
  EXPECT_TRUE(config.ok());
  Json c = config.ok() ? *config : Json::Object();
  c.Set("job_key", job_key);
  return c;
}

std::string StateOf(const JobManager& manager, uint64_t id) {
  auto s = manager.StatusJson(id);
  return s.ok() ? s->GetString("state", "?") : "?";
}

bool IsTerminal(const std::string& state) {
  return state == "done" || state == "failed" || state == "cancelled";
}

/// Polls until the job leaves queued/running (bounded; ~8s worst case).
std::string AwaitTerminal(const JobManager& manager, uint64_t id) {
  std::string state;
  for (int i = 0; i < 4000; ++i) {
    state = StateOf(manager, id);
    if (IsTerminal(state)) return state;
    std::this_thread::sleep_for(2ms);
  }
  return state;
}

class JobPoolTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { system_ = MakeSystem(); }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  void SetUp() override {
    ASSERT_NE(system_, nullptr);
    FaultRegistry::Global().DisarmAll();
  }
  void TearDown() override { FaultRegistry::Global().DisarmAll(); }

  static void ArmPairDelay(double delay_ms) {
    FaultSpec slow;
    slow.kind = FaultKind::kDelay;
    slow.delay_ms = delay_ms;
    ASSERT_TRUE(FaultRegistry::Global().Arm("pipeline.pair", slow).ok());
  }

  static core::EasyTime* system_;
};

core::EasyTime* JobPoolTest::system_ = nullptr;

// Two workers, two distinct keys: both jobs must be observed running at the
// same time, and the pool records that high-water mark.
TEST_F(JobPoolTest, TwoWorkersRunDistinctJobsConcurrently) {
  ArmPairDelay(30.0);
  JobManager::Options opt;
  opt.queue_capacity = 8;
  opt.concurrency = 2;
  JobManager manager(system_, opt);
  manager.Start();

  auto a = manager.Submit(EvalConfig("pool-a"));
  auto b = manager.Submit(EvalConfig("pool-b"));
  ASSERT_TRUE(a.ok() && b.ok());

  bool overlapped = false;
  for (int i = 0; i < 2000 && !overlapped; ++i) {
    overlapped = manager.running_jobs() == 2;
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(overlapped) << "pool never ran both jobs at once";

  EXPECT_EQ(AwaitTerminal(manager, *a), "done");
  EXPECT_EQ(AwaitTerminal(manager, *b), "done");
  auto stats = manager.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.peak_running, 2u);
  manager.Shutdown();
}

// Soak: four times as many jobs as workers, on a mixed schedule — plain
// runs, 1 ms deadlines, cancels landing while queued, cancels landing
// mid-run. Every job must reach a terminal state, the terminal counts must
// add back up to the submissions, and the pool must never run more jobs
// than it has workers.
TEST_F(JobPoolTest, SoakMixedCancelDeadlineAndSuccessAllTerminal) {
  ArmPairDelay(20.0);
  JobManager::Options opt;
  opt.queue_capacity = 16;
  opt.concurrency = 2;
  JobManager manager(system_, opt);
  manager.Start();

  constexpr size_t kJobs = 8;
  std::vector<uint64_t> ids;
  std::vector<uint64_t> cancel_when_running;
  for (size_t i = 0; i < kJobs; ++i) {
    Json config = EvalConfig("soak-" + std::to_string(i));
    if (i % 4 == 1) config.Set("deadline_ms", 1.0);  // fails deterministically
    auto id = manager.Submit(config);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
    if (i % 4 == 2) {
      // Cancel immediately: with 20 ms per pair the job cannot have
      // finished, so it lands queued or at a mid-run cancellation point.
      ASSERT_TRUE(manager.Cancel(*id).ok());
    } else if (i % 4 == 3) {
      cancel_when_running.push_back(*id);
    }
  }

  // The mid-run cancels wait for their job to actually start.
  for (uint64_t id : cancel_when_running) {
    for (int i = 0; i < 4000; ++i) {
      std::string state = StateOf(manager, id);
      if (state != "queued") break;
      std::this_thread::sleep_for(2ms);
    }
    ASSERT_TRUE(manager.Cancel(id).ok());
  }

  for (size_t i = 0; i < kJobs; ++i) {
    std::string state = AwaitTerminal(manager, ids[i]);
    EXPECT_TRUE(IsTerminal(state))
        << "job " << ids[i] << " stuck in state " << state;
    if (i % 4 == 0) {
      EXPECT_EQ(state, "done") << "job " << ids[i];
    } else if (i % 4 == 1) {
      EXPECT_EQ(state, "failed") << "job " << ids[i];
    } else if (i % 4 == 2) {
      EXPECT_EQ(state, "cancelled") << "job " << ids[i];
    }
  }

  auto stats = manager.stats();
  EXPECT_EQ(stats.submitted, kJobs);
  EXPECT_EQ(stats.completed + stats.failed + stats.cancelled, kJobs)
      << "terminal states must account for every submission";
  EXPECT_EQ(stats.failed, 2u) << "both 1ms-deadline jobs fail";
  EXPECT_GE(stats.cancelled, 2u);
  EXPECT_LE(stats.peak_running, opt.concurrency)
      << "pool ran more jobs than it has workers";
  EXPECT_EQ(manager.queue_depth(), 0u);
  manager.Shutdown();
}

// Two jobs sharing a job_key share a checkpoint file, so they must never
// run concurrently even with idle workers — the second waits and runs after
// the first finishes (FIFO within the key).
TEST_F(JobPoolTest, SameKeyJobsSerializeOnTheirCheckpointIdentity) {
  ArmPairDelay(25.0);
  JobManager::Options opt;
  opt.queue_capacity = 8;
  opt.concurrency = 2;
  JobManager manager(system_, opt);
  manager.Start();

  auto a = manager.Submit(EvalConfig("shared-key"));
  auto b = manager.Submit(EvalConfig("shared-key"));
  ASSERT_TRUE(a.ok() && b.ok());

  // While A is live, B must stay out of kRunning.
  std::string a_state = "queued";
  for (int i = 0; i < 8000 && !IsTerminal(a_state); ++i) {
    a_state = StateOf(manager, *a);
    if (a_state == "running") {
      EXPECT_NE(StateOf(manager, *b), "running")
          << "same-key jobs overlapped";
    }
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(a_state, "done");
  EXPECT_EQ(AwaitTerminal(manager, *b), "done");
  EXPECT_EQ(manager.stats().completed, 2u);
  manager.Shutdown();
}

// --- thread budget ----------------------------------------------------------

std::atomic<int> g_probe_inflight{0};
std::atomic<int> g_probe_peak{0};

/// Registered once as "budget_probe": tracks how many Fit calls run
/// concurrently across ALL jobs. Sleeping inside Fit widens the window so
/// any over-budget parallelism is reliably observed.
class BudgetProbe final : public methods::Forecaster {
 public:
  Status Fit(const std::vector<double>& train,
             const methods::FitContext&) override {
    int now = g_probe_inflight.fetch_add(1) + 1;
    int prev = g_probe_peak.load();
    while (now > prev && !g_probe_peak.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(10ms);
    last_ = train.empty() ? 0.0 : train.back();
    g_probe_inflight.fetch_sub(1);
    return Status::OK();
  }
  Result<std::vector<double>> Forecast(size_t horizon) const override {
    return std::vector<double>(horizon, last_);
  }
  std::string name() const override { return "budget_probe"; }
  methods::Family family() const override {
    return methods::Family::kStatistical;
  }

 private:
  double last_ = 0.0;
};

TEST_F(JobPoolTest, ThreadBudgetCapsPipelineParallelismPerJob) {
  static const bool registered = [] {
    return methods::MethodRegistry::Global()
        .Register({"budget_probe", methods::Family::kStatistical,
                   "job pool test: counts concurrent Fit calls"},
                  [](const Json&) -> Result<methods::ForecasterPtr> {
                    return methods::ForecasterPtr(new BudgetProbe());
                  })
        .ok();
  }();
  ASSERT_TRUE(registered);

  // Budget arithmetic first: explicit budgets pass through, 0 splits the
  // observed core count evenly across the pool (never below one thread).
  {
    JobManager::Options opt;
    opt.concurrency = 2;
    opt.thread_budget = 3;
    EXPECT_EQ(JobManager(system_, opt).PerJobThreadBudget(), 3u);

    opt.thread_budget = 0;
    size_t cores = GlobalThreadPoolSizeOverride();
    if (cores == 0) {
      cores = std::max<size_t>(1, std::thread::hardware_concurrency());
    }
    EXPECT_EQ(JobManager(system_, opt).PerJobThreadBudget(),
              std::max<size_t>(1, cores / 2));
  }

  // Behavioral check: two concurrent jobs, one pipeline thread each. The
  // config asks for 8 threads; the budget must win, so across the whole
  // pool at most 2 Fit calls can ever be in flight.
  JobManager::Options opt;
  opt.queue_capacity = 8;
  opt.concurrency = 2;
  opt.thread_budget = 1;
  JobManager manager(system_, opt);
  manager.Start();

  auto config = Json::Parse(R"({
    "methods": ["budget_probe"],
    "evaluation": {"strategy": "fixed", "horizon": 8, "metrics": ["mae"]},
    "num_threads": 8
  })");
  ASSERT_TRUE(config.ok());
  g_probe_peak.store(0);

  Json c1 = *config, c2 = *config;
  c1.Set("job_key", "budget-1");
  c2.Set("job_key", "budget-2");
  auto a = manager.Submit(c1);
  auto b = manager.Submit(c2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(AwaitTerminal(manager, *a), "done");
  EXPECT_EQ(AwaitTerminal(manager, *b), "done");
  manager.Shutdown();

  EXPECT_GT(g_probe_peak.load(), 0);
  EXPECT_LE(g_probe_peak.load(), 2)
      << "a job exceeded its 1-thread pipeline budget";
}

// Checkpoint-resume still splices correctly when the cancelled job and its
// resumed successor share the pool with unrelated traffic.
TEST_F(JobPoolTest, CheckpointResumeSplicesUnderConcurrentPool) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "easytime_pool_ckpt")
          .string();
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));

  auto config = Json::Parse(R"({
    "methods": ["naive", "drift", "ses", "theta"],
    "evaluation": {"strategy": "fixed", "horizon": 8, "metrics": ["mae"]},
    "num_threads": 1,
    "job_key": "pool-resume"
  })");
  ASSERT_TRUE(config.ok());

  JobManager::Options opt;
  opt.queue_capacity = 8;
  opt.concurrency = 2;
  opt.checkpoint_dir = dir;
  std::string ckpt_path;

  // Phase 1: cancel the target mid-run while a filler job keeps the other
  // worker busy; the manager shuts down like a killed process would.
  {
    ArmPairDelay(30.0);
    JobManager manager(system_, opt);
    ckpt_path = manager.CheckpointPath("pool-resume");
    ASSERT_FALSE(ckpt_path.empty());
    manager.Start();
    auto target = manager.Submit(*config);
    auto filler = manager.Submit(EvalConfig("pool-filler"));
    ASSERT_TRUE(target.ok() && filler.ok());

    for (int i = 0; i < 2000; ++i) {
      auto s = manager.StatusJson(*target);
      ASSERT_TRUE(s.ok());
      if (s->GetInt("done", 0) >= 2) break;
      std::this_thread::sleep_for(2ms);
    }
    ASSERT_TRUE(manager.Cancel(*target).ok());
  }
  FaultRegistry::Global().DisarmAll();
  ASSERT_TRUE(std::filesystem::exists(ckpt_path))
      << "checkpoint must survive a cancelled job";

  // Phase 2: a fresh pool on the same directory resumes the key while new
  // traffic runs beside it.
  {
    JobManager manager(system_, opt);
    manager.Start();
    auto target = manager.Submit(*config);
    auto filler = manager.Submit(EvalConfig("pool-filler-2"));
    ASSERT_TRUE(target.ok() && filler.ok());

    ASSERT_EQ(AwaitTerminal(manager, *target), "done");
    auto s = manager.StatusJson(*target);
    ASSERT_TRUE(s.ok());
    const Json& summary = s->Get("result");
    EXPECT_GT(summary.GetInt("resumed", 0), 0)
        << "restart must splice checkpointed pairs, not redo them";
    EXPECT_EQ(summary.GetInt("ok", -1), summary.GetInt("records", -2));
    EXPECT_GT(manager.stats().resumed_records, 0u);
    EXPECT_EQ(AwaitTerminal(manager, *filler), "done");
    EXPECT_FALSE(std::filesystem::exists(ckpt_path));
  }
  std::filesystem::remove_all(dir);
}

// A job that crashed between appending its terminal marker and removing its
// checkpoint leaves an orphan behind; Start() must sweep exactly those.
TEST_F(JobPoolTest, StartSweepsTerminalOrphanCheckpointsOnly) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "easytime_pool_sweep")
          .string();
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));

  JobManager::Options opt;
  opt.queue_capacity = 4;
  opt.checkpoint_dir = dir;
  JobManager manager(system_, opt);

  // Terminal orphan: its WAL holds the "__terminal__" marker a completed
  // job appends right before removal.
  const std::string orphan = manager.CheckpointPath("swept-key");
  {
    auto ckpt =
        store::RecordStore::Open(orphan, store::RecordStoreOptions{}, nullptr);
    ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
    Json marker = Json::Object();
    marker.Set("__terminal__", "done");
    ASSERT_TRUE((*ckpt)->Append(marker.Dump()).ok());
    ASSERT_TRUE((*ckpt)->Sync().ok());
  }
  // Live checkpoint: a cancelled/crashed job mid-run, records but no marker.
  const std::string live = manager.CheckpointPath("live-key");
  {
    auto ckpt =
        store::RecordStore::Open(live, store::RecordStoreOptions{}, nullptr);
    ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
    Json rec = Json::Object();
    rec.Set("dataset", "d");
    rec.Set("method", "naive");
    ASSERT_TRUE((*ckpt)->Append(rec.Dump()).ok());
    ASSERT_TRUE((*ckpt)->Sync().ok());
  }

  manager.Start();
  EXPECT_FALSE(std::filesystem::exists(orphan))
      << "terminal orphans must be swept at startup";
  EXPECT_TRUE(std::filesystem::exists(live))
      << "resumable checkpoints must survive the sweep";
  EXPECT_EQ(manager.stats().swept_checkpoints, 1u);
  manager.Shutdown();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace easytime::serve
