#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/semaphore.h"

namespace easytime {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------- Semaphore

TEST(SemaphoreTest, AcquireAndReleaseRoundTrip) {
  Semaphore sem(2);
  EXPECT_TRUE(sem.Acquire());
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_EQ(sem.available(), 0u);
  EXPECT_FALSE(sem.TryAcquire());  // exhausted
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
}

TEST(SemaphoreTest, CloseWakesBlockedAcquire) {
  Semaphore sem(1);
  ASSERT_TRUE(sem.Acquire());  // take the only permit

  std::atomic<int> result{-1};
  std::thread waiter([&]() {
    // Blocks: no permit available until Close.
    result.store(sem.Acquire() ? 1 : 0);
  });
  std::this_thread::sleep_for(30ms);
  EXPECT_EQ(result.load(), -1) << "Acquire should still be blocked";

  sem.Close();
  waiter.join();
  EXPECT_EQ(result.load(), 0) << "closed Acquire must return false";
  EXPECT_TRUE(sem.closed());

  // Permits handed out before Close may still be returned safely, and
  // Close stays idempotent.
  sem.Release();
  sem.Close();
  EXPECT_FALSE(sem.Acquire());
  EXPECT_FALSE(sem.TryAcquire());
}

TEST(SemaphoreTest, CloseWakesEveryWaiter) {
  Semaphore sem(0);
  constexpr int kWaiters = 4;
  std::atomic<int> refused{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&]() {
      if (!sem.Acquire()) refused.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(30ms);
  sem.Close();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(refused.load(), kWaiters);
}

// ------------------------------------------------------------- BoundedQueue

TEST(BoundedQueueTest, CloseWakesBlockedPop) {
  BoundedQueue<int> q(4);
  std::atomic<bool> got_nullopt{false};
  std::thread consumer([&]() {
    auto item = q.Pop();  // blocks: queue is empty
    got_nullopt.store(!item.has_value());
  });
  std::this_thread::sleep_for(30ms);
  EXPECT_FALSE(got_nullopt.load());
  q.Close();
  consumer.join();
  EXPECT_TRUE(got_nullopt.load());
}

TEST(BoundedQueueTest, FullQueueShutdownDrainsQueuedItemsThenSignalsExit) {
  BoundedQueue<int> q(3);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_TRUE(q.TryPush(3));
  EXPECT_FALSE(q.TryPush(4)) << "queue is full";

  q.Close();
  EXPECT_FALSE(q.TryPush(5)) << "closed queue rejects pushes";

  // Drain semantics: the three admitted items remain poppable in order.
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), 3);
  EXPECT_EQ(q.Pop(), std::nullopt) << "drained + closed signals exit";
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueueTest, PopForTimesOutOnEmptyOpenQueue) {
  BoundedQueue<int> q(2);
  auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(q.PopFor(20ms), std::nullopt);
  EXPECT_GE(std::chrono::steady_clock::now() - start, 15ms);
  EXPECT_FALSE(q.closed()) << "timeout is distinguishable from closure";
}

TEST(BoundedQueueTest, ConcurrentProducersAgainstClosingConsumer) {
  // Shutdown race: producers hammer TryPush while the consumer closes the
  // queue mid-stream. Every accepted item must be popped exactly once.
  BoundedQueue<int> q(8);
  std::atomic<int> accepted{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&]() {
      while (!stop.load()) {
        if (q.TryPush(1)) accepted.fetch_add(1);
      }
    });
  }

  int popped = 0;
  for (int i = 0; i < 200; ++i) {
    if (q.Pop().has_value()) ++popped;
  }
  q.Close();
  stop.store(true);
  for (auto& t : producers) t.join();
  // Post-close drain picks up whatever was admitted before closure.
  while (q.Pop().has_value()) ++popped;
  EXPECT_EQ(popped, accepted.load());
}

}  // namespace
}  // namespace easytime
