#include <gtest/gtest.h>

#include "qa/nl2sql.h"
#include "qa/qa_engine.h"

namespace easytime::qa {
namespace {

const std::vector<std::string> kMethods = {"naive", "theta", "gbdt", "holt"};
const std::vector<std::string> kDomains = {
    "traffic", "electricity", "energy", "environment", "nature",
    "economic", "stock", "banking", "health", "web"};

TranslatedQuestion T(const std::string& q,
                     const TranslatedQuestion* prev = nullptr) {
  auto r = TranslateQuestion(q, kMethods, kDomains, prev);
  EXPECT_TRUE(r.ok()) << q << " -> " << r.status().ToString();
  return r.ok() ? std::move(*r) : TranslatedQuestion{};
}

TEST(FollowUp, InheritsIntentAndOverlaysHorizon) {
  auto first = T("top-5 methods by rmse on multivariate datasets with "
                 "trends for long term forecasting");
  auto follow = T("what about short term?", &first);
  EXPECT_EQ(follow.intent, QuestionIntent::kTopKMethods);
  EXPECT_EQ(follow.metric, "rmse");                 // inherited
  EXPECT_EQ(follow.top_k, 5u);                      // inherited
  EXPECT_TRUE(follow.filters.want_multivariate);    // inherited
  EXPECT_TRUE(follow.filters.with_trend);           // inherited
  EXPECT_EQ(follow.filters.horizon_class, "short"); // overlaid
  EXPECT_NE(follow.sql.find("r.horizon <"), std::string::npos);
  EXPECT_NE(follow.sql.find("d.multivariate = 1"), std::string::npos);
}

TEST(FollowUp, OverlaysMetricAndDomain) {
  auto first = T("top-3 methods by mae on traffic datasets");
  auto follow = T("and for web datasets by smape?", &first);
  EXPECT_EQ(follow.metric, "smape");
  EXPECT_EQ(follow.filters.domain, "web");
  EXPECT_EQ(follow.top_k, 3u);
  EXPECT_NE(follow.sql.find("d.domain = 'web'"), std::string::npos);
  EXPECT_NE(follow.sql.find("smape"), std::string::npos);
}

TEST(FollowUp, ArityFlipsCleanly) {
  auto first = T("top-4 methods on multivariate datasets");
  auto follow = T("what about univariate?", &first);
  EXPECT_TRUE(follow.filters.want_univariate);
  EXPECT_FALSE(follow.filters.want_multivariate);
  EXPECT_NE(follow.sql.find("d.multivariate = 0"), std::string::npos);
}

TEST(FollowUp, WithoutPreviousIsRejected) {
  auto r = TranslateQuestion("what about short term?", kMethods, kDomains,
                             nullptr);
  EXPECT_FALSE(r.ok());
}

TEST(FollowUp, NonFollowUpIgnoresPrevious) {
  auto first = T("top-5 methods by rmse on multivariate datasets");
  auto fresh = T("how many datasets have strong seasonality?", &first);
  EXPECT_EQ(fresh.intent, QuestionIntent::kCountDatasets);
  // No multivariate filter leaked from the previous question.
  EXPECT_EQ(fresh.sql.find("multivariate"), std::string::npos);
}

TEST(FollowUp, ComparisonInheritsMethods) {
  auto first = T("is theta or gbdt better by mae?");
  auto follow = T("what about on seasonal datasets?", &first);
  EXPECT_EQ(follow.intent, QuestionIntent::kCompareMethods);
  EXPECT_NE(follow.sql.find("r.method IN ('theta', 'gbdt')"),
            std::string::npos);
  EXPECT_NE(follow.sql.find("d.seasonality >"), std::string::npos);
}

class FollowUpEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tsdata::SuiteSpec suite;
    suite.univariate_per_domain = 1;
    suite.multivariate_total = 1;
    suite.min_length = 160;
    suite.max_length = 200;
    eval::EvalConfig cfg;
    cfg.horizon = 24;
    cfg.metrics = {"mae", "rmse"};
    auto seeded =
        knowledge::SeedKnowledge(suite, cfg, {"naive", "theta", "ses"});
    ASSERT_TRUE(seeded.ok());
    auto engine = QaEngine::Create(seeded->kb);
    ASSERT_TRUE(engine.ok());
    engine_ = engine->release();
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
  }
  static QaEngine* engine_;
};

QaEngine* FollowUpEngineTest::engine_ = nullptr;

TEST_F(FollowUpEngineTest, EndToEndConversation) {
  auto first = engine_->Ask("top-3 methods by mae on univariate datasets");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_NE(first->sql.find("d.multivariate = 0"), std::string::npos);

  auto follow = engine_->Ask("what about multivariate?");
  ASSERT_TRUE(follow.ok()) << follow.status().ToString();
  EXPECT_NE(follow->sql.find("d.multivariate = 1"), std::string::npos);
  EXPECT_NE(follow->sql.find("LIMIT 3"), std::string::npos);
  EXPECT_FALSE(follow->table.rows.empty());
}

TEST_F(FollowUpEngineTest, FailedQuestionDoesNotBecomeContext) {
  ASSERT_TRUE(engine_->Ask("top-2 methods by rmse").ok());
  EXPECT_FALSE(engine_->Ask("tell me a story").ok());
  // Context still points at the last *successful* question.
  auto follow = engine_->Ask("what about by mae?");
  ASSERT_TRUE(follow.ok());
  EXPECT_NE(follow->sql.find("avg_mae"), std::string::npos);
  EXPECT_NE(follow->sql.find("LIMIT 2"), std::string::npos);
}

}  // namespace
}  // namespace easytime::qa
