// EventLoopServer tests: the epoll front-end driven through raw loopback
// sockets. Covers request/response and pipelining order, partial writes,
// CRLF/blank-line tolerance, the oversized-line protocol error, idle-
// connection sweeping, the max_connections accept gate, half-closed peers,
// and the graceful drain on Stop. Every read is poll-bounded, so a server
// hang fails the test instead of wedging the suite.

#include "serve/event_loop.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "serve/server.h"
#include "socket_test_util.h"

namespace easytime::serve {
namespace {

using namespace std::chrono_literals;
using testutil::ConnectLoopback;
using testutil::LineReader;
using testutil::SendAll;
using testutil::WaitForEof;

core::EasyTime* MakeSystem() {
  core::EasyTime::Options opt;
  opt.suite.univariate_per_domain = 1;
  opt.suite.multivariate_total = 1;
  opt.suite.min_length = 180;
  opt.suite.max_length = 220;
  opt.seed_eval.horizon = 12;
  opt.seed_eval.metrics = {"mae", "rmse"};
  opt.seed_methods = {"naive", "seasonal_naive", "theta", "ses", "drift"};
  opt.ensemble.top_k = 2;
  opt.ensemble.ts2vec.epochs = 3;
  opt.ensemble.ts2vec.repr_dim = 8;
  opt.ensemble.ts2vec.hidden_dim = 10;
  opt.ensemble.ts2vec.depth = 2;
  opt.ensemble.classifier.epochs = 80;
  auto system = core::EasyTime::Create(opt);
  EXPECT_TRUE(system.ok()) << system.status().ToString();
  return system.ok() ? system->release() : nullptr;
}

std::string ReqLine(int64_t id, const std::string& endpoint,
                    Json params = Json::Object()) {
  Json req = Json::Object();
  req.Set("id", id);
  req.Set("endpoint", endpoint);
  req.Set("params", std::move(params));
  return req.Dump() + "\n";
}

class EventLoopTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { system_ = MakeSystem(); }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  void SetUp() override {
    ASSERT_NE(system_, nullptr);
    FaultRegistry::Global().DisarmAll();
  }
  void TearDown() override { FaultRegistry::Global().DisarmAll(); }
  static core::EasyTime* system_;
};

core::EasyTime* EventLoopTest::system_ = nullptr;

TEST_F(EventLoopTest, PingRoundTripAndStats) {
  ForecastServer server(system_);
  server.Start();
  EventLoopServer loop(&server, EventLoopServer::Options{});
  ASSERT_TRUE(loop.Start().ok());
  ASSERT_GT(loop.port(), 0);
  EXPECT_TRUE(loop.running());

  int fd = ConnectLoopback(loop.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, ReqLine(7, "ping")));
  LineReader reader{fd};
  auto line = reader.Next(3000);
  ASSERT_TRUE(line.has_value()) << "no response within 3s";
  auto resp = Json::Parse(*line);
  ASSERT_TRUE(resp.ok()) << *line;
  EXPECT_EQ(resp->GetInt("id", -1), 7);
  EXPECT_TRUE(resp->GetBool("ok", false));
  EXPECT_TRUE(resp->Get("result").GetBool("pong", false));
  ::close(fd);

  // The loop notices the close; counters settle.
  for (int i = 0; i < 500 && loop.open_connections() > 0; ++i) {
    std::this_thread::sleep_for(2ms);
  }
  auto stats = loop.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.closed, 1u);
  EXPECT_EQ(stats.requests_dispatched, 1u);
  EXPECT_EQ(stats.responses_written, 1u);
  loop.Stop();
  EXPECT_FALSE(loop.running());
  server.Stop();
}

TEST_F(EventLoopTest, PipelinedRequestsAnswerInOrder) {
  ForecastServer server(system_);
  server.Start();
  EventLoopServer loop(&server, EventLoopServer::Options{});
  ASSERT_TRUE(loop.Start().ok());

  int fd = ConnectLoopback(loop.port());
  ASSERT_GE(fd, 0);
  std::string burst;
  constexpr int kN = 16;
  for (int i = 0; i < kN; ++i) burst += ReqLine(100 + i, "ping");
  ASSERT_TRUE(SendAll(fd, burst));  // one write, kN framed requests

  LineReader reader{fd};
  for (int i = 0; i < kN; ++i) {
    auto line = reader.Next(3000);
    ASSERT_TRUE(line.has_value()) << "response " << i << " missing";
    auto resp = Json::Parse(*line);
    ASSERT_TRUE(resp.ok());
    // Pipelined responses must come back in request order.
    EXPECT_EQ(resp->GetInt("id", -1), 100 + i);
    EXPECT_TRUE(resp->GetBool("ok", false));
  }
  ::close(fd);
  loop.Stop();
  server.Stop();
}

TEST_F(EventLoopTest, ByteAtATimeRequestStillParses) {
  ForecastServer server(system_);
  server.Start();
  EventLoopServer loop(&server, EventLoopServer::Options{});
  ASSERT_TRUE(loop.Start().ok());

  int fd = ConnectLoopback(loop.port());
  ASSERT_GE(fd, 0);
  const std::string line = ReqLine(3, "ping");
  for (char c : line) {
    ASSERT_TRUE(SendAll(fd, std::string(1, c)));
  }
  LineReader reader{fd};
  auto resp_line = reader.Next(3000);
  ASSERT_TRUE(resp_line.has_value());
  auto resp = Json::Parse(*resp_line);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->GetInt("id", -1), 3);
  EXPECT_TRUE(resp->GetBool("ok", false));
  ::close(fd);
  loop.Stop();
  server.Stop();
}

TEST_F(EventLoopTest, MalformedJsonGetsErrorEnvelopeAndConnectionSurvives) {
  ForecastServer server(system_);
  server.Start();
  EventLoopServer loop(&server, EventLoopServer::Options{});
  ASSERT_TRUE(loop.Start().ok());

  int fd = ConnectLoopback(loop.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, "this is not json\n"));
  LineReader reader{fd};
  auto err_line = reader.Next(3000);
  ASSERT_TRUE(err_line.has_value());
  auto err = Json::Parse(*err_line);
  ASSERT_TRUE(err.ok()) << *err_line;
  EXPECT_FALSE(err->GetBool("ok", true));
  EXPECT_FALSE(err->Get("error").GetString("code", "").empty());

  // The connection survives a malformed line; a well-formed request works.
  ASSERT_TRUE(SendAll(fd, ReqLine(9, "ping")));
  auto ok_line = reader.Next(3000);
  ASSERT_TRUE(ok_line.has_value());
  auto ok = Json::Parse(*ok_line);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->GetInt("id", -1), 9);
  EXPECT_TRUE(ok->GetBool("ok", false));
  ::close(fd);
  loop.Stop();
  server.Stop();
}

TEST_F(EventLoopTest, CrlfAndBlankLinesAreTolerated) {
  ForecastServer server(system_);
  server.Start();
  EventLoopServer loop(&server, EventLoopServer::Options{});
  ASSERT_TRUE(loop.Start().ok());

  int fd = ConnectLoopback(loop.port());
  ASSERT_GE(fd, 0);
  std::string line = ReqLine(5, "ping");
  line.pop_back();  // replace \n with \r\n, padded by blank lines
  ASSERT_TRUE(SendAll(fd, "\r\n\n" + line + "\r\n"));
  LineReader reader{fd};
  auto resp_line = reader.Next(3000);
  ASSERT_TRUE(resp_line.has_value());
  auto resp = Json::Parse(*resp_line);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->GetInt("id", -1), 5);
  EXPECT_TRUE(resp->GetBool("ok", false));
  ::close(fd);
  loop.Stop();
  server.Stop();
}

TEST_F(EventLoopTest, OversizedUnterminatedLineAnsweredThenClosed) {
  ForecastServer server(system_);
  server.Start();
  EventLoopServer::Options opts;
  opts.max_line_bytes = 2048;
  EventLoopServer loop(&server, opts);
  ASSERT_TRUE(loop.Start().ok());

  int fd = ConnectLoopback(loop.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, std::string(8192, 'x')));  // no newline, ever

  LineReader reader{fd};
  auto err_line = reader.Next(3000);
  ASSERT_TRUE(err_line.has_value()) << "oversized line must get one error";
  auto err = Json::Parse(*err_line);
  ASSERT_TRUE(err.ok()) << *err_line;
  EXPECT_FALSE(err->GetBool("ok", true));
  EXPECT_NE(err->Get("error").GetString("message", "").find("size limit"),
            std::string::npos);
  EXPECT_TRUE(WaitForEof(fd, 3000)) << "protocol violation must close";
  ::close(fd);

  EXPECT_GE(loop.stats().protocol_errors, 1u);
  loop.Stop();
  server.Stop();
}

TEST_F(EventLoopTest, IdleConnectionIsSweptOut) {
  ForecastServer server(system_);
  server.Start();
  EventLoopServer::Options opts;
  opts.idle_timeout_ms = 60.0;
  EventLoopServer loop(&server, opts);
  ASSERT_TRUE(loop.Start().ok());

  int fd = ConnectLoopback(loop.port());
  ASSERT_GE(fd, 0);
  // Activity resets the idle clock: the connection answers first...
  ASSERT_TRUE(SendAll(fd, ReqLine(1, "ping")));
  LineReader reader{fd};
  ASSERT_TRUE(reader.Next(3000).has_value());
  // ...then goes quiet and must be closed by the sweep.
  EXPECT_TRUE(WaitForEof(fd, 3000)) << "idle connection never closed";
  ::close(fd);
  EXPECT_GE(loop.stats().idle_closed, 1u);
  loop.Stop();
  server.Stop();
}

TEST_F(EventLoopTest, HalfClosedPeerStillGetsItsAnswer) {
  ForecastServer server(system_);
  server.Start();
  EventLoopServer loop(&server, EventLoopServer::Options{});
  ASSERT_TRUE(loop.Start().ok());

  int fd = ConnectLoopback(loop.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, ReqLine(11, "ping")));
  ::shutdown(fd, SHUT_WR);  // we are done sending; the answer must still come

  LineReader reader{fd};
  auto line = reader.Next(3000);
  ASSERT_TRUE(line.has_value()) << "half-closed peer lost its response";
  auto resp = Json::Parse(*line);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->GetInt("id", -1), 11);
  EXPECT_TRUE(resp->GetBool("ok", false));
  EXPECT_TRUE(WaitForEof(fd, 3000));  // then the server closes its side
  ::close(fd);
  loop.Stop();
  server.Stop();
}

TEST_F(EventLoopTest, MaxConnectionsDefersExtrasToTheBacklog) {
  ForecastServer server(system_);
  server.Start();
  EventLoopServer::Options opts;
  opts.max_connections = 1;
  EventLoopServer loop(&server, opts);
  ASSERT_TRUE(loop.Start().ok());

  int a = ConnectLoopback(loop.port());
  ASSERT_GE(a, 0);
  ASSERT_TRUE(SendAll(a, ReqLine(1, "ping")));
  LineReader ra{a};
  ASSERT_TRUE(ra.Next(3000).has_value());

  // A second connection sits in the listen backlog: connect() succeeds but
  // nothing is served while the slot is taken.
  int b = ConnectLoopback(loop.port());
  ASSERT_GE(b, 0);
  ASSERT_TRUE(SendAll(b, ReqLine(2, "ping")));
  LineReader rb{b};
  EXPECT_FALSE(rb.Next(150).has_value())
      << "connection over the cap must not be served";

  // Freeing the slot resumes accept and the parked connection is served.
  ::close(a);
  auto line = rb.Next(3000);
  ASSERT_TRUE(line.has_value()) << "backlogged connection never served";
  auto resp = Json::Parse(*line);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->GetInt("id", -1), 2);
  ::close(b);
  loop.Stop();
  server.Stop();
}

TEST_F(EventLoopTest, StopDrainsInFlightRequestAndIsTerminal) {
  ForecastServer server(system_);
  server.Start();
  EventLoopServer loop(&server, EventLoopServer::Options{});
  ASSERT_TRUE(loop.Start().ok());

  int fd = ConnectLoopback(loop.port());
  ASSERT_GE(fd, 0);
  // A deliberately slow request (sleep_ms is the serving layer's test aid).
  Json params = Json::Object();
  Json values = Json::Array();
  for (int i = 0; i < 16; ++i) values.Append(static_cast<double>(i % 5));
  params.Set("values", std::move(values));
  params.Set("method", "naive");
  params.Set("horizon", static_cast<int64_t>(3));
  params.Set("sleep_ms", 150.0);
  ASSERT_TRUE(SendAll(fd, ReqLine(42, "forecast", std::move(params))));
  std::this_thread::sleep_for(40ms);  // let the request reach a handler

  loop.Stop();  // drain: the in-flight response must flush before the close

  LineReader reader{fd};
  auto line = reader.Next(3000);
  ASSERT_TRUE(line.has_value()) << "drain dropped an in-flight response";
  auto resp = Json::Parse(*line);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->GetInt("id", -1), 42);
  EXPECT_TRUE(resp->GetBool("ok", false)) << *line;
  EXPECT_TRUE(WaitForEof(fd, 3000));
  ::close(fd);

  // Stop is terminal: a stopped loop refuses to restart.
  EXPECT_FALSE(loop.running());
  EXPECT_FALSE(loop.Start().ok());
  server.Stop();
}

TEST_F(EventLoopTest, ManySequentialConnectionsRecycleCleanly) {
  ForecastServer server(system_);
  server.Start();
  EventLoopServer loop(&server, EventLoopServer::Options{});
  ASSERT_TRUE(loop.Start().ok());

  // Rapid connect/request/close cycles reuse kernel fds; the loop's
  // monotonic connection ids must never confuse one peer for another.
  for (int i = 0; i < 40; ++i) {
    int fd = ConnectLoopback(loop.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(SendAll(fd, ReqLine(i, "ping")));
    LineReader reader{fd};
    auto line = reader.Next(3000);
    ASSERT_TRUE(line.has_value()) << "cycle " << i;
    auto resp = Json::Parse(*line);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->GetInt("id", -1), i);
    ::close(fd);
  }
  auto stats = loop.stats();
  EXPECT_EQ(stats.accepted, 40u);
  EXPECT_EQ(stats.requests_dispatched, 40u);
  loop.Stop();
  server.Stop();
}

}  // namespace
}  // namespace easytime::serve
