#include "pipeline/benchmark_config.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace easytime::pipeline {
namespace {

namespace fs = std::filesystem;

TEST(BenchmarkConfigFile, LoadsFromDisk) {
  std::string path =
      (fs::temp_directory_path() / "easytime_cfg.json").string();
  {
    std::ofstream f(path);
    f << R"({"methods": ["naive"],
             "evaluation": {"strategy": "fixed", "horizon": 6,
                            "metrics": ["mae"]}})";
  }
  auto cfg = BenchmarkConfig::FromFile(path);
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
  EXPECT_EQ(cfg->methods.size(), 1u);
  EXPECT_EQ(cfg->eval.horizon, 6u);
  std::remove(path.c_str());
}

TEST(BenchmarkConfigFile, MissingFileIsIOError) {
  auto cfg = BenchmarkConfig::FromFile("/no/such/config.json");
  ASSERT_FALSE(cfg.ok());
  EXPECT_EQ(cfg.status().code(), StatusCode::kIOError);
}

TEST(BenchmarkConfigFile, MalformedJsonIsParseError) {
  std::string path =
      (fs::temp_directory_path() / "easytime_cfg_bad.json").string();
  {
    std::ofstream f(path);
    f << "{not json";
  }
  auto cfg = BenchmarkConfig::FromFile(path);
  ASSERT_FALSE(cfg.ok());
  EXPECT_EQ(cfg.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(BenchmarkConfigJson, RoundTripPreservesEverything) {
  BenchmarkConfig c;
  c.datasets = {"a"};
  c.methods = {MethodSpec{"naive", Json::Object()}};
  c.eval.strategy = eval::Strategy::kRolling;
  c.eval.horizon = 12;
  c.num_threads = 2;
  c.log_file = "run.log";
  c.output_csv = "out.csv";
  auto round = BenchmarkConfig::FromJson(c.ToJson());
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->datasets, c.datasets);
  EXPECT_EQ(round->methods.size(), 1u);
  EXPECT_EQ(round->eval.strategy, eval::Strategy::kRolling);
  EXPECT_EQ(round->num_threads, 2u);
  EXPECT_EQ(round->log_file, "run.log");
  EXPECT_EQ(round->output_csv, "out.csv");
}

TEST(BenchmarkConfigJson, EmptyObjectGivesDefaults) {
  auto cfg = BenchmarkConfig::FromJson(Json::Object());
  ASSERT_TRUE(cfg.ok());
  EXPECT_TRUE(cfg->datasets.empty());  // = all datasets
  EXPECT_TRUE(cfg->methods.empty());   // = all methods
  EXPECT_EQ(cfg->eval.strategy, eval::Strategy::kFixed);
}

}  // namespace
}  // namespace easytime::pipeline
