#include "qa/nl2sql.h"

#include <gtest/gtest.h>

#include "sql/analyzer.h"
#include "sql/parser.h"
#include "sql/table.h"

namespace easytime::qa {
namespace {

const std::vector<std::string> kMethods = {
    "naive", "theta", "gbdt", "holt", "holt_winters_add", "mlp"};
const std::vector<std::string> kDomains = {
    "traffic", "electricity", "energy", "environment", "nature",
    "economic", "stock", "banking", "health", "web"};

TranslatedQuestion T(const std::string& q) {
  auto r = TranslateQuestion(q, kMethods, kDomains);
  EXPECT_TRUE(r.ok()) << q << " -> " << r.status().ToString();
  return r.ok() ? std::move(*r) : TranslatedQuestion{};
}

TEST(Nl2Sql, PaperFigureFiveQuestion) {
  // The exact question shape from Fig. 5 of the paper.
  auto t = T("What are the top-8 methods (ordered by MAE) for long term "
             "forecasting on all multivariate datasets with trends?");
  EXPECT_EQ(t.intent, QuestionIntent::kTopKMethods);
  EXPECT_EQ(t.top_k, 8u);
  EXPECT_EQ(t.metric, "mae");
  EXPECT_TRUE(t.filters.want_multivariate);
  EXPECT_TRUE(t.filters.with_trend);
  EXPECT_EQ(t.filters.horizon_class, "long");
  EXPECT_NE(t.sql.find("LIMIT 8"), std::string::npos);
  EXPECT_NE(t.sql.find("d.multivariate = 1"), std::string::npos);
  EXPECT_NE(t.sql.find("d.trend >"), std::string::npos);
  EXPECT_NE(t.sql.find("r.horizon >="), std::string::npos);
  EXPECT_NE(t.sql.find("ORDER BY avg_mae ASC"), std::string::npos);
}

TEST(Nl2Sql, IntroQuestionSeasonality) {
  // The question from the paper's abstract.
  auto t = T("Which method is best for long term forecasting on time series "
             "with strong seasonality?");
  EXPECT_EQ(t.intent, QuestionIntent::kTopKMethods);
  EXPECT_EQ(t.top_k, 1u);
  EXPECT_NE(t.sql.find("d.seasonality >"), std::string::npos);
  EXPECT_NE(t.sql.find("LIMIT 1"), std::string::npos);
}

TEST(Nl2Sql, MetricSynonyms) {
  EXPECT_EQ(T("top 3 methods by rmse").metric, "rmse");
  EXPECT_EQ(T("top 3 methods by smape").metric, "smape");
  EXPECT_EQ(T("top 3 methods by mean absolute error").metric, "mae");
  EXPECT_EQ(T("top 3 methods").metric, "mae");  // default
  // r2 orders descending.
  auto t = T("top 3 methods by r2");
  EXPECT_NE(t.sql.find("DESC"), std::string::npos);
}

TEST(Nl2Sql, DomainFilter) {
  auto t = T("best method for short-term forecasting on traffic datasets");
  EXPECT_EQ(t.filters.domain, "traffic");
  EXPECT_EQ(t.filters.horizon_class, "short");
  EXPECT_NE(t.sql.find("d.domain = 'traffic'"), std::string::npos);
  EXPECT_NE(t.sql.find("r.horizon <"), std::string::npos);
}

TEST(Nl2Sql, CompareTwoMethods) {
  auto t = T("Is theta or gbdt better on datasets with trends by rmse?");
  EXPECT_EQ(t.intent, QuestionIntent::kCompareMethods);
  ASSERT_EQ(t.mentioned_methods.size(), 2u);
  EXPECT_NE(t.sql.find("r.method IN ('theta', 'gbdt')"), std::string::npos);
  EXPECT_NE(t.sql.find("GROUP BY r.method"), std::string::npos);
}

TEST(Nl2Sql, MethodAverage) {
  auto t = T("What is the average smape of holt on electricity datasets?");
  EXPECT_EQ(t.intent, QuestionIntent::kMethodAverage);
  EXPECT_EQ(t.mentioned_methods, (std::vector<std::string>{"holt"}));
  EXPECT_NE(t.sql.find("r.method = 'holt'"), std::string::npos);
  EXPECT_NE(t.sql.find("d.domain = 'electricity'"), std::string::npos);
}

TEST(Nl2Sql, MethodNameBoundaryMatching) {
  // "holt_winters_add" must not also match the substring "holt".
  auto t = T("What is the average mae of holt_winters_add?");
  EXPECT_EQ(t.mentioned_methods,
            (std::vector<std::string>{"holt_winters_add"}));
}

TEST(Nl2Sql, CountAndListDatasets) {
  auto count = T("How many datasets have strong seasonality?");
  EXPECT_EQ(count.intent, QuestionIntent::kCountDatasets);
  EXPECT_NE(count.sql.find("COUNT(*)"), std::string::npos);
  EXPECT_EQ(count.sql.find("d."), std::string::npos);  // unqualified

  auto list = T("List all multivariate datasets with shifting.");
  EXPECT_EQ(list.intent, QuestionIntent::kListDatasets);
  EXPECT_NE(list.sql.find("multivariate = 1"), std::string::npos);
  EXPECT_NE(list.sql.find("shifting >"), std::string::npos);
}

TEST(Nl2Sql, ListMethodsAndDomains) {
  auto methods = T("Which methods are available?");
  EXPECT_EQ(methods.intent, QuestionIntent::kListMethods);
  EXPECT_NE(methods.sql.find("FROM methods"), std::string::npos);

  auto domains = T("How many datasets per domain?");
  EXPECT_EQ(domains.intent, QuestionIntent::kDomainBreakdown);
  EXPECT_NE(domains.sql.find("GROUP BY domain"), std::string::npos);
}

TEST(Nl2Sql, FamilyRankingJoinsMethodsTable) {
  auto t = T("Is the statistical or deep family better for long-term "
             "forecasting by rmse?");
  EXPECT_EQ(t.intent, QuestionIntent::kFamilyRanking);
  EXPECT_NE(t.sql.find("JOIN methods m ON r.method = m.name"),
            std::string::npos);
  EXPECT_NE(t.sql.find("GROUP BY m.family"), std::string::npos);
  EXPECT_NE(t.sql.find("avg_rmse"), std::string::npos);

  auto t2 = T("which family of methods wins on seasonal datasets?");
  EXPECT_EQ(t2.intent, QuestionIntent::kFamilyRanking);
  EXPECT_NE(t2.sql.find("d.seasonality >"), std::string::npos);
}

TEST(Nl2Sql, StationaryVsNonStationary) {
  auto s = T("top 3 methods on stationary datasets");
  EXPECT_NE(s.sql.find("d.stationarity >"), std::string::npos);
  auto ns = T("top 3 methods on non-stationary datasets");
  EXPECT_NE(ns.sql.find("d.stationarity <="), std::string::npos);
}

TEST(Nl2Sql, UnsupportedQuestionsRejected) {
  for (const char* q :
       {"", "Will the sales in Shanghai increase next month?",
        "hello there", "what is the meaning of life"}) {
    auto r = TranslateQuestion(q, kMethods, kDomains);
    EXPECT_FALSE(r.ok()) << q;
  }
}

TEST(Nl2Sql, GeneratedSqlAlwaysVerifies) {
  // Every supported question shape must produce SQL that parses and passes
  // semantic verification against the knowledge-base schema.
  sql::Database db;
  ASSERT_TRUE(db.CreateTable("datasets",
                             {{"name", sql::DataType::kText},
                              {"domain", sql::DataType::kText},
                              {"multivariate", sql::DataType::kInteger},
                              {"num_channels", sql::DataType::kInteger},
                              {"length", sql::DataType::kInteger},
                              {"seasonality", sql::DataType::kReal},
                              {"trend", sql::DataType::kReal},
                              {"transition", sql::DataType::kReal},
                              {"shifting", sql::DataType::kReal},
                              {"stationarity", sql::DataType::kReal},
                              {"correlation", sql::DataType::kReal},
                              {"period", sql::DataType::kInteger}})
                  .ok());
  ASSERT_TRUE(db.CreateTable("methods",
                             {{"name", sql::DataType::kText},
                              {"family", sql::DataType::kText},
                              {"description", sql::DataType::kText}})
                  .ok());
  ASSERT_TRUE(db.CreateTable("results",
                             {{"dataset", sql::DataType::kText},
                              {"method", sql::DataType::kText},
                              {"strategy", sql::DataType::kText},
                              {"horizon", sql::DataType::kInteger},
                              {"metric", sql::DataType::kText},
                              {"value", sql::DataType::kReal},
                              {"fit_seconds", sql::DataType::kReal},
                              {"forecast_seconds", sql::DataType::kReal}})
                  .ok());

  const char* questions[] = {
      "What are the top-8 methods (ordered by MAE) for long term forecasting "
      "on all multivariate datasets with trends?",
      "Which method is best for short term forecasting on traffic datasets "
      "with strong seasonality?",
      "Is theta or gbdt better on datasets with trends by rmse?",
      "What is the average smape of holt on electricity datasets?",
      "How many datasets have strong seasonality?",
      "List all multivariate datasets with shifting.",
      "Which methods are available?",
      "How many datasets per domain?",
      "top 5 methods by mase on univariate stationary datasets",
      "best 3 methods for long-term forecasting on health datasets",
      "Is the statistical or deep family better by rmse?",
  };
  for (const char* q : questions) {
    auto t = TranslateQuestion(q, kMethods, kDomains);
    ASSERT_TRUE(t.ok()) << q;
    auto stmt = sql::ParseSelect(t->sql);
    ASSERT_TRUE(stmt.ok()) << q << "\nSQL: " << t->sql << "\n"
                           << stmt.status().ToString();
    Status verify = sql::AnalyzeSelect(db, *stmt);
    EXPECT_TRUE(verify.ok()) << q << "\nSQL: " << t->sql << "\n"
                             << verify.ToString();
  }
}

TEST(Nl2Sql, RobustToCasingAndPunctuation) {
  auto upper = T("WHAT ARE THE TOP-4 METHODS BY RMSE ON TRAFFIC DATASETS?");
  EXPECT_EQ(upper.top_k, 4u);
  EXPECT_EQ(upper.metric, "rmse");
  EXPECT_EQ(upper.filters.domain, "traffic");

  auto spaced = T("   top 2   methods...   by   smape!!  ");
  EXPECT_EQ(spaced.top_k, 2u);
  EXPECT_EQ(spaced.metric, "smape");

  auto mixed = T("Which Method Is BEST on Multivariate datasets With Trends?");
  EXPECT_EQ(mixed.top_k, 1u);
  EXPECT_TRUE(mixed.filters.want_multivariate);
  EXPECT_TRUE(mixed.filters.with_trend);
}

TEST(Nl2Sql, DescribeFiltersReadable) {
  QuestionFilters f;
  f.want_multivariate = true;
  f.with_trend = true;
  f.horizon_class = "long";
  std::string text = DescribeFilters(f);
  EXPECT_NE(text.find("multivariate"), std::string::npos);
  EXPECT_NE(text.find("trending"), std::string::npos);
  EXPECT_NE(text.find("long-term"), std::string::npos);
  EXPECT_EQ(DescribeFilters(QuestionFilters{}), "all datasets");
}

}  // namespace
}  // namespace easytime::qa
