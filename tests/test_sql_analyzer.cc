#include "sql/analyzer.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace easytime::sql {
namespace {

class AnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable("results",
                                {{"dataset", DataType::kText},
                                 {"method", DataType::kText},
                                 {"metric", DataType::kText},
                                 {"value", DataType::kReal},
                                 {"horizon", DataType::kInteger}})
                    .ok());
    ASSERT_TRUE(db_.CreateTable("datasets",
                                {{"name", DataType::kText},
                                 {"domain", DataType::kText},
                                 {"trend", DataType::kReal}})
                    .ok());
  }

  Status Analyze(const std::string& sql) {
    auto s = ParseSelect(sql);
    EXPECT_TRUE(s.ok()) << sql << " -> " << s.status().ToString();
    if (!s.ok()) return s.status();
    return AnalyzeSelect(db_, *s);
  }

  Database db_;
};

TEST_F(AnalyzerTest, ValidQueriesPass) {
  EXPECT_TRUE(Analyze("SELECT * FROM results").ok());
  EXPECT_TRUE(Analyze("SELECT method, value FROM results WHERE value > 1")
                  .ok());
  EXPECT_TRUE(Analyze("SELECT method, AVG(value) FROM results "
                      "GROUP BY method HAVING AVG(value) < 2")
                  .ok());
  EXPECT_TRUE(Analyze("SELECT r.method FROM results r JOIN datasets d "
                      "ON r.dataset = d.name WHERE d.trend > 0.5")
                  .ok());
  EXPECT_TRUE(Analyze("SELECT COUNT(*) FROM datasets").ok());
  EXPECT_TRUE(
      Analyze("SELECT method FROM results ORDER BY value DESC LIMIT 3").ok());
}

TEST_F(AnalyzerTest, UnknownTableRejected) {
  Status s = Analyze("SELECT x FROM nonexistent");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(AnalyzerTest, UnknownColumnRejected) {
  EXPECT_EQ(Analyze("SELECT missing_col FROM results").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Analyze("SELECT results.nope FROM results").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Analyze("SELECT q.method FROM results r").code(),
            StatusCode::kNotFound);  // unknown alias
}

TEST_F(AnalyzerTest, AmbiguousColumnRejected) {
  // Both tables joined twice under different aliases share column names.
  Status s = Analyze(
      "SELECT name FROM results r JOIN datasets a ON r.dataset = a.name "
      "JOIN datasets b ON r.dataset = b.name");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(AnalyzerTest, TypeMismatchesRejected) {
  EXPECT_EQ(Analyze("SELECT method FROM results WHERE method > 3").code(),
            StatusCode::kTypeError);
  EXPECT_EQ(Analyze("SELECT method + 1 FROM results").code(),
            StatusCode::kTypeError);
  EXPECT_EQ(Analyze("SELECT SUM(method) FROM results").code(),
            StatusCode::kTypeError);
  EXPECT_EQ(Analyze("SELECT method FROM results WHERE value LIKE 'x%'")
                .code(),
            StatusCode::kTypeError);
  EXPECT_EQ(Analyze("SELECT LOWER(value) FROM results").code(),
            StatusCode::kTypeError);
}

TEST_F(AnalyzerTest, AggregatePlacementRules) {
  EXPECT_EQ(
      Analyze("SELECT method FROM results WHERE AVG(value) > 1").code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      Analyze("SELECT method FROM results GROUP BY AVG(value)").code(),
      StatusCode::kInvalidArgument);
  // Ungrouped bare column alongside aggregate.
  EXPECT_EQ(Analyze("SELECT method, AVG(value) FROM results").code(),
            StatusCode::kInvalidArgument);
  // Grouped column is fine.
  EXPECT_TRUE(
      Analyze("SELECT method, AVG(value) FROM results GROUP BY method").ok());
  // SELECT * with aggregates is rejected.
  EXPECT_EQ(Analyze("SELECT * FROM results GROUP BY method").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(AnalyzerTest, HavingWithoutGroupingRejected) {
  EXPECT_EQ(Analyze("SELECT method FROM results HAVING value > 1").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(AnalyzerTest, OrderByAliasAllowed) {
  EXPECT_TRUE(Analyze("SELECT method, AVG(value) AS avg_v FROM results "
                      "GROUP BY method ORDER BY avg_v DESC")
                  .ok());
  // Unknown order key that is neither alias nor column fails.
  EXPECT_FALSE(Analyze("SELECT method FROM results ORDER BY ghost").ok());
}

TEST_F(AnalyzerTest, FunctionArityChecked) {
  EXPECT_FALSE(Analyze("SELECT ABS(value, 2) FROM results").ok());
  EXPECT_FALSE(Analyze("SELECT SUM(value, 1) FROM results").ok());
  EXPECT_FALSE(Analyze("SELECT NOSUCHFN(value) FROM results").ok());
  EXPECT_FALSE(Analyze("SELECT MIN(*) FROM results").ok());
  EXPECT_TRUE(Analyze("SELECT COUNT(*) FROM results").ok());
}

TEST_F(AnalyzerTest, DuplicateAliasRejected) {
  Status s = Analyze(
      "SELECT r.method FROM results r JOIN datasets r ON r.method = r.name");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(AnalyzerTest, AnalyzeStatementCoversDdlAndDml) {
  auto create = ParseSql("CREATE TABLE results (x INTEGER)").ValueOrDie();
  EXPECT_EQ(AnalyzeStatement(db_, create).code(),
            StatusCode::kAlreadyExists);

  auto create_ok = ParseSql("CREATE TABLE fresh (x INTEGER)").ValueOrDie();
  EXPECT_TRUE(AnalyzeStatement(db_, create_ok).ok());

  auto ins_bad_table =
      ParseSql("INSERT INTO ghost VALUES (1)").ValueOrDie();
  EXPECT_EQ(AnalyzeStatement(db_, ins_bad_table).code(),
            StatusCode::kNotFound);

  auto ins_bad_col =
      ParseSql("INSERT INTO results (nope) VALUES (1)").ValueOrDie();
  EXPECT_EQ(AnalyzeStatement(db_, ins_bad_col).code(), StatusCode::kNotFound);

  auto ins_bad_arity =
      ParseSql("INSERT INTO results VALUES (1, 2)").ValueOrDie();
  EXPECT_EQ(AnalyzeStatement(db_, ins_bad_arity).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace easytime::sql
