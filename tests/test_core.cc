#include "core/easytime.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "store/record_store.h"
#include "test_util.h"
#include "tsdata/dataset_store.h"

namespace easytime::core {
namespace {

class EasyTimeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    EasyTime::Options opt;
    opt.suite.univariate_per_domain = 1;
    opt.suite.multivariate_total = 1;
    opt.suite.min_length = 180;
    opt.suite.max_length = 220;
    opt.seed_eval.horizon = 12;
    opt.seed_eval.metrics = {"mae", "rmse"};
    opt.seed_methods = {"naive", "seasonal_naive", "theta", "ses", "drift"};
    opt.ensemble.top_k = 2;
    opt.ensemble.ts2vec.epochs = 3;
    opt.ensemble.ts2vec.repr_dim = 8;
    opt.ensemble.ts2vec.hidden_dim = 10;
    opt.ensemble.ts2vec.depth = 2;
    opt.ensemble.classifier.epochs = 80;
    auto system = EasyTime::Create(opt);
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    system_ = system->release();
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }

  static EasyTime* system_;
};

EasyTime* EasyTimeTest::system_ = nullptr;

// Dataset persistence: a store-backed Create persists the generated suite,
// and the next Create rebuilds the repository from disk — bit-identical
// values, no regeneration.
TEST(EasyTimeDatasetStoreTest, WarmStartLoadsDatasetsFromTheStore) {
  const std::string dir = (std::filesystem::path(::testing::TempDir()) /
                           "easytime_dataset_store")
                              .string();
  std::filesystem::remove_all(dir);

  EasyTime::Options opt;
  opt.suite.univariate_per_domain = 1;
  opt.suite.multivariate_total = 1;
  opt.suite.min_length = 180;
  opt.suite.max_length = 220;
  opt.seed_eval.horizon = 12;
  opt.seed_eval.metrics = {"mae"};
  opt.seed_methods = {"naive", "drift"};
  opt.pretrain_ensemble = false;
  opt.store_dir = dir;

  std::vector<std::string> names;
  std::vector<std::vector<double>> values;
  {
    auto cold = EasyTime::Create(opt);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    ASSERT_FALSE((*cold)->restored_from_store());
    for (const auto* ds : (*cold)->repository()->All()) {
      names.push_back(ds->name());
      for (const auto& ch : ds->channels()) values.push_back(ch.values());
    }
    ASSERT_FALSE(names.empty());
  }
  ASSERT_TRUE(std::filesystem::exists(dir + "/datasets"))
      << "cold start must persist the generated datasets";

  auto warm = EasyTime::Create(opt);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE((*warm)->restored_from_store());
  std::vector<std::string> warm_names;
  std::vector<std::vector<double>> warm_values;
  for (const auto* ds : (*warm)->repository()->All()) {
    warm_names.push_back(ds->name());
    for (const auto& ch : ds->channels()) warm_values.push_back(ch.values());
  }
  EXPECT_EQ(warm_names, names) << "same datasets in the same order";
  ASSERT_EQ(warm_values.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(warm_values[i], values[i])
        << "restored channel " << i << " must round-trip bit-exactly";
  }
  std::filesystem::remove_all(dir);
}

// Reconfiguring the suite must invalidate the on-disk dataset cache: the
// persisted fingerprint no longer matches, so Create regenerates instead of
// silently serving the stale benchmark.
TEST(EasyTimeDatasetStoreTest, WarmStartRegeneratesWhenSuiteOptionsChange) {
  const std::string dir = (std::filesystem::path(::testing::TempDir()) /
                           "easytime_dataset_store_suite_change")
                              .string();
  std::filesystem::remove_all(dir);

  EasyTime::Options opt;
  opt.suite.univariate_per_domain = 1;
  opt.suite.multivariate_total = 1;
  opt.suite.min_length = 180;
  opt.suite.max_length = 220;
  opt.seed_eval.horizon = 12;
  opt.seed_eval.metrics = {"mae"};
  opt.seed_methods = {"naive"};
  opt.pretrain_ensemble = false;
  opt.store_dir = dir;
  {
    auto cold = EasyTime::Create(opt);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    ASSERT_EQ((*cold)->repository()->size(), 11u);
  }

  opt.suite.univariate_per_domain = 2;  // 10 more datasets than persisted
  auto recreated = EasyTime::Create(opt);
  ASSERT_TRUE(recreated.ok()) << recreated.status().ToString();
  EXPECT_EQ((*recreated)->repository()->size(), 21u)
      << "the stale dataset cache must not override the new suite";
  std::filesystem::remove_all(dir);
}

// A damaged dataset cache (here: a record that fails JSON decoding, behind a
// valid manifest) must not prevent startup — Create falls back to
// regeneration and rewrites the store so the NEXT start opens warm again.
TEST(EasyTimeDatasetStoreTest, DamagedDatasetStoreFallsBackToRegeneration) {
  const std::string dir = (std::filesystem::path(::testing::TempDir()) /
                           "easytime_dataset_store_damaged")
                              .string();
  std::filesystem::remove_all(dir);

  EasyTime::Options opt;
  opt.suite.univariate_per_domain = 1;
  opt.suite.multivariate_total = 1;
  opt.suite.min_length = 180;
  opt.suite.max_length = 220;
  opt.seed_eval.horizon = 12;
  opt.seed_eval.metrics = {"mae"};
  opt.seed_methods = {"naive"};
  opt.pretrain_ensemble = false;
  opt.store_dir = dir;
  {
    auto cold = EasyTime::Create(opt);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  }

  const std::string ds_dir = dir + "/datasets";
  std::filesystem::remove_all(ds_dir);
  {
    auto rs = store::RecordStore::Open(ds_dir, store::RecordStoreOptions{});
    ASSERT_TRUE(rs.ok());
    ASSERT_TRUE((*rs)->Append("definitely not a dataset").ok());
    ASSERT_TRUE(
        (*rs)->Append(tsdata::DatasetStoreManifest(opt.suite, 1)).ok());
  }

  auto damaged = EasyTime::Create(opt);
  ASSERT_TRUE(damaged.ok())
      << "a corrupt dataset cache must not block startup: "
      << damaged.status().ToString();
  EXPECT_EQ((*damaged)->repository()->size(), 11u);

  // The fallback replaced the bad store, so this start is warm again.
  auto warm = EasyTime::Create(opt);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ((*warm)->repository()->size(), 11u);
  std::filesystem::remove_all(dir);
}

TEST_F(EasyTimeTest, CreateSeedsEverything) {
  EXPECT_EQ(system_->repository()->size(), 11u);  // 10 domains + 1 mv
  EXPECT_EQ(system_->knowledge().results().size(), 11u * 5u);
  EXPECT_TRUE(system_->ensemble_engine().pretrained());
}

TEST_F(EasyTimeTest, OneClickEvaluateFromJsonConfig) {
  // S1: user edits a config and clicks once.
  auto cfg = Json::Parse(R"({
    "methods": ["holt"],
    "evaluation": {"strategy": "fixed", "horizon": 8, "metrics": ["mae"]}
  })").ValueOrDie();
  size_t before = system_->knowledge().results().size();
  auto report = system_->OneClickEvaluate(cfg);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->records.size(), system_->repository()->size());
  EXPECT_GT(system_->knowledge().results().size(), before);

  // The new results are immediately visible to Q&A.
  auto resp = system_->Ask("What is the average mae of holt?");
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->table.rows.empty());
}

TEST_F(EasyTimeTest, EvaluateMethodEverywhere) {
  auto report = system_->EvaluateMethodEverywhere("window_average");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records.size(), system_->repository()->size());
  EXPECT_FALSE(system_->EvaluateMethodEverywhere("not_a_method").ok());
}

TEST_F(EasyTimeTest, RecommendOnRepositoryDataset) {
  std::string name = system_->repository()->names()[0];
  auto rec = system_->Recommend(name, 2);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->size(), 2u);
  EXPECT_FALSE(system_->Recommend("ghost_dataset").ok());
}

TEST_F(EasyTimeTest, RecommendForUploadedValues) {
  auto v = ::easytime::testing::MakeSeasonalSeries(160, 24, 5.0, 0.0, 0.3);
  auto rec = system_->RecommendForValues(v, 3);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->size(), 3u);
}

TEST_F(EasyTimeTest, EvaluateWithEnsembleComparesMembers) {
  // S2: the AutoML button — ensemble vs individual methods on a dataset.
  std::string name = system_->repository()->names()[1];
  eval::EvalConfig cfg;
  cfg.horizon = 12;
  cfg.metrics = {"mae"};
  auto result = system_->EvaluateWithEnsemble(name, cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->members.size(), 2u);
  EXPECT_EQ(result->weights.size(), 2u);
  EXPECT_TRUE(result->ensemble.metrics.count("mae"));
  for (const auto& [mname, mres] : result->members) {
    EXPECT_TRUE(mres.metrics.count("mae")) << mname;
  }
}

TEST_F(EasyTimeTest, AskEndToEnd) {
  // S3: the Fig. 5-style question.
  auto resp = system_->Ask(
      "What are the top-3 methods (ordered by MAE) on univariate datasets?");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_TRUE(resp->verified);
  EXPECT_LE(resp->table.rows.size(), 3u);
  EXPECT_FALSE(resp->answer.empty());
  EXPECT_FALSE(system_->Ask("tell me a joke").ok());
}

TEST_F(EasyTimeTest, AskSqlPath) {
  auto resp = system_->AskSql("SELECT COUNT(*) FROM results");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->table.rows.size(), 1u);
  EXPECT_GT(resp->table.rows[0][0].AsInteger(), 0);
}

}  // namespace
}  // namespace easytime::core
