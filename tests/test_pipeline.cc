#include "pipeline/runner.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/csv.h"
#include "test_util.h"
#include "tsdata/generator.h"

namespace easytime::pipeline {
namespace {

tsdata::Repository SmallRepo() {
  tsdata::Repository repo;
  tsdata::SuiteSpec spec;
  spec.univariate_per_domain = 1;
  spec.multivariate_total = 1;
  spec.min_length = 160;
  spec.max_length = 200;
  (void)repo.AddSuite(spec);
  return repo;
}

BenchmarkConfig FastConfig() {
  BenchmarkConfig c;
  c.eval.strategy = eval::Strategy::kFixed;
  c.eval.horizon = 8;
  c.eval.metrics = {"mae", "smape"};
  c.methods = {MethodSpec{"naive", Json::Object()},
               MethodSpec{"theta", Json::Object()},
               MethodSpec{"lag_linear", Json::Object()}};
  c.num_threads = 2;
  return c;
}

TEST(BenchmarkConfig, ParsesFullSchema) {
  auto j = Json::Parse(R"({
    "datasets": ["a", "b"],
    "methods": ["naive", {"name": "knn", "config": {"k": 3}}],
    "evaluation": {"strategy": "rolling", "horizon": 12, "metrics": ["mae"]},
    "num_threads": 3,
    "output_csv": "out.csv"
  })").ValueOrDie();
  auto c = BenchmarkConfig::FromJson(j).ValueOrDie();
  EXPECT_EQ(c.datasets, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(c.methods.size(), 2u);
  EXPECT_EQ(c.methods[1].name, "knn");
  EXPECT_EQ(c.methods[1].config.GetInt("k", 0), 3);
  EXPECT_EQ(c.eval.strategy, eval::Strategy::kRolling);
  EXPECT_EQ(c.num_threads, 3u);
  EXPECT_EQ(c.output_csv, "out.csv");
}

TEST(BenchmarkConfig, RejectsUnknownMethod) {
  auto j = Json::Parse(R"({"methods": ["hyperprophet"]})").ValueOrDie();
  EXPECT_FALSE(BenchmarkConfig::FromJson(j).ok());
}

TEST(BenchmarkConfig, RejectsMalformedEntries) {
  EXPECT_FALSE(BenchmarkConfig::FromJson(Json(3.0)).ok());
  auto bad = Json::Parse(R"({"methods": [42]})").ValueOrDie();
  EXPECT_FALSE(BenchmarkConfig::FromJson(bad).ok());
  auto noname = Json::Parse(R"({"methods": [{"config": {}}]})").ValueOrDie();
  EXPECT_FALSE(BenchmarkConfig::FromJson(noname).ok());
}

TEST(PipelineRunner, RunsAllPairs) {
  tsdata::Repository repo = SmallRepo();
  PipelineRunner runner(&repo, FastConfig());
  auto report = runner.Run().ValueOrDie();
  EXPECT_EQ(report.records.size(), repo.size() * 3);
  // Every record carries metadata.
  for (const auto& rec : report.records) {
    EXPECT_FALSE(rec.dataset.empty());
    EXPECT_FALSE(rec.method.empty());
    EXPECT_EQ(rec.strategy, "fixed");
    EXPECT_EQ(rec.horizon, 8u);
    EXPECT_FALSE(rec.domain.empty());
  }
  // The easy statistical methods should succeed everywhere.
  EXPECT_EQ(report.Successful().size(), report.records.size());
  EXPECT_GT(report.wall_seconds, 0.0);
}

TEST(PipelineRunner, SubsetOfDatasets) {
  tsdata::Repository repo = SmallRepo();
  BenchmarkConfig c = FastConfig();
  c.datasets = {repo.names()[0], repo.names()[1]};
  auto report = PipelineRunner(&repo, c).Run().ValueOrDie();
  EXPECT_EQ(report.records.size(), 2u * 3u);
}

TEST(PipelineRunner, UnknownDatasetFails) {
  tsdata::Repository repo = SmallRepo();
  BenchmarkConfig c = FastConfig();
  c.datasets = {"definitely_missing"};
  EXPECT_FALSE(PipelineRunner(&repo, c).Run().ok());
}

TEST(PipelineRunner, PerPairFailureIsRecordedNotFatal) {
  tsdata::Repository repo;
  tsdata::Dataset tiny("tiny");
  (void)tiny.AddChannel(
      tsdata::Series("a", {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}));
  (void)repo.Add(std::move(tiny));

  BenchmarkConfig c = FastConfig();
  c.eval.horizon = 4;
  c.methods = {MethodSpec{"naive", Json::Object()},
               MethodSpec{"arima", Json::Object()}};  // too short for ARIMA
  auto report = PipelineRunner(&repo, c).Run().ValueOrDie();
  ASSERT_EQ(report.records.size(), 2u);
  size_t failed = 0;
  for (const auto& rec : report.records) {
    if (!rec.status.ok()) ++failed;
  }
  EXPECT_EQ(failed, 1u);
  EXPECT_EQ(report.Successful().size(), 1u);
}

TEST(BenchmarkReport, LeaderboardRanksByMetric) {
  BenchmarkReport report;
  auto add = [&](const std::string& method, double mae) {
    RunRecord rec;
    rec.dataset = "d";
    rec.method = method;
    rec.metrics["mae"] = mae;
    rec.status = Status::OK();
    report.records.push_back(rec);
  };
  add("good", 1.0);
  add("bad", 5.0);
  add("good", 2.0);
  add("bad", 6.0);
  auto lb = report.Leaderboard("mae");
  ASSERT_EQ(lb.size(), 2u);
  EXPECT_EQ(lb[0].first, "good");
  EXPECT_NEAR(lb[0].second, 1.5, 1e-12);
  EXPECT_EQ(lb[1].first, "bad");
  // r2 ranks descending.
  for (auto& rec : report.records) rec.metrics["r2"] = rec.method == "good" ? 0.9 : 0.1;
  auto lb2 = report.Leaderboard("r2");
  EXPECT_EQ(lb2[0].first, "good");
}

TEST(BenchmarkReport, WritesCsvAndFormatsTable) {
  tsdata::Repository repo = SmallRepo();
  BenchmarkConfig c = FastConfig();
  c.datasets = {repo.names()[0]};
  auto report = PipelineRunner(&repo, c).Run().ValueOrDie();

  std::string table = report.FormatTable({"mae"});
  EXPECT_NE(table.find("dataset"), std::string::npos);
  EXPECT_NE(table.find("naive"), std::string::npos);

  std::string path =
      (std::filesystem::temp_directory_path() / "easytime_report.csv")
          .string();
  ASSERT_TRUE(report.WriteCsv(path).ok());
  auto doc = ReadCsvFile(path).ValueOrDie();
  EXPECT_EQ(doc.rows.size(), report.records.size());
  EXPECT_GE(doc.ColumnIndex("mae"), 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace easytime::pipeline
