#include <gtest/gtest.h>

#include "methods/gbdt.h"
#include "methods/knn.h"
#include "methods/linear_models.h"
#include "methods/window_util.h"
#include "test_util.h"

namespace easytime::methods {
namespace {

using ::easytime::testing::MakeLinearSeries;
using ::easytime::testing::MakeSeasonalSeries;

TEST(MakeWindows, ShapesAndContents) {
  std::vector<double> v = {0, 1, 2, 3, 4, 5};
  auto wd = MakeWindows(v, 3, 2).ValueOrDie();
  EXPECT_EQ(wd.inputs.size(), 2u);
  EXPECT_EQ(wd.inputs[0], (std::vector<double>{0, 1, 2}));
  EXPECT_EQ(wd.targets[0], (std::vector<double>{3, 4}));
  EXPECT_EQ(wd.inputs[1], (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(wd.targets[1], (std::vector<double>{4, 5}));
}

TEST(MakeWindows, Validation) {
  EXPECT_FALSE(MakeWindows({1, 2}, 0, 1).ok());
  EXPECT_FALSE(MakeWindows({1, 2}, 1, 0).ok());
  EXPECT_FALSE(MakeWindows({1, 2}, 4, 4).ok());
}

TEST(ChooseLookback, RespectsPeriodAndBounds) {
  EXPECT_EQ(ChooseLookback(500, 24, 12), 48u);  // 2 periods
  size_t lb = ChooseLookback(40, 0, 8);
  EXPECT_GE(lb, 8u);                 // at least horizon
  EXPECT_LE(lb + 8 + 1, 41u);        // leaves windows
}

TEST(RecursiveMultiStep, ExtendsBeyondTrainedHorizon) {
  // Model predicts [last+1, last+2] per call.
  auto predict = [](const std::vector<double>& w) {
    return std::vector<double>{w.back() + 1.0, w.back() + 2.0};
  };
  auto fc = RecursiveMultiStep({0, 1, 2}, 2, 2, 5, predict);
  ASSERT_EQ(fc.size(), 5u);
  EXPECT_DOUBLE_EQ(fc[0], 3.0);
  EXPECT_DOUBLE_EQ(fc[1], 4.0);
  EXPECT_DOUBLE_EQ(fc[2], 5.0);  // recursion: window now ends at 4
  EXPECT_DOUBLE_EQ(fc[3], 6.0);
  EXPECT_DOUBLE_EQ(fc[4], 7.0);
}

TEST(LagLinear, RecoversLinearContinuation) {
  auto v = MakeLinearSeries(100, 3.0, 2.0);
  LagLinearForecaster f(1e-6);
  FitContext ctx;
  ctx.horizon = 6;
  ASSERT_TRUE(f.Fit(v, ctx).ok());
  auto fc = f.Forecast(6).ValueOrDie();
  for (size_t h = 0; h < 6; ++h) {
    EXPECT_NEAR(fc[h], 3.0 + 2.0 * static_cast<double>(100 + h), 0.5);
  }
}

TEST(LagLinear, ForecastFromConditionsOnNewHistory) {
  auto v = MakeLinearSeries(100, 0.0, 1.0);
  LagLinearForecaster f(1e-6);
  FitContext ctx;
  ctx.horizon = 3;
  ASSERT_TRUE(f.Fit(v, ctx).ok());
  // New history shifted by +1000: prediction must follow it (linear model
  // on lags extrapolates the same slope from the new level).
  std::vector<double> shifted = MakeLinearSeries(60, 1000.0, 1.0);
  auto fc = f.ForecastFrom(shifted, 3).ValueOrDie();
  EXPECT_NEAR(fc[0], 1060.0, 2.0);
}

TEST(NLinear, InvariantToLevelShift) {
  auto v = MakeSeasonalSeries(120, 12, 4.0, 0.0, 0.1);
  NLinearForecaster f(1e-4);
  FitContext ctx;
  ctx.horizon = 6;
  ctx.period_hint = 12;
  ASSERT_TRUE(f.Fit(v, ctx).ok());
  auto base = f.Forecast(6).ValueOrDie();
  // Shift history by a constant: forecasts shift by the same constant.
  std::vector<double> shifted = v;
  for (auto& x : shifted) x += 500.0;
  auto moved = f.ForecastFrom(shifted, 6).ValueOrDie();
  for (size_t h = 0; h < 6; ++h) {
    EXPECT_NEAR(moved[h] - base[h], 500.0, 1e-6);
  }
}

TEST(DLinear, TracksTrendPlusSeason) {
  auto v = MakeSeasonalSeries(144, 12, 5.0, 0.3, 0.15);
  std::vector<double> train(v.begin(), v.end() - 12);
  std::vector<double> actual(v.end() - 12, v.end());
  DLinearForecaster f(1e-3);
  FitContext ctx;
  ctx.horizon = 12;
  ctx.period_hint = 12;
  ASSERT_TRUE(f.Fit(train, ctx).ok());
  auto fc = f.Forecast(12).ValueOrDie();
  double mae = 0.0;
  for (size_t h = 0; h < 12; ++h) mae += std::fabs(fc[h] - actual[h]);
  mae /= 12.0;
  EXPECT_LT(mae, 1.5);
}

TEST(Knn, NearestPatternDrivesForecast) {
  // Periodic sawtooth: the continuation of the matched pattern is exact.
  std::vector<double> v;
  for (int rep = 0; rep < 30; ++rep) {
    for (int i = 0; i < 8; ++i) v.push_back(static_cast<double>(i));
  }
  KnnForecaster f(3);
  FitContext ctx;
  ctx.horizon = 4;
  ctx.period_hint = 8;
  ASSERT_TRUE(f.Fit(v, ctx).ok());
  auto fc = f.Forecast(4).ValueOrDie();
  // History ends at 7; continuation is 0,1,2,3.
  EXPECT_NEAR(fc[0], 0.0, 0.5);
  EXPECT_NEAR(fc[3], 3.0, 0.5);
}

TEST(Knn, SingleNeighborEqualsNearestContinuation) {
  std::vector<double> v;
  for (int rep = 0; rep < 20; ++rep) {
    for (int i = 0; i < 6; ++i) v.push_back(i == 3 ? 10.0 : 0.0);
  }
  KnnForecaster f(1);
  FitContext ctx;
  ctx.horizon = 6;
  ASSERT_TRUE(f.Fit(v, ctx).ok());
  auto fc = f.Forecast(6).ValueOrDie();
  for (double x : fc) EXPECT_TRUE(std::isfinite(x));
}

TEST(Gbdt, LearnsSquareWave) {
  // A square wave is piecewise-constant — trees express it exactly while
  // the phase logic is awkward for linear models.
  std::vector<double> v;
  for (int t = 0; t < 400; ++t) v.push_back(t % 8 < 4 ? 0.0 : 10.0);
  GbdtForecaster::Options opt;
  opt.lookback = 8;
  GbdtForecaster f(opt);
  ASSERT_TRUE(f.Fit(v, {}).ok());
  EXPECT_EQ(f.num_trees(), opt.num_trees);

  // Continuation: t = 400..407 -> 0,0,0,0,10,10,10,10.
  auto fc = f.Forecast(8).ValueOrDie();
  for (size_t h = 0; h < 8; ++h) {
    double expected = (400 + h) % 8 < 4 ? 0.0 : 10.0;
    EXPECT_NEAR(fc[h], expected, 2.0) << "h=" << h;
  }
  // Conditioning on an in-distribution history flips the prediction.
  auto next_low = f.ForecastFrom({0, 0, 0, 0, 10, 10, 10, 10}, 1).ValueOrDie();
  auto next_high = f.ForecastFrom({10, 10, 10, 10, 0, 0, 0, 0}, 1).ValueOrDie();
  EXPECT_LT(next_low[0], 3.0);
  EXPECT_GT(next_high[0], 7.0);
}

TEST(RegressionTree, SplitsOnInformativeFeature) {
  // y depends on feature 1 only.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    double f1 = i % 2 == 0 ? 0.0 : 1.0;
    x.push_back({static_cast<double>(i), f1});
    y.push_back(f1 * 10.0);
  }
  RegressionTree tree;
  RegressionTree::Options opt;
  opt.max_depth = 2;
  tree.Fit(x, y, opt);
  EXPECT_NEAR(tree.Predict({50.0, 0.0}), 0.0, 0.5);
  EXPECT_NEAR(tree.Predict({51.0, 1.0}), 10.0, 0.5);
}

TEST(RegressionTree, LeafWhenPure) {
  std::vector<std::vector<double>> x = {{1}, {2}, {3}, {4}};
  std::vector<double> y = {5, 5, 5, 5};
  RegressionTree tree;
  tree.Fit(x, y, {});
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.Predict({9}), 5.0);
}

}  // namespace
}  // namespace easytime::methods
