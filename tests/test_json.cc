#include "common/json.h"

#include <gtest/gtest.h>

namespace easytime {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Json::Parse("null").ValueOrDie().is_null());
  EXPECT_EQ(Json::Parse("true").ValueOrDie().AsBool(), true);
  EXPECT_EQ(Json::Parse("false").ValueOrDie().AsBool(), false);
  EXPECT_DOUBLE_EQ(Json::Parse("3.25").ValueOrDie().AsDouble(), 3.25);
  EXPECT_EQ(Json::Parse("-17").ValueOrDie().AsInt(), -17);
  EXPECT_DOUBLE_EQ(Json::Parse("1e3").ValueOrDie().AsDouble(), 1000.0);
  EXPECT_EQ(Json::Parse("\"hi\"").ValueOrDie().AsString(), "hi");
}

TEST(JsonParse, Escapes) {
  auto j = Json::Parse(R"("a\"b\\c\nd\t")");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->AsString(), "a\"b\\c\nd\t");
  auto u = Json::Parse(R"("Aé")");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->AsString(), "A\xc3\xa9");
}

TEST(JsonParse, NestedStructures) {
  auto j = Json::Parse(R"({"a": [1, 2, {"b": true}], "c": {"d": null}})");
  ASSERT_TRUE(j.ok());
  EXPECT_TRUE(j->is_object());
  const Json& a = j->Get("a");
  ASSERT_TRUE(a.is_array());
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(a.items()[2].Get("b").AsBool());
  EXPECT_TRUE(j->Get("c").Get("d").is_null());
}

TEST(JsonParse, Errors) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());  // trailing garbage
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
}

TEST(JsonDump, RoundTrip) {
  auto j = Json::Parse(R"({"name":"easytime","n":3,"arr":[1,2.5,"x"],"ok":true})");
  ASSERT_TRUE(j.ok());
  auto again = Json::Parse(j->Dump());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->GetString("name", ""), "easytime");
  EXPECT_EQ(again->GetInt("n", 0), 3);
  EXPECT_EQ(again->Get("arr").size(), 3u);
}

TEST(JsonDump, PrettyPrintContainsNewlines) {
  Json obj = Json::Object();
  obj.Set("a", 1);
  std::string pretty = obj.Dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_TRUE(Json::Parse(pretty).ok());
}

TEST(JsonObject, PreservesInsertionOrder) {
  Json obj = Json::Object();
  obj.Set("z", 1);
  obj.Set("a", 2);
  obj.Set("m", 3);
  EXPECT_EQ(obj.keys(), (std::vector<std::string>{"z", "a", "m"}));
  obj.Set("a", 9);  // overwrite keeps position
  EXPECT_EQ(obj.keys().size(), 3u);
  EXPECT_EQ(obj.GetInt("a", 0), 9);
}

TEST(JsonTypedGetters, Fallbacks) {
  Json obj = Json::Object();
  obj.Set("d", 2.5);
  obj.Set("s", "text");
  obj.Set("b", true);
  EXPECT_DOUBLE_EQ(obj.GetDouble("d", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(obj.GetDouble("missing", -1.0), -1.0);
  EXPECT_EQ(obj.GetString("s", ""), "text");
  EXPECT_EQ(obj.GetString("d", "fallback"), "fallback");  // wrong type
  EXPECT_TRUE(obj.GetBool("b", false));
  EXPECT_TRUE(obj.GetBool("missing", true));
}

TEST(JsonNumber, IntegersDumpWithoutDecimalPoint) {
  Json j(static_cast<int64_t>(42));
  EXPECT_EQ(j.Dump(), "42");
  Json f(2.5);
  EXPECT_EQ(f.Dump(), "2.5");
}

TEST(JsonString, EscapedOnDump) {
  Json j(std::string("a\"b\nc"));
  EXPECT_EQ(j.Dump(), "\"a\\\"b\\nc\"");
}

}  // namespace
}  // namespace easytime
