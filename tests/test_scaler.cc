#include "tsdata/scaler.h"

#include <gtest/gtest.h>

#include "common/math_util.h"

namespace easytime::tsdata {
namespace {

TEST(ZScoreScaler, NormalizesTrainToUnit) {
  ZScoreScaler s;
  std::vector<double> train = {2, 4, 6, 8};
  ASSERT_TRUE(s.Fit(train).ok());
  auto t = s.Transform(train);
  EXPECT_NEAR(Mean(t), 0.0, 1e-12);
  EXPECT_NEAR(StdDev(t), 1.0, 1e-12);
}

TEST(ZScoreScaler, InverseRoundTrips) {
  ZScoreScaler s;
  ASSERT_TRUE(s.Fit({1, 5, 9, 13}).ok());
  std::vector<double> v = {-3.0, 0.0, 2.5, 100.0};
  auto round = s.Inverse(s.Transform(v));
  for (size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(round[i], v[i], 1e-9);
}

TEST(ZScoreScaler, ConstantSeriesCentersOnly) {
  ZScoreScaler s;
  ASSERT_TRUE(s.Fit({5, 5, 5}).ok());
  auto t = s.Transform({5, 6});
  EXPECT_NEAR(t[0], 0.0, 1e-12);
  EXPECT_NEAR(t[1], 1.0, 1e-12);  // stddev falls back to 1
}

TEST(ZScoreScaler, EmptyTrainRejected) {
  ZScoreScaler s;
  EXPECT_FALSE(s.Fit({}).ok());
}

TEST(MinMaxScaler, MapsTrainRangeToUnitInterval) {
  MinMaxScaler s;
  ASSERT_TRUE(s.Fit({10, 20, 30}).ok());
  auto t = s.Transform({10, 20, 30, 40});
  EXPECT_NEAR(t[0], 0.0, 1e-12);
  EXPECT_NEAR(t[1], 0.5, 1e-12);
  EXPECT_NEAR(t[2], 1.0, 1e-12);
  EXPECT_NEAR(t[3], 1.5, 1e-12);  // extrapolates beyond train range
}

TEST(MinMaxScaler, InverseRoundTrips) {
  MinMaxScaler s;
  ASSERT_TRUE(s.Fit({-5, 0, 15}).ok());
  std::vector<double> v = {-5, 3, 15, 20};
  auto round = s.Inverse(s.Transform(v));
  for (size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(round[i], v[i], 1e-9);
}

TEST(IdentityScaler, PassThrough) {
  IdentityScaler s;
  ASSERT_TRUE(s.Fit({}).ok());  // identity accepts anything
  std::vector<double> v = {1, 2, 3};
  EXPECT_EQ(s.Transform(v), v);
  EXPECT_EQ(s.Inverse(v), v);
}

TEST(MakeScaler, Factory) {
  EXPECT_EQ(MakeScaler("zscore").ValueOrDie()->name(), "zscore");
  EXPECT_EQ(MakeScaler("standard").ValueOrDie()->name(), "zscore");
  EXPECT_EQ(MakeScaler("minmax").ValueOrDie()->name(), "minmax");
  EXPECT_EQ(MakeScaler("none").ValueOrDie()->name(), "none");
  EXPECT_EQ(MakeScaler("").ValueOrDie()->name(), "none");
  EXPECT_FALSE(MakeScaler("quantile").ok());
}

}  // namespace
}  // namespace easytime::tsdata
