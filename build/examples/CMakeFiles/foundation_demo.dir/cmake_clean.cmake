file(REMOVE_RECURSE
  "CMakeFiles/foundation_demo.dir/foundation_demo.cpp.o"
  "CMakeFiles/foundation_demo.dir/foundation_demo.cpp.o.d"
  "foundation_demo"
  "foundation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/foundation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
