# Empty compiler generated dependencies file for foundation_demo.
# This may be replaced when dependencies are built.
