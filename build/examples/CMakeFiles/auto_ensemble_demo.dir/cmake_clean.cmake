file(REMOVE_RECURSE
  "CMakeFiles/auto_ensemble_demo.dir/auto_ensemble_demo.cpp.o"
  "CMakeFiles/auto_ensemble_demo.dir/auto_ensemble_demo.cpp.o.d"
  "auto_ensemble_demo"
  "auto_ensemble_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_ensemble_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
