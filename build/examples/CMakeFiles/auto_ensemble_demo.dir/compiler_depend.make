# Empty compiler generated dependencies file for auto_ensemble_demo.
# This may be replaced when dependencies are built.
