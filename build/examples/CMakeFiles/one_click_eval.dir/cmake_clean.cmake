file(REMOVE_RECURSE
  "CMakeFiles/one_click_eval.dir/one_click_eval.cpp.o"
  "CMakeFiles/one_click_eval.dir/one_click_eval.cpp.o.d"
  "one_click_eval"
  "one_click_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/one_click_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
