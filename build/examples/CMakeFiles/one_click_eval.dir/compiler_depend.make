# Empty compiler generated dependencies file for one_click_eval.
# This may be replaced when dependencies are built.
