file(REMOVE_RECURSE
  "CMakeFiles/qa_demo.dir/qa_demo.cpp.o"
  "CMakeFiles/qa_demo.dir/qa_demo.cpp.o.d"
  "qa_demo"
  "qa_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
