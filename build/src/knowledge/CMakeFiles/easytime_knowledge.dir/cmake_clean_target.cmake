file(REMOVE_RECURSE
  "libeasytime_knowledge.a"
)
