file(REMOVE_RECURSE
  "CMakeFiles/easytime_knowledge.dir/knowledge_base.cc.o"
  "CMakeFiles/easytime_knowledge.dir/knowledge_base.cc.o.d"
  "libeasytime_knowledge.a"
  "libeasytime_knowledge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easytime_knowledge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
