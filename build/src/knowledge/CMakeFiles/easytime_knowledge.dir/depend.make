# Empty dependencies file for easytime_knowledge.
# This may be replaced when dependencies are built.
