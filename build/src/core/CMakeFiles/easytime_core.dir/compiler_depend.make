# Empty compiler generated dependencies file for easytime_core.
# This may be replaced when dependencies are built.
