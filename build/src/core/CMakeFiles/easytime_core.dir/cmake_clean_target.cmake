file(REMOVE_RECURSE
  "libeasytime_core.a"
)
