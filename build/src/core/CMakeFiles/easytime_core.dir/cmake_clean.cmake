file(REMOVE_RECURSE
  "CMakeFiles/easytime_core.dir/easytime.cc.o"
  "CMakeFiles/easytime_core.dir/easytime.cc.o.d"
  "libeasytime_core.a"
  "libeasytime_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easytime_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
