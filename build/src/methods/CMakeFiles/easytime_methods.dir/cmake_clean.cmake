file(REMOVE_RECURSE
  "CMakeFiles/easytime_methods.dir/arima.cc.o"
  "CMakeFiles/easytime_methods.dir/arima.cc.o.d"
  "CMakeFiles/easytime_methods.dir/baselines.cc.o"
  "CMakeFiles/easytime_methods.dir/baselines.cc.o.d"
  "CMakeFiles/easytime_methods.dir/deep.cc.o"
  "CMakeFiles/easytime_methods.dir/deep.cc.o.d"
  "CMakeFiles/easytime_methods.dir/ets.cc.o"
  "CMakeFiles/easytime_methods.dir/ets.cc.o.d"
  "CMakeFiles/easytime_methods.dir/exponential.cc.o"
  "CMakeFiles/easytime_methods.dir/exponential.cc.o.d"
  "CMakeFiles/easytime_methods.dir/forecaster.cc.o"
  "CMakeFiles/easytime_methods.dir/forecaster.cc.o.d"
  "CMakeFiles/easytime_methods.dir/gbdt.cc.o"
  "CMakeFiles/easytime_methods.dir/gbdt.cc.o.d"
  "CMakeFiles/easytime_methods.dir/knn.cc.o"
  "CMakeFiles/easytime_methods.dir/knn.cc.o.d"
  "CMakeFiles/easytime_methods.dir/linear_models.cc.o"
  "CMakeFiles/easytime_methods.dir/linear_models.cc.o.d"
  "CMakeFiles/easytime_methods.dir/registry.cc.o"
  "CMakeFiles/easytime_methods.dir/registry.cc.o.d"
  "CMakeFiles/easytime_methods.dir/theta.cc.o"
  "CMakeFiles/easytime_methods.dir/theta.cc.o.d"
  "CMakeFiles/easytime_methods.dir/window_util.cc.o"
  "CMakeFiles/easytime_methods.dir/window_util.cc.o.d"
  "libeasytime_methods.a"
  "libeasytime_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easytime_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
