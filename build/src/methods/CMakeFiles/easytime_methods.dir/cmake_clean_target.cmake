file(REMOVE_RECURSE
  "libeasytime_methods.a"
)
