# Empty compiler generated dependencies file for easytime_methods.
# This may be replaced when dependencies are built.
