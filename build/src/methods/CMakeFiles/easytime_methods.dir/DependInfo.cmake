
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/methods/arima.cc" "src/methods/CMakeFiles/easytime_methods.dir/arima.cc.o" "gcc" "src/methods/CMakeFiles/easytime_methods.dir/arima.cc.o.d"
  "/root/repo/src/methods/baselines.cc" "src/methods/CMakeFiles/easytime_methods.dir/baselines.cc.o" "gcc" "src/methods/CMakeFiles/easytime_methods.dir/baselines.cc.o.d"
  "/root/repo/src/methods/deep.cc" "src/methods/CMakeFiles/easytime_methods.dir/deep.cc.o" "gcc" "src/methods/CMakeFiles/easytime_methods.dir/deep.cc.o.d"
  "/root/repo/src/methods/ets.cc" "src/methods/CMakeFiles/easytime_methods.dir/ets.cc.o" "gcc" "src/methods/CMakeFiles/easytime_methods.dir/ets.cc.o.d"
  "/root/repo/src/methods/exponential.cc" "src/methods/CMakeFiles/easytime_methods.dir/exponential.cc.o" "gcc" "src/methods/CMakeFiles/easytime_methods.dir/exponential.cc.o.d"
  "/root/repo/src/methods/forecaster.cc" "src/methods/CMakeFiles/easytime_methods.dir/forecaster.cc.o" "gcc" "src/methods/CMakeFiles/easytime_methods.dir/forecaster.cc.o.d"
  "/root/repo/src/methods/gbdt.cc" "src/methods/CMakeFiles/easytime_methods.dir/gbdt.cc.o" "gcc" "src/methods/CMakeFiles/easytime_methods.dir/gbdt.cc.o.d"
  "/root/repo/src/methods/knn.cc" "src/methods/CMakeFiles/easytime_methods.dir/knn.cc.o" "gcc" "src/methods/CMakeFiles/easytime_methods.dir/knn.cc.o.d"
  "/root/repo/src/methods/linear_models.cc" "src/methods/CMakeFiles/easytime_methods.dir/linear_models.cc.o" "gcc" "src/methods/CMakeFiles/easytime_methods.dir/linear_models.cc.o.d"
  "/root/repo/src/methods/registry.cc" "src/methods/CMakeFiles/easytime_methods.dir/registry.cc.o" "gcc" "src/methods/CMakeFiles/easytime_methods.dir/registry.cc.o.d"
  "/root/repo/src/methods/theta.cc" "src/methods/CMakeFiles/easytime_methods.dir/theta.cc.o" "gcc" "src/methods/CMakeFiles/easytime_methods.dir/theta.cc.o.d"
  "/root/repo/src/methods/window_util.cc" "src/methods/CMakeFiles/easytime_methods.dir/window_util.cc.o" "gcc" "src/methods/CMakeFiles/easytime_methods.dir/window_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/easytime_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tsdata/CMakeFiles/easytime_tsdata.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/easytime_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
