file(REMOVE_RECURSE
  "CMakeFiles/easytime_pipeline.dir/benchmark_config.cc.o"
  "CMakeFiles/easytime_pipeline.dir/benchmark_config.cc.o.d"
  "CMakeFiles/easytime_pipeline.dir/plot.cc.o"
  "CMakeFiles/easytime_pipeline.dir/plot.cc.o.d"
  "CMakeFiles/easytime_pipeline.dir/runner.cc.o"
  "CMakeFiles/easytime_pipeline.dir/runner.cc.o.d"
  "libeasytime_pipeline.a"
  "libeasytime_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easytime_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
