
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/benchmark_config.cc" "src/pipeline/CMakeFiles/easytime_pipeline.dir/benchmark_config.cc.o" "gcc" "src/pipeline/CMakeFiles/easytime_pipeline.dir/benchmark_config.cc.o.d"
  "/root/repo/src/pipeline/plot.cc" "src/pipeline/CMakeFiles/easytime_pipeline.dir/plot.cc.o" "gcc" "src/pipeline/CMakeFiles/easytime_pipeline.dir/plot.cc.o.d"
  "/root/repo/src/pipeline/runner.cc" "src/pipeline/CMakeFiles/easytime_pipeline.dir/runner.cc.o" "gcc" "src/pipeline/CMakeFiles/easytime_pipeline.dir/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/easytime_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tsdata/CMakeFiles/easytime_tsdata.dir/DependInfo.cmake"
  "/root/repo/build/src/methods/CMakeFiles/easytime_methods.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/easytime_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/easytime_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
