file(REMOVE_RECURSE
  "libeasytime_pipeline.a"
)
