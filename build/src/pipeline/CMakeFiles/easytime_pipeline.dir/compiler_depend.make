# Empty compiler generated dependencies file for easytime_pipeline.
# This may be replaced when dependencies are built.
