file(REMOVE_RECURSE
  "CMakeFiles/easytime_nn.dir/contrastive.cc.o"
  "CMakeFiles/easytime_nn.dir/contrastive.cc.o.d"
  "CMakeFiles/easytime_nn.dir/gru.cc.o"
  "CMakeFiles/easytime_nn.dir/gru.cc.o.d"
  "CMakeFiles/easytime_nn.dir/layers.cc.o"
  "CMakeFiles/easytime_nn.dir/layers.cc.o.d"
  "CMakeFiles/easytime_nn.dir/loss.cc.o"
  "CMakeFiles/easytime_nn.dir/loss.cc.o.d"
  "CMakeFiles/easytime_nn.dir/matrix.cc.o"
  "CMakeFiles/easytime_nn.dir/matrix.cc.o.d"
  "CMakeFiles/easytime_nn.dir/optimizer.cc.o"
  "CMakeFiles/easytime_nn.dir/optimizer.cc.o.d"
  "libeasytime_nn.a"
  "libeasytime_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easytime_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
