file(REMOVE_RECURSE
  "libeasytime_nn.a"
)
