# Empty dependencies file for easytime_nn.
# This may be replaced when dependencies are built.
