file(REMOVE_RECURSE
  "libeasytime_ensemble.a"
)
