file(REMOVE_RECURSE
  "CMakeFiles/easytime_ensemble.dir/auto_ensemble.cc.o"
  "CMakeFiles/easytime_ensemble.dir/auto_ensemble.cc.o.d"
  "CMakeFiles/easytime_ensemble.dir/classifier.cc.o"
  "CMakeFiles/easytime_ensemble.dir/classifier.cc.o.d"
  "CMakeFiles/easytime_ensemble.dir/foundation.cc.o"
  "CMakeFiles/easytime_ensemble.dir/foundation.cc.o.d"
  "CMakeFiles/easytime_ensemble.dir/ts2vec.cc.o"
  "CMakeFiles/easytime_ensemble.dir/ts2vec.cc.o.d"
  "libeasytime_ensemble.a"
  "libeasytime_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easytime_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
