# Empty compiler generated dependencies file for easytime_ensemble.
# This may be replaced when dependencies are built.
