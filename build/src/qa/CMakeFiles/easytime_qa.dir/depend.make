# Empty dependencies file for easytime_qa.
# This may be replaced when dependencies are built.
