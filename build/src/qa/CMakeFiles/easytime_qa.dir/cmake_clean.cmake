file(REMOVE_RECURSE
  "CMakeFiles/easytime_qa.dir/chart.cc.o"
  "CMakeFiles/easytime_qa.dir/chart.cc.o.d"
  "CMakeFiles/easytime_qa.dir/nl2sql.cc.o"
  "CMakeFiles/easytime_qa.dir/nl2sql.cc.o.d"
  "CMakeFiles/easytime_qa.dir/qa_engine.cc.o"
  "CMakeFiles/easytime_qa.dir/qa_engine.cc.o.d"
  "libeasytime_qa.a"
  "libeasytime_qa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easytime_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
