file(REMOVE_RECURSE
  "libeasytime_qa.a"
)
