file(REMOVE_RECURSE
  "CMakeFiles/easytime_eval.dir/evaluator.cc.o"
  "CMakeFiles/easytime_eval.dir/evaluator.cc.o.d"
  "CMakeFiles/easytime_eval.dir/metrics.cc.o"
  "CMakeFiles/easytime_eval.dir/metrics.cc.o.d"
  "libeasytime_eval.a"
  "libeasytime_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easytime_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
