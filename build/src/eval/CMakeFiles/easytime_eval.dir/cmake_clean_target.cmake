file(REMOVE_RECURSE
  "libeasytime_eval.a"
)
