# Empty dependencies file for easytime_eval.
# This may be replaced when dependencies are built.
