# Empty dependencies file for easytime_sql.
# This may be replaced when dependencies are built.
