file(REMOVE_RECURSE
  "libeasytime_sql.a"
)
