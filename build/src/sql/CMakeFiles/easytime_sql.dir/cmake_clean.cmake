file(REMOVE_RECURSE
  "CMakeFiles/easytime_sql.dir/analyzer.cc.o"
  "CMakeFiles/easytime_sql.dir/analyzer.cc.o.d"
  "CMakeFiles/easytime_sql.dir/ast.cc.o"
  "CMakeFiles/easytime_sql.dir/ast.cc.o.d"
  "CMakeFiles/easytime_sql.dir/executor.cc.o"
  "CMakeFiles/easytime_sql.dir/executor.cc.o.d"
  "CMakeFiles/easytime_sql.dir/lexer.cc.o"
  "CMakeFiles/easytime_sql.dir/lexer.cc.o.d"
  "CMakeFiles/easytime_sql.dir/parser.cc.o"
  "CMakeFiles/easytime_sql.dir/parser.cc.o.d"
  "CMakeFiles/easytime_sql.dir/table.cc.o"
  "CMakeFiles/easytime_sql.dir/table.cc.o.d"
  "CMakeFiles/easytime_sql.dir/value.cc.o"
  "CMakeFiles/easytime_sql.dir/value.cc.o.d"
  "libeasytime_sql.a"
  "libeasytime_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easytime_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
