file(REMOVE_RECURSE
  "libeasytime_common.a"
)
