file(REMOVE_RECURSE
  "CMakeFiles/easytime_common.dir/csv.cc.o"
  "CMakeFiles/easytime_common.dir/csv.cc.o.d"
  "CMakeFiles/easytime_common.dir/json.cc.o"
  "CMakeFiles/easytime_common.dir/json.cc.o.d"
  "CMakeFiles/easytime_common.dir/logging.cc.o"
  "CMakeFiles/easytime_common.dir/logging.cc.o.d"
  "CMakeFiles/easytime_common.dir/math_util.cc.o"
  "CMakeFiles/easytime_common.dir/math_util.cc.o.d"
  "CMakeFiles/easytime_common.dir/optimize.cc.o"
  "CMakeFiles/easytime_common.dir/optimize.cc.o.d"
  "CMakeFiles/easytime_common.dir/rng.cc.o"
  "CMakeFiles/easytime_common.dir/rng.cc.o.d"
  "CMakeFiles/easytime_common.dir/status.cc.o"
  "CMakeFiles/easytime_common.dir/status.cc.o.d"
  "CMakeFiles/easytime_common.dir/string_util.cc.o"
  "CMakeFiles/easytime_common.dir/string_util.cc.o.d"
  "CMakeFiles/easytime_common.dir/thread_pool.cc.o"
  "CMakeFiles/easytime_common.dir/thread_pool.cc.o.d"
  "libeasytime_common.a"
  "libeasytime_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easytime_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
