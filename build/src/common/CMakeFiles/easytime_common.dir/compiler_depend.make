# Empty compiler generated dependencies file for easytime_common.
# This may be replaced when dependencies are built.
