
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tsdata/characteristics.cc" "src/tsdata/CMakeFiles/easytime_tsdata.dir/characteristics.cc.o" "gcc" "src/tsdata/CMakeFiles/easytime_tsdata.dir/characteristics.cc.o.d"
  "/root/repo/src/tsdata/generator.cc" "src/tsdata/CMakeFiles/easytime_tsdata.dir/generator.cc.o" "gcc" "src/tsdata/CMakeFiles/easytime_tsdata.dir/generator.cc.o.d"
  "/root/repo/src/tsdata/repository.cc" "src/tsdata/CMakeFiles/easytime_tsdata.dir/repository.cc.o" "gcc" "src/tsdata/CMakeFiles/easytime_tsdata.dir/repository.cc.o.d"
  "/root/repo/src/tsdata/scaler.cc" "src/tsdata/CMakeFiles/easytime_tsdata.dir/scaler.cc.o" "gcc" "src/tsdata/CMakeFiles/easytime_tsdata.dir/scaler.cc.o.d"
  "/root/repo/src/tsdata/series.cc" "src/tsdata/CMakeFiles/easytime_tsdata.dir/series.cc.o" "gcc" "src/tsdata/CMakeFiles/easytime_tsdata.dir/series.cc.o.d"
  "/root/repo/src/tsdata/split.cc" "src/tsdata/CMakeFiles/easytime_tsdata.dir/split.cc.o" "gcc" "src/tsdata/CMakeFiles/easytime_tsdata.dir/split.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/easytime_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
