file(REMOVE_RECURSE
  "libeasytime_tsdata.a"
)
