# Empty dependencies file for easytime_tsdata.
# This may be replaced when dependencies are built.
