file(REMOVE_RECURSE
  "CMakeFiles/easytime_tsdata.dir/characteristics.cc.o"
  "CMakeFiles/easytime_tsdata.dir/characteristics.cc.o.d"
  "CMakeFiles/easytime_tsdata.dir/generator.cc.o"
  "CMakeFiles/easytime_tsdata.dir/generator.cc.o.d"
  "CMakeFiles/easytime_tsdata.dir/repository.cc.o"
  "CMakeFiles/easytime_tsdata.dir/repository.cc.o.d"
  "CMakeFiles/easytime_tsdata.dir/scaler.cc.o"
  "CMakeFiles/easytime_tsdata.dir/scaler.cc.o.d"
  "CMakeFiles/easytime_tsdata.dir/series.cc.o"
  "CMakeFiles/easytime_tsdata.dir/series.cc.o.d"
  "CMakeFiles/easytime_tsdata.dir/split.cc.o"
  "CMakeFiles/easytime_tsdata.dir/split.cc.o.d"
  "libeasytime_tsdata.a"
  "libeasytime_tsdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easytime_tsdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
