file(REMOVE_RECURSE
  "CMakeFiles/bench_qa.dir/bench_qa.cpp.o"
  "CMakeFiles/bench_qa.dir/bench_qa.cpp.o.d"
  "bench_qa"
  "bench_qa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
