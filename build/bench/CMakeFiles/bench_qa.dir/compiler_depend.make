# Empty compiler generated dependencies file for bench_qa.
# This may be replaced when dependencies are built.
