# Empty dependencies file for bench_leaderboard.
# This may be replaced when dependencies are built.
