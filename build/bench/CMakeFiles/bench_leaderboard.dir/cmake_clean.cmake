file(REMOVE_RECURSE
  "CMakeFiles/bench_leaderboard.dir/bench_leaderboard.cpp.o"
  "CMakeFiles/bench_leaderboard.dir/bench_leaderboard.cpp.o.d"
  "bench_leaderboard"
  "bench_leaderboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_leaderboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
