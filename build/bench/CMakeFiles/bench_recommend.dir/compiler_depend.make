# Empty compiler generated dependencies file for bench_recommend.
# This may be replaced when dependencies are built.
