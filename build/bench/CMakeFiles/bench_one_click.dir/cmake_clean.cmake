file(REMOVE_RECURSE
  "CMakeFiles/bench_one_click.dir/bench_one_click.cpp.o"
  "CMakeFiles/bench_one_click.dir/bench_one_click.cpp.o.d"
  "bench_one_click"
  "bench_one_click.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_one_click.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
