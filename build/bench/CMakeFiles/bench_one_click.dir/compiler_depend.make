# Empty compiler generated dependencies file for bench_one_click.
# This may be replaced when dependencies are built.
