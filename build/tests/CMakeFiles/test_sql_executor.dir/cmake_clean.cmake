file(REMOVE_RECURSE
  "CMakeFiles/test_sql_executor.dir/test_sql_executor.cc.o"
  "CMakeFiles/test_sql_executor.dir/test_sql_executor.cc.o.d"
  "test_sql_executor"
  "test_sql_executor.pdb"
  "test_sql_executor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sql_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
