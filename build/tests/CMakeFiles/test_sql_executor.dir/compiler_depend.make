# Empty compiler generated dependencies file for test_sql_executor.
# This may be replaced when dependencies are built.
