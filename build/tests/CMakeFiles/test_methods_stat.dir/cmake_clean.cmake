file(REMOVE_RECURSE
  "CMakeFiles/test_methods_stat.dir/test_methods_stat.cc.o"
  "CMakeFiles/test_methods_stat.dir/test_methods_stat.cc.o.d"
  "test_methods_stat"
  "test_methods_stat.pdb"
  "test_methods_stat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_methods_stat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
