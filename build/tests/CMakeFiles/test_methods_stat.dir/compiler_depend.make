# Empty compiler generated dependencies file for test_methods_stat.
# This may be replaced when dependencies are built.
