file(REMOVE_RECURSE
  "CMakeFiles/test_nl2sql.dir/test_nl2sql.cc.o"
  "CMakeFiles/test_nl2sql.dir/test_nl2sql.cc.o.d"
  "test_nl2sql"
  "test_nl2sql.pdb"
  "test_nl2sql[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nl2sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
