# Empty dependencies file for test_nl2sql.
# This may be replaced when dependencies are built.
