file(REMOVE_RECURSE
  "CMakeFiles/test_characteristics.dir/test_characteristics.cc.o"
  "CMakeFiles/test_characteristics.dir/test_characteristics.cc.o.d"
  "test_characteristics"
  "test_characteristics.pdb"
  "test_characteristics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
