# Empty dependencies file for test_characteristics.
# This may be replaced when dependencies are built.
