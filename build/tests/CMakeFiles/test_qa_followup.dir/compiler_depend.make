# Empty compiler generated dependencies file for test_qa_followup.
# This may be replaced when dependencies are built.
