file(REMOVE_RECURSE
  "CMakeFiles/test_qa_followup.dir/test_qa_followup.cc.o"
  "CMakeFiles/test_qa_followup.dir/test_qa_followup.cc.o.d"
  "test_qa_followup"
  "test_qa_followup.pdb"
  "test_qa_followup[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qa_followup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
