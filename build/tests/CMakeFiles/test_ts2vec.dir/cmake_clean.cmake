file(REMOVE_RECURSE
  "CMakeFiles/test_ts2vec.dir/test_ts2vec.cc.o"
  "CMakeFiles/test_ts2vec.dir/test_ts2vec.cc.o.d"
  "test_ts2vec"
  "test_ts2vec.pdb"
  "test_ts2vec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ts2vec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
