# Empty compiler generated dependencies file for test_ts2vec.
# This may be replaced when dependencies are built.
