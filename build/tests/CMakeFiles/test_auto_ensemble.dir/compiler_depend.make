# Empty compiler generated dependencies file for test_auto_ensemble.
# This may be replaced when dependencies are built.
