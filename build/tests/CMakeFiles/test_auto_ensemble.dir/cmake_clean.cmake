file(REMOVE_RECURSE
  "CMakeFiles/test_auto_ensemble.dir/test_auto_ensemble.cc.o"
  "CMakeFiles/test_auto_ensemble.dir/test_auto_ensemble.cc.o.d"
  "test_auto_ensemble"
  "test_auto_ensemble.pdb"
  "test_auto_ensemble[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_auto_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
