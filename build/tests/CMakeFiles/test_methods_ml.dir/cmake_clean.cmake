file(REMOVE_RECURSE
  "CMakeFiles/test_methods_ml.dir/test_methods_ml.cc.o"
  "CMakeFiles/test_methods_ml.dir/test_methods_ml.cc.o.d"
  "test_methods_ml"
  "test_methods_ml.pdb"
  "test_methods_ml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_methods_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
