# Empty dependencies file for test_methods_ml.
# This may be replaced when dependencies are built.
