file(REMOVE_RECURSE
  "CMakeFiles/test_contrastive.dir/test_contrastive.cc.o"
  "CMakeFiles/test_contrastive.dir/test_contrastive.cc.o.d"
  "test_contrastive"
  "test_contrastive.pdb"
  "test_contrastive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contrastive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
