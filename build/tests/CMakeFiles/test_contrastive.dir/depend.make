# Empty dependencies file for test_contrastive.
# This may be replaced when dependencies are built.
