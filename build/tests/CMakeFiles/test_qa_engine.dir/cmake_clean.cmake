file(REMOVE_RECURSE
  "CMakeFiles/test_qa_engine.dir/test_qa_engine.cc.o"
  "CMakeFiles/test_qa_engine.dir/test_qa_engine.cc.o.d"
  "test_qa_engine"
  "test_qa_engine.pdb"
  "test_qa_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qa_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
