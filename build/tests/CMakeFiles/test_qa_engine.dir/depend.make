# Empty dependencies file for test_qa_engine.
# This may be replaced when dependencies are built.
