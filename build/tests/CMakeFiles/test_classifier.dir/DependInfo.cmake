
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_classifier.cc" "tests/CMakeFiles/test_classifier.dir/test_classifier.cc.o" "gcc" "tests/CMakeFiles/test_classifier.dir/test_classifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/easytime_core.dir/DependInfo.cmake"
  "/root/repo/build/src/qa/CMakeFiles/easytime_qa.dir/DependInfo.cmake"
  "/root/repo/build/src/ensemble/CMakeFiles/easytime_ensemble.dir/DependInfo.cmake"
  "/root/repo/build/src/knowledge/CMakeFiles/easytime_knowledge.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/easytime_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/easytime_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/methods/CMakeFiles/easytime_methods.dir/DependInfo.cmake"
  "/root/repo/build/src/tsdata/CMakeFiles/easytime_tsdata.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/easytime_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/easytime_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/easytime_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
