# Empty dependencies file for test_benchmark_config.
# This may be replaced when dependencies are built.
