file(REMOVE_RECURSE
  "CMakeFiles/test_benchmark_config.dir/test_benchmark_config.cc.o"
  "CMakeFiles/test_benchmark_config.dir/test_benchmark_config.cc.o.d"
  "test_benchmark_config"
  "test_benchmark_config.pdb"
  "test_benchmark_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchmark_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
