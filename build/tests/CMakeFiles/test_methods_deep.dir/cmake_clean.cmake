file(REMOVE_RECURSE
  "CMakeFiles/test_methods_deep.dir/test_methods_deep.cc.o"
  "CMakeFiles/test_methods_deep.dir/test_methods_deep.cc.o.d"
  "test_methods_deep"
  "test_methods_deep.pdb"
  "test_methods_deep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_methods_deep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
