# Empty compiler generated dependencies file for test_methods_deep.
# This may be replaced when dependencies are built.
