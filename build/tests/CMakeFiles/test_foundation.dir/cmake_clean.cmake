file(REMOVE_RECURSE
  "CMakeFiles/test_foundation.dir/test_foundation.cc.o"
  "CMakeFiles/test_foundation.dir/test_foundation.cc.o.d"
  "test_foundation"
  "test_foundation.pdb"
  "test_foundation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_foundation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
