# Empty dependencies file for test_gru.
# This may be replaced when dependencies are built.
