file(REMOVE_RECURSE
  "CMakeFiles/test_gru.dir/test_gru.cc.o"
  "CMakeFiles/test_gru.dir/test_gru.cc.o.d"
  "test_gru"
  "test_gru.pdb"
  "test_gru[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
