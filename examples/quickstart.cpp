// Quickstart: generate a benchmark series, inspect its characteristics,
// fit two forecasters through the evaluation layer, and print forecasts.
//
//   ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "eval/evaluator.h"
#include "methods/registry.h"
#include "pipeline/plot.h"
#include "tsdata/characteristics.h"
#include "tsdata/generator.h"

using namespace easytime;

int main() {
  // 1. A synthetic "electricity" series: daily seasonality + mild trend.
  tsdata::GeneratorConfig cfg;
  cfg.name = "demo_electricity";
  cfg.domain = tsdata::Domain::kElectricity;
  cfg.length = 480;
  cfg.period = 24;
  cfg.season_amp = 8.0;
  cfg.trend_slope = 0.02;
  cfg.noise_std = 0.8;
  cfg.seed = 42;
  tsdata::Series series = tsdata::GenerateSeries(cfg);

  // 2. What does the data layer see in it?
  tsdata::Characteristics ch = tsdata::ExtractCharacteristics(series.values());
  std::printf("series '%s' (%zu points): %s\n", series.name().c_str(),
              series.length(), ch.Describe().c_str());
  std::printf("  seasonality=%.2f trend=%.2f stationarity=%.2f period=%zu\n\n",
              ch.seasonality, ch.trend, ch.stationarity, ch.period);

  // 3. Evaluate two methods under the standard protocol.
  eval::EvalConfig protocol;
  protocol.strategy = eval::Strategy::kFixed;
  protocol.horizon = 24;
  protocol.metrics = {"mae", "rmse", "smape"};

  eval::Evaluator evaluator(protocol);
  for (const std::string name : {"seasonal_naive", "holt_winters_add"}) {
    auto model = methods::MethodRegistry::Global().Create(name);
    if (!model.ok()) {
      std::fprintf(stderr, "create %s: %s\n", name.c_str(),
                   model.status().ToString().c_str());
      return 1;
    }
    auto result = evaluator.EvaluateValues(model->get(), series.values(),
                                           series.period_hint());
    if (!result.ok()) {
      std::fprintf(stderr, "evaluate %s: %s\n", name.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-18s MAE=%.3f RMSE=%.3f sMAPE=%.2f%%  (fit %.0f ms)\n",
                name.c_str(), result->metrics.at("mae"),
                result->metrics.at("rmse"), result->metrics.at("smape"),
                result->fit_seconds * 1e3);
  }

  // 4. Peek at the winning forecast against the truth.
  auto model = methods::MethodRegistry::Global()
                   .Create("holt_winters_add")
                   .ValueOrDie();
  auto result =
      evaluator.EvaluateValues(model.get(), series.values(), 24).ValueOrDie();
  std::printf("\nforecast vs actual (holt_winters_add):\n");
  std::vector<double> past(
      series.values().begin(),
      series.values().end() - static_cast<long>(result.last_actual.size()));
  std::printf("%s", pipeline::RenderForecastPlot(past, result.last_actual,
                                                 result.last_forecast)
                        .c_str());
  return 0;
}
