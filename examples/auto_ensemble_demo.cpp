// Automated Ensemble (demo scenario S2, Figs. 2 and 4): bring up EasyTime,
// "upload" a new dataset, ask for method recommendations, build the
// automated ensemble, and compare it against the individual methods.
//
//   ./build/examples/auto_ensemble_demo

#include <cstdio>

#include "core/easytime.h"
#include "pipeline/plot.h"
#include "tsdata/characteristics.h"
#include "tsdata/generator.h"

using namespace easytime;

int main() {
  // Offline phase: seed the benchmark knowledge and pretrain the
  // recommendation stack (TS2Vec encoder + soft-label classifier).
  core::EasyTime::Options opt;
  opt.suite.univariate_per_domain = 2;
  opt.suite.multivariate_total = 2;
  opt.seed_eval.horizon = 24;
  opt.ensemble.top_k = 3;
  std::printf("pretraining EasyTime (benchmark seeding + TS2Vec + "
              "classifier)...\n");
  auto system = core::EasyTime::Create(opt);
  if (!system.ok()) {
    std::fprintf(stderr, "create: %s\n", system.status().ToString().c_str());
    return 1;
  }

  // Online phase: the user uploads a new series (label 1 in Fig. 4).
  tsdata::GeneratorConfig cfg;
  cfg.name = "uploaded_sensor";
  cfg.domain = tsdata::Domain::kEnvironment;
  cfg.length = 420;
  cfg.period = 12;
  cfg.season_amp = 4.0;
  cfg.trend_slope = 0.05;
  cfg.ar_coef = 0.4;
  cfg.noise_std = 0.7;
  cfg.seed = 777;
  tsdata::Dataset uploaded = tsdata::GenerateDataset(cfg);
  if (Status st = (*system)->repository()->Add(uploaded); !st.ok()) {
    std::fprintf(stderr, "upload: %s\n", st.ToString().c_str());
    return 1;
  }

  // Characteristics + recommendation (labels 3/4).
  auto ch = tsdata::ExtractCharacteristics(uploaded);
  std::printf("\nuploaded '%s': %s\n", uploaded.name().c_str(),
              ch.Describe().c_str());
  auto rec = (*system)->Recommend("uploaded_sensor", 3);
  if (!rec.ok()) {
    std::fprintf(stderr, "recommend: %s\n", rec.status().ToString().c_str());
    return 1;
  }
  std::printf("recommended methods:\n");
  for (const auto& [name, prob] : *rec) {
    std::printf("  %-18s p=%.3f\n", name.c_str(), prob);
  }

  // The "AutoML" button (label 8): ensemble the top-k and evaluate,
  // alongside each member (labels 9/10).
  eval::EvalConfig protocol;
  protocol.strategy = eval::Strategy::kFixed;
  protocol.horizon = 24;
  protocol.metrics = {"mae", "rmse", "smape"};
  auto comparison = (*system)->EvaluateWithEnsemble("uploaded_sensor",
                                                    protocol);
  if (!comparison.ok()) {
    std::fprintf(stderr, "ensemble: %s\n",
                 comparison.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%-22s %8s %8s %8s\n", "model", "MAE", "RMSE", "sMAPE");
  std::printf("%-22s %8.3f %8.3f %7.2f%%\n", "auto_ensemble",
              comparison->ensemble.metrics.at("mae"),
              comparison->ensemble.metrics.at("rmse"),
              comparison->ensemble.metrics.at("smape"));
  for (size_t i = 0; i < comparison->members.size(); ++i) {
    const auto& [name, res] = comparison->members[i];
    std::printf("%-22s %8.3f %8.3f %7.2f%%   (weight %.2f)\n", name.c_str(),
                res.metrics.at("mae"), res.metrics.at("rmse"),
                res.metrics.at("smape"), comparison->weights[i]);
  }

  // Forecast visualization (label 9), terminal style.
  std::printf("\nforecast vs actual:\n");
  const auto& values = uploaded.primary().values();
  std::vector<double> past(
      values.begin(),
      values.end() -
          static_cast<long>(comparison->ensemble.last_actual.size()));
  std::printf("%s", pipeline::RenderForecastPlot(
                        past, comparison->ensemble.last_actual,
                        comparison->ensemble.last_forecast)
                        .c_str());
  return 0;
}
