// Serving demo: stand up the full EasyTime system, put the ForecastServer
// in front of it, and talk to it exactly the way a client would — one JSON
// request line in, one JSON response line out — over both the in-process
// client and the loopback TCP listener.
//
//   ./build/examples/serve_demo

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "core/easytime.h"
#include "serve/server.h"
#include "serve/tcp_server.h"

using namespace easytime;

namespace {

// A tiny blocking line client for the demo's TCP leg.
std::string RoundTrip(uint16_t port, const std::string& line) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "(socket failed)";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "(connect failed)";
  }
  std::string data = line + "\n";
  ::send(fd, data.data(), data.size(), 0);
  std::string reply;
  char c;
  while (::recv(fd, &c, 1, 0) == 1 && c != '\n') reply.push_back(c);
  ::close(fd);
  return reply;
}

}  // namespace

int main() {
  // 1. Build a small system (same knobs as the test suite, so this runs in
  //    seconds; drop the overrides for the full benchmark suite).
  core::EasyTime::Options opt;
  opt.suite.univariate_per_domain = 1;
  opt.suite.multivariate_total = 1;
  opt.seed_methods = {"naive", "seasonal_naive", "theta", "ses", "drift"};
  opt.ensemble.ts2vec.epochs = 3;
  opt.ensemble.classifier.epochs = 80;
  auto system = core::EasyTime::Create(opt);
  if (!system.ok()) {
    std::fprintf(stderr, "create: %s\n", system.status().ToString().c_str());
    return 1;
  }

  // 2. Start the serving layer.
  serve::ForecastServer server(system->get());
  server.Start();
  std::string dataset = (*system)->repository()->names()[0];

  // 3. The in-process client: line-delimited JSON.
  std::printf("== in-process ==\n");
  std::string forecast_line =
      R"({"id": 1, "endpoint": "forecast", "params": {"dataset": ")" +
      dataset + R"(", "method": "theta", "horizon": 6}})";
  std::printf("<- %s\n", server.HandleLine(forecast_line).c_str());
  // The repeat is a cache hit — look for "cached": true.
  std::printf("<- %s\n",
              server
                  .HandleLine(
                      R"({"id": 2, "endpoint": "forecast", "params": )"
                      R"({"dataset": ")" +
                      dataset + R"(", "method": "theta", "horizon": 6}})")
                  .c_str());

  // 4. An async evaluation job with progress polling.
  std::string submit =
      R"({"id": 3, "endpoint": "evaluate", "params": {"methods": ["drift"],)"
      R"( "evaluation": {"strategy": "fixed", "horizon": 6,)"
      R"( "metrics": ["mae"]}}})";
  auto submitted = Json::Parse(server.HandleLine(submit));
  std::printf("<- %s\n", submitted->Dump().c_str());
  int64_t job = submitted->Get("result").GetInt("job", -1);
  for (;;) {
    auto status = Json::Parse(server.HandleLine(
        R"({"endpoint": "job_status", "params": {"job": )" +
        std::to_string(job) + "}}"));
    std::string state = status->Get("result").GetString("state", "?");
    std::printf("   job %lld: %s\n", static_cast<long long>(job),
                state.c_str());
    if (state != "queued" && state != "running") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // 5. The same protocol over loopback TCP.
  serve::TcpServer tcp(&server);
  if (auto st = tcp.Start(); !st.ok()) {
    std::fprintf(stderr, "tcp: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("== tcp 127.0.0.1:%u ==\n", tcp.port());
  std::printf("<- %s\n",
              RoundTrip(tcp.port(), R"({"id": 4, "endpoint": "ping"})")
                  .c_str());
  std::printf("<- %s\n",
              RoundTrip(tcp.port(),
                        R"({"id": 5, "endpoint": "ask", "params": )"
                        R"({"question": "What is the best method for )" +
                            dataset + R"(?"}})")
                  .c_str());

  // 6. Serving telemetry.
  std::printf("== stats ==\n%s\n",
              server.StatsJson().Dump(2).c_str());

  tcp.Stop();
  server.Stop();
  return 0;
}
