// Scale-out serving (DESIGN.md §14): bring up a 2-shard cluster — one
// router process consistent-hashing datasets across shard workers, each
// with a WAL-shipped replica — then walk the tier's contract: owner-routed
// appends and reads, fan-out merges (stats, recommend), and a SIGKILL
// failover that promotes a replica without losing an acked append.
//
// Spawns real easytime_shard_worker processes (path baked in at build
// time via EASYTIME_WORKER_BIN).
//
//   ./build/examples/cluster_demo

#include <signal.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "cluster/router.h"
#include "common/json.h"

using namespace easytime;

namespace {

Json Call(cluster::ClusterRouter& router, int64_t id,
          const std::string& endpoint, Json params) {
  Json req = Json::Object();
  req.Set("id", id);
  req.Set("endpoint", endpoint);
  req.Set("params", std::move(params));
  auto parsed = Json::Parse(router.HandleLine(req.Dump()));
  if (!parsed.ok()) {
    std::fprintf(stderr, "unparseable response\n");
    std::exit(1);
  }
  return std::move(*parsed);
}

}  // namespace

int main() {
  const std::string work_dir =
      (std::filesystem::temp_directory_path() / "easytime_cluster_demo")
          .string();
  std::filesystem::remove_all(work_dir);

  cluster::ClusterRouter::Options opt;
  opt.worker_binary = EASYTIME_WORKER_BIN;
  opt.work_dir = work_dir;
  opt.preset = "small";
  opt.shards = 2;
  opt.replicate = true;
  opt.health_interval_ms = 50.0;

  std::printf("starting 2 shards (primary + replica each) + router...\n");
  cluster::ClusterRouter router(opt);
  if (Status st = router.Start(); !st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("cluster front-end on 127.0.0.1:%u\n\n", router.port());

  // Stable placement: this dataset's appends, WAL, and reads all live on
  // its owner shard.
  const std::string dataset = "traffic_u0";
  auto owner = router.OwnerShard(dataset);
  if (!owner.ok()) return 1;
  std::printf("'%s' is owned by %s\n", dataset.c_str(), owner->c_str());

  Json append_params = Json::Object();
  append_params.Set("dataset", dataset);
  Json values = Json::Array();
  for (double v : {101.0, 104.0, 99.0, 102.0}) values.Append(v);
  append_params.Set("values", std::move(values));
  Json appended = Call(router, 1, "append", std::move(append_params));
  const int64_t acked_length = appended.Get("result").GetInt("length", 0);
  std::printf("appended 4 points, acked length=%lld (durable on %s)\n",
              static_cast<long long>(acked_length), owner->c_str());

  Json forecast_params = Json::Object();
  forecast_params.Set("dataset", dataset);
  forecast_params.Set("method", "theta");
  forecast_params.Set("horizon", int64_t{6});
  Json forecast = Call(router, 2, "forecast", forecast_params);
  std::printf("forecast ok=%s degraded=%s\n",
              forecast.GetBool("ok", false) ? "true" : "false",
              forecast.Get("result").GetBool("degraded", false) ? "true"
                                                                : "false");

  // Fan-outs merge every shard's answer.
  Json rec_params = Json::Object();
  rec_params.Set("dataset", dataset);
  Json rec = Call(router, 3, "recommend", std::move(rec_params));
  std::printf("recommend merged %lld shards; top method: %s\n",
              static_cast<long long>(
                  rec.Get("result").GetInt("shards_merged", 0)),
              rec.Get("result")
                  .Get("recommendations")
                  .items()
                  .front()
                  .GetString("method", "?")
                  .c_str());
  Json stats = Call(router, 4, "stats", Json::Object());
  std::printf("cluster stats: scope=%s shards_responding=%lld total "
              "requests=%lld\n\n",
              stats.Get("result").GetString("scope", "?").c_str(),
              static_cast<long long>(
                  stats.Get("result").GetInt("shards_responding", 0)),
              static_cast<long long>(
                  stats.Get("result").Get("totals").GetInt("requests", 0)));

  // Kill -9 the owner's primary. Reads degrade to the replica immediately;
  // the health loop promotes it; no acked append is lost.
  std::printf("SIGKILL %s primary...\n", owner->c_str());
  if (Status st = router.KillShardPrimary(*owner, SIGKILL); !st.ok()) {
    std::fprintf(stderr, "kill: %s\n", st.ToString().c_str());
    return 1;
  }
  Json degraded = Call(router, 5, "forecast", forecast_params);
  std::printf("mid-failover forecast ok=%s degraded=%s (replica answered)\n",
              degraded.GetBool("ok", false) ? "true" : "false",
              degraded.Get("result").GetBool("degraded", false) ? "true"
                                                                : "false");
  for (int i = 0; i < 2400; ++i) {
    Json status = router.ClusterStatusJson();
    const Json& shard = status.Get("shards").Get(*owner);
    if (shard.GetInt("failovers", 0) > 0 && !shard.GetBool("down", true) &&
        !shard.GetBool("promoting", true)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  Json resume_params = Json::Object();
  resume_params.Set("dataset", dataset);
  Json more = Json::Array();
  more.Append(105.0);
  resume_params.Set("values", std::move(more));
  resume_params.Set("start", acked_length);  // exact offset-chain continuity
  Json resumed = Call(router, 6, "append", std::move(resume_params));
  std::printf("post-promotion append at acked offset %lld: ok=%s, "
              "length=%lld\n",
              static_cast<long long>(acked_length),
              resumed.GetBool("ok", false) ? "true" : "false",
              static_cast<long long>(
                  resumed.Get("result").GetInt("length", 0)));
  Json healthy = Call(router, 7, "forecast", forecast_params);
  std::printf("post-promotion forecast ok=%s degraded=%s\n",
              healthy.GetBool("ok", false) ? "true" : "false",
              healthy.Get("result").GetBool("degraded", false) ? "true"
                                                               : "false");

  router.Stop();
  std::printf("\ncluster stopped.\n");
  return 0;
}
