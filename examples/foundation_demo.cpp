// Foundation-model support in the method layer: pretrain the zero-shot
// "ts2vec_foundation" method on the benchmark corpus, then evaluate it like
// any registered method — on every dataset, through one-click evaluation,
// with results landing in the same knowledge base and Q&A tables.
//
//   ./build/examples/foundation_demo

#include <cstdio>

#include "core/easytime.h"

using namespace easytime;

int main() {
  core::EasyTime::Options opt;
  opt.suite.univariate_per_domain = 2;
  opt.suite.multivariate_total = 2;
  opt.seed_eval.horizon = 24;
  opt.seed_methods = {"naive", "seasonal_naive", "theta", "mean"};
  opt.pretrain_ensemble = false;
  opt.pretrain_foundation = true;      // <- the interesting part
  opt.foundation.lookback = 48;
  opt.foundation.horizon = 24;
  opt.ensemble.ts2vec.epochs = 8;

  std::printf("pretraining the ts2vec_foundation method on the benchmark "
              "corpus...\n");
  auto system = core::EasyTime::Create(opt);
  if (!system.ok()) {
    std::fprintf(stderr, "create: %s\n", system.status().ToString().c_str());
    return 1;
  }

  // Zero-shot evaluation on every dataset: Fit() records history only.
  auto report = (*system)->EvaluateMethodEverywhere("ts2vec_foundation");
  if (!report.ok()) {
    std::fprintf(stderr, "evaluate: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("zero-shot evaluation: %zu/%zu datasets ok in %.1fs\n\n",
              report->Successful().size(), report->records.size(),
              report->wall_seconds);

  // Where does it land against the locally-trained classics?
  auto resp = (*system)->Ask("rank methods by mae");
  if (!resp.ok()) {
    std::fprintf(stderr, "%s\n", resp.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", resp->Render().c_str());

  std::printf("note: the foundation model never trains on the evaluated "
              "series — all accuracy comes from the pretrained encoder + "
              "cross-corpus head.\n");
  return 0;
}
