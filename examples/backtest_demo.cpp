// Streaming + backtesting demo: build a small EasyTime system, stream live
// observations onto a stored series through the `append` endpoint (watching
// the fine-grained cache invalidation at work), then run a rolling-origin
// `backtest` job and print its per-origin and aggregate quality report.
//
//   ./build/examples/backtest_demo

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/easytime.h"
#include "serve/server.h"

using namespace easytime;

namespace {

Json MustCall(serve::ForecastServer& server, const std::string& endpoint,
              Json params) {
  auto result = server.Call(endpoint, std::move(params));
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", endpoint.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*result);
}

}  // namespace

int main() {
  // 1. A small system (test-suite knobs so the demo runs in seconds).
  core::EasyTime::Options opt;
  opt.suite.univariate_per_domain = 1;
  opt.suite.multivariate_total = 1;
  opt.seed_methods = {"naive", "seasonal_naive", "theta", "ses", "drift"};
  opt.ensemble.ts2vec.epochs = 3;
  opt.ensemble.classifier.epochs = 80;
  auto system = core::EasyTime::Create(opt);
  if (!system.ok()) {
    std::fprintf(stderr, "create: %s\n", system.status().ToString().c_str());
    return 1;
  }

  serve::ForecastServer server(system->get());
  server.Start();
  const std::string dataset = (*system)->repository()->names()[0];
  std::printf("== streaming onto %s ==\n", dataset.c_str());

  // 2. Warm the forecast cache, then stream a batch of live observations.
  //    The append invalidates exactly this dataset's cached entries.
  Json fc = Json::Object();
  fc.Set("dataset", dataset);
  fc.Set("method", "theta");
  fc.Set("horizon", static_cast<int64_t>(12));
  MustCall(server, "forecast", fc);

  Json append = Json::Object();
  append.Set("dataset", dataset);
  Json values = Json::Array();
  for (double v : {21.3, 21.9, 22.4, 22.1, 21.7, 22.8}) values.Append(v);
  append.Set("values", std::move(values));
  Json appended = MustCall(server, "append", std::move(append));
  std::printf("appended %lld points -> length %lld, %lld cache entr%s "
              "invalidated\n",
              static_cast<long long>(appended.GetInt("appended", 0)),
              static_cast<long long>(appended.GetInt("length", 0)),
              static_cast<long long>(appended.GetInt("cache_invalidated", 0)),
              appended.GetInt("cache_invalidated", 0) == 1 ? "y" : "ies");

  // 3. Rolling-origin backtest as an async job: 6 origins x 12 steps of
  //    theta, expanding window, 95% intervals.
  Json bt = Json::Object();
  bt.Set("dataset", dataset);
  bt.Set("method", "theta");
  bt.Set("origins", static_cast<int64_t>(6));
  bt.Set("horizon", static_cast<int64_t>(12));
  Json submitted = MustCall(server, "backtest", std::move(bt));
  const int64_t job = submitted.GetInt("job", -1);
  std::printf("\n== backtest job %lld ==\n", static_cast<long long>(job));

  Json status;
  for (int i = 0; i < 600; ++i) {
    Json poll = Json::Object();
    poll.Set("job", job);
    status = MustCall(server, "job_status", std::move(poll));
    const std::string state = status.GetString("state", "");
    if (state == "done" || state == "failed" || state == "cancelled") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (status.GetString("state", "") != "done") {
    std::fprintf(stderr, "backtest did not finish: %s\n",
                 status.Dump().c_str());
    return 1;
  }

  Json result = status.Get("result");
  std::printf("%-8s %-8s %10s %10s %10s\n", "origin", "train", "mase",
              "smape", "coverage");
  for (const auto& origin : result.Get("origins").items()) {
    std::printf("%-8lld %-8lld %10.4f %10.4f %10.2f\n",
                static_cast<long long>(origin.GetInt("origin", 0)),
                static_cast<long long>(origin.GetInt("train_size", 0)),
                origin.Get("metrics").GetDouble("mase", 0.0),
                origin.Get("metrics").GetDouble("smape", 0.0),
                origin.GetDouble("coverage", 0.0));
  }
  Json agg = result.Get("aggregate");
  std::printf("\naggregate: mase=%.4f smape=%.4f mae=%.4f  coverage=%.2f  "
              "mean interval width=%.3f\n",
              agg.GetDouble("mase", 0.0), agg.GetDouble("smape", 0.0),
              agg.GetDouble("mae", 0.0), result.GetDouble("coverage", 0.0),
              result.GetDouble("mean_interval_width", 0.0));

  server.Stop();
  return 0;
}
