// SQL-native forecasting demo: stage a sales table through the server's
// "sql" endpoint, then forecast it with the TS_FORECAST and TS_FORECAST_BY
// table-valued functions — first through the in-process client, then over
// the loopback TCP listener, the exact wire a dashboard would use.
//
//   ./build/examples/sql_forecast_demo

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "core/easytime.h"
#include "serve/server.h"
#include "serve/tcp_server.h"

using namespace easytime;

namespace {

// A tiny blocking line client for the demo's TCP leg.
std::string RoundTrip(uint16_t port, const std::string& line) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "(socket failed)";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "(connect failed)";
  }
  std::string data = line + "\n";
  ::send(fd, data.data(), data.size(), 0);
  std::string reply;
  char c;
  while (::recv(fd, &c, 1, 0) == 1 && c != '\n') reply.push_back(c);
  ::close(fd);
  return reply;
}

std::string SqlLine(int id, const std::string& query) {
  Json req = Json::Object();
  req.Set("id", static_cast<int64_t>(id));
  req.Set("endpoint", "sql");
  Json params = Json::Object();
  params.Set("query", query);
  req.Set("params", std::move(params));
  return req.Dump();
}

void PrintRows(const std::string& title, const std::string& response) {
  auto parsed = Json::Parse(response);
  if (!parsed.ok() || !parsed->GetBool("ok", false)) {
    std::printf("%s -> %s\n", title.c_str(), response.c_str());
    return;
  }
  const Json& result = parsed->Get("result");
  std::printf("== %s (%zu rows) ==\n", title.c_str(),
              result.Get("rows").size());
  const Json& cols = result.Get("columns");
  for (size_t c = 0; c < cols.size(); ++c) {
    std::printf("%s%s", c ? "  " : "   ", cols.items()[c].AsString().c_str());
  }
  std::printf("\n");
  const Json& rows = result.Get("rows");
  for (size_t r = 0; r < rows.size() && r < 8; ++r) {
    std::printf("   ");
    for (const Json& v : rows.items()[r].items()) {
      if (v.is_string()) {
        std::printf("%s  ", v.AsString().c_str());
      } else {
        std::printf("%.3f  ", v.AsDouble());
      }
    }
    std::printf("\n");
  }
  if (rows.size() > 8) std::printf("   ... %zu more\n", rows.size() - 8);
}

}  // namespace

int main() {
  // 1. A small system (test-suite knobs so this runs in seconds).
  core::EasyTime::Options opt;
  opt.suite.univariate_per_domain = 1;
  opt.suite.multivariate_total = 1;
  opt.seed_methods = {"naive", "seasonal_naive", "theta", "ses", "drift"};
  opt.ensemble.ts2vec.epochs = 3;
  opt.ensemble.classifier.epochs = 80;
  auto system = core::EasyTime::Create(opt);
  if (!system.ok()) {
    std::fprintf(stderr, "create: %s\n", system.status().ToString().c_str());
    return 1;
  }
  serve::ForecastServer server(system->get());
  server.Start();

  // 2. Stage monthly sales for three regions through the sql endpoint: the
  //    same DDL/DML any SQL client would send.
  PrintRows("create",
            server.HandleLine(SqlLine(
                1, "CREATE TABLE sales (region TEXT, month INTEGER, "
                   "revenue REAL)")));
  std::string insert = "INSERT INTO sales VALUES ";
  const char* regions[] = {"east", "north", "west"};
  bool first = true;
  for (int r = 0; r < 3; ++r) {
    for (int m = 0; m < 48; ++m) {
      double revenue = 100.0 + 20.0 * r + 0.8 * m +
                       12.0 * std::sin(2.0 * 3.14159265 * m / 12.0);
      if (!first) insert += ", ";
      first = false;
      insert += std::string("('") + regions[r] + "', " + std::to_string(m) +
                ", " + std::to_string(revenue) + ")";
    }
  }
  PrintRows("insert", server.HandleLine(SqlLine(2, insert)));

  // 3. One series, in process: point forecasts with a 95% band.
  PrintRows(
      "TS_FORECAST (in-process)",
      server.HandleLine(SqlLine(
          3,
          "SELECT forecast_step, forecast_timestamp, point_forecast, lower, "
          "upper, model_name FROM TS_FORECAST(sales, month, revenue, "
          "model := 'theta', horizon := 6, confidence := 0.95, "
          "period := 12)")));

  // 4. Every region at once: TS_FORECAST_BY fans the fits out across the
  //    thread pool and returns deterministically ordered groups.
  PrintRows(
      "TS_FORECAST_BY (in-process)",
      server.HandleLine(SqlLine(
          4, "SELECT region, forecast_step, point_forecast, lower, upper "
             "FROM TS_FORECAST_BY(sales, region, month, revenue, "
             "model := 'ses', horizon := 3)")));

  // 5. The same queries over loopback TCP.
  serve::TcpServer tcp(&server);
  if (auto st = tcp.Start(); !st.ok()) {
    std::fprintf(stderr, "tcp: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("== tcp 127.0.0.1:%u ==\n", tcp.port());
  PrintRows("TS_FORECAST (tcp)",
            RoundTrip(tcp.port(),
                      SqlLine(5, "SELECT * FROM TS_FORECAST(sales, month, "
                                 "revenue, horizon := 4)")));
  PrintRows(
      "TS_FORECAST_BY (tcp)",
      RoundTrip(tcp.port(),
                SqlLine(6, "SELECT region, forecast_step, point_forecast "
                           "FROM TS_FORECAST_BY(sales, region, month, "
                           "revenue, model := 'drift', horizon := 2)")));

  tcp.Stop();
  server.Stop();
  return 0;
}
