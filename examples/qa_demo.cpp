// Natural-language Q&A (demo scenario S3, Figs. 3 and 5): stand up the
// system, then answer benchmark questions in natural language with charts,
// SQL, and result tables.
//
//   ./build/examples/qa_demo              # runs the scripted demo questions
//   ./build/examples/qa_demo "question"   # asks your own question

#include <cstdio>

#include "core/easytime.h"

using namespace easytime;

int main(int argc, char** argv) {
  core::EasyTime::Options opt;
  opt.suite.univariate_per_domain = 2;
  opt.suite.multivariate_total = 3;
  opt.seed_eval.horizon = 24;  // long-term per the Q&A vocabulary
  opt.pretrain_ensemble = false;  // Q&A only needs the knowledge base
  std::printf("seeding the benchmark knowledge base...\n\n");
  auto system = core::EasyTime::Create(opt);
  if (!system.ok()) {
    std::fprintf(stderr, "create: %s\n", system.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> questions;
  if (argc > 1) {
    questions.push_back(argv[1]);
  } else {
    questions = {
        // The exact Fig. 5 question shape.
        "What are the top-8 methods (ordered by MAE) for long term "
        "forecasting on all multivariate datasets with trends?",
        // The abstract's motivating question.
        "Which method is best for long term forecasting on time series "
        "with strong seasonality?",
        "Is theta or ses better on datasets with trends?",
        "How many datasets per domain?",
        "What is the average smape of naive on traffic datasets?",
        // A follow-up: inherits the previous question's intent + filters.
        "what about on web datasets?",
        // Out-of-scope: rejected before any SQL executes.
        "Will the sales in Shanghai increase next month?",
    };
  }

  for (const auto& q : questions) {
    std::printf("================================================\n");
    auto resp = (*system)->Ask(q);
    if (!resp.ok()) {
      std::printf("Q: %s\nA: (declined) %s\n\n", q.c_str(),
                  resp.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n", resp->Render().c_str());
  }
  return 0;
}
