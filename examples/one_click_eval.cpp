// One-Click Evaluation (demo scenario S1): the user edits a JSON
// configuration file — datasets, methods, strategy, horizon, metrics — and
// runs the whole benchmark with one command.
//
//   ./build/examples/one_click_eval [config.json]
//
// Without an argument, a built-in config is used (rolling forecasting, three
// methods including one with custom hyperparameters).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.h"
#include "pipeline/runner.h"
#include "tsdata/repository.h"

using namespace easytime;

namespace {

const char* kDefaultConfig = R"({
  "methods": [
    "seasonal_naive",
    "theta",
    {"name": "gbdt", "config": {"num_trees": 40, "max_depth": 3}}
  ],
  "evaluation": {
    "strategy": "rolling",
    "horizon": 12,
    "stride": 12,
    "scaler": "zscore",
    "metrics": ["mae", "rmse", "smape", "mase"],
    "drop_last": true
  },
  "num_threads": 4
})";

}  // namespace

int main(int argc, char** argv) {
  // The benchmark data suite (stands in for TFB's curated datasets).
  tsdata::Repository repo;
  tsdata::SuiteSpec suite;
  suite.univariate_per_domain = 1;
  suite.multivariate_total = 2;
  if (Status st = repo.AddSuite(suite); !st.ok()) {
    std::fprintf(stderr, "suite: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("benchmark suite: %zu datasets across 10 domains\n\n",
              repo.size());

  // Load the configuration file (the "one click" artifact).
  std::string config_text = kDefaultConfig;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    config_text = ss.str();
  }
  auto json = Json::Parse(config_text);
  if (!json.ok()) {
    std::fprintf(stderr, "config: %s\n", json.status().ToString().c_str());
    return 1;
  }
  auto config = pipeline::BenchmarkConfig::FromJson(*json);
  if (!config.ok()) {
    std::fprintf(stderr, "config: %s\n", config.status().ToString().c_str());
    return 1;
  }
  std::printf("configuration:\n%s\n\n", config->ToJson().Dump(2).c_str());

  // One click.
  pipeline::PipelineRunner runner(&repo, *config);
  auto report = runner.Run();
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("%s\n", report->FormatTable(config->eval.metrics).c_str());
  std::printf("leaderboard (mean MAE, %zu/%zu pairs ok, %.1fs wall):\n",
              report->Successful().size(), report->records.size(),
              report->wall_seconds);
  int rank = 1;
  for (const auto& [method, mae] : report->Leaderboard("mae")) {
    std::printf("  %d. %-16s %.4f\n", rank++, method.c_str(), mae);
  }
  return 0;
}
